//! Quickstart: enumerate all maximal cliques of a small graph in
//! non-decreasing size order, with bounds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gsb::core::{CliquePipeline, CollectSink};
use gsb::graph::generators::{planted, Module};

fn main() {
    // A sparse 60-vertex background with two planted modules, the kind
    // of structure a thresholded gene-correlation graph exhibits.
    let g = planted(60, 0.03, &[Module::clique(8), Module::clique(6)], 42);
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    // Stage 1+2+3 of the SC'05 pipeline: bound the clique sizes, seed
    // at the lower bound, enumerate maximal cliques levelwise.
    let mut sink = CollectSink::default();
    let report = CliquePipeline::new()
        .min_size(4) // the paper's Init_K
        .run(&g, &mut sink);

    println!(
        "upper bound {}, exact maximum clique {:?}",
        report.upper_bound, report.maximum_clique
    );
    println!("maximal cliques of size >= 4, non-decreasing:");
    for clique in &sink.cliques {
        println!("  size {:2}: {:?}", clique.len(), clique);
    }

    let stats = report.enum_stats.expect("sequential run");
    println!(
        "levels: {}, peak candidate memory (paper formula): {} bytes",
        stats.levels.len(),
        stats.peak_formula_bytes()
    );
}
