//! Clique-based cis-regulatory motif discovery (the paper's application
//! \[28\]): plant a transcription-factor binding site with mutations into
//! random promoter sequences, build the l-mer similarity graph, and
//! read the motif back off the maximal cliques.
//!
//! ```sh
//! cargo run --release --example motif_discovery
//! ```

use gsb::motif::{build_motif_graph, find_motifs, MotifParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

fn main() {
    let motif = b"TTGACAATCGAT"; // the planted binding site (l = 12)
    let (n, len, d) = (8usize, 80usize, 1usize);
    let mut rng = StdRng::seed_from_u64(2005);

    // Promoters: random background with one d-mutated instance each.
    let mut promoters = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for si in 0..n {
        let mut s: Vec<u8> = (0..len).map(|_| BASES[rng.gen_range(0..4)]).collect();
        let pos = rng.gen_range(0..=len - motif.len());
        let mut instance = motif.to_vec();
        for _ in 0..d {
            let p = rng.gen_range(0..motif.len());
            instance[p] = BASES[rng.gen_range(0..4)];
        }
        s[pos..pos + motif.len()].copy_from_slice(&instance);
        promoters.push(s);
        truth.push((si, pos));
    }
    println!(
        "planted (l={}, d={d}) motif {} into {n} promoters of length {len}",
        motif.len(),
        String::from_utf8_lossy(motif)
    );

    let params = MotifParams {
        l: motif.len(),
        d,
        q: n - 1, // tolerate one unrecovered instance
    };
    let (graph, sites) = build_motif_graph(&promoters, &params);
    println!(
        "l-mer similarity graph: {} windows, {} edges ({:.3}% density)",
        sites.len(),
        graph.m(),
        100.0 * graph.density()
    );

    let motifs = find_motifs(&promoters, &params);
    println!(
        "{} candidate motifs above quorum {}",
        motifs.len(),
        params.q
    );
    let Some(best) = motifs.first() else {
        println!("nothing found — raise d or lower the quorum");
        return;
    };
    println!(
        "best: {} (support {} sequences)",
        String::from_utf8_lossy(&best.consensus),
        best.support()
    );
    for &(seq, pos) in &best.sites {
        let mark = if truth.contains(&(seq, pos)) {
            "planted"
        } else {
            "extra"
        };
        println!("  promoter {seq} @ {pos} ({mark})");
    }
    let recovered = truth.iter().filter(|t| best.sites.contains(t)).count();
    println!("recovered {recovered}/{n} planted sites");
}
