//! Maximum clique two ways (§2.1): the FPT vertex-cover route versus
//! direct branch-and-bound, cross-validated, plus the degeneracy /
//! coloring upper bound that brackets them.
//!
//! ```sh
//! cargo run --example max_clique_fpt
//! ```

use gsb::core::maximum_clique;
use gsb::fpt::maxclique::clique_decision_via_vc;
use gsb::fpt::maximum_clique_via_vc;
use gsb::fpt::vc::minimum_vertex_cover;
use gsb::graph::generators::{planted, Module};
use gsb::graph::reduce::clique_upper_bound;

fn main() {
    let g = planted(48, 0.08, &[Module::clique(11), Module::clique(8)], 7);
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    let ub = clique_upper_bound(&g);
    println!("combinatorial upper bound (degeneracy/coloring): {ub}");

    // Route 1: direct branch & bound with a coloring bound.
    let direct = maximum_clique(&g);
    println!(
        "direct B&B maximum clique (size {}): {direct:?}",
        direct.len()
    );

    // Route 2: the paper's FPT route — "clique is not FPT unless the W
    // hierarchy collapses. Thus we focus instead on clique's
    // complementary dual, the vertex cover problem."
    let complement = g.complement();
    let cover = minimum_vertex_cover(&complement);
    println!(
        "complement has {} edges; minimum vertex cover size {}",
        complement.m(),
        cover.len()
    );
    let via_vc = maximum_clique_via_vc(&g);
    println!(
        "maximum clique via vertex cover (size {}): {via_vc:?}",
        via_vc.len()
    );
    assert_eq!(direct.len(), via_vc.len(), "the two exact routes agree");
    assert_eq!(g.n(), cover.len() + via_vc.len());

    // Decision form: ω is the largest k with a yes answer.
    let omega = direct.len();
    assert!(clique_decision_via_vc(&g, omega));
    assert!(!clique_decision_via_vc(&g, omega + 1));
    println!(
        "decision queries agree: clique({omega}) yes, clique({}) no",
        omega + 1
    );
}
