//! The paper's flagship application end to end: gene co-expression
//! network analysis (§1, §3, §4).
//!
//! Synthesizes a microarray experiment with planted co-regulated
//! modules (the stand-in for the Affymetrix U74Av2 mouse-brain data),
//! runs the published pipeline — normalization, pairwise rank (Spearman)
//! correlation, threshold filtering — then enumerates maximal cliques in
//! parallel and gloms the top clique into a paraclique.
//!
//! ```sh
//! cargo run --release --example gene_coexpression
//! ```

use gsb::core::paraclique::{paraclique, subgraph_density};
use gsb::core::{CollectSink, EnumConfig, ParallelConfig, ParallelEnumerator};
use gsb::expr::normalize::zscore_rows;
use gsb::expr::synth::SynthModule;
use gsb::expr::threshold::graph_at_density;
use gsb::expr::{spearman_matrix, SynthConfig};
use std::sync::Arc;

fn main() {
    // 1. "Microarray": 400 genes under 60 conditions, three co-regulated
    // modules of decreasing coherence, plus noise.
    let cfg = SynthConfig {
        genes: 400,
        conditions: 60,
        modules: vec![
            SynthModule {
                size: 14,
                strength: 0.95,
            },
            SynthModule {
                size: 10,
                strength: 0.92,
            },
            SynthModule {
                size: 7,
                strength: 0.90,
            },
        ],
        noise: 1.0,
        seed: 2005,
    };
    let (mut matrix, truth) = cfg.generate();
    println!(
        "synthesized {} genes x {} conditions; modules of sizes {:?}",
        matrix.genes(),
        matrix.conditions(),
        truth.iter().map(Vec::len).collect::<Vec<_>>()
    );

    // 2. Normalize and correlate (the paper: "normalization, pairwise
    // rank coefficient calculation, and filtering using threshold").
    zscore_rows(&mut matrix);
    let corr = spearman_matrix(&matrix);

    // 3. Threshold at a target edge density like the paper's 0.2%.
    let (graph, tau) = graph_at_density(&corr, 0.004);
    println!(
        "thresholded at |rho| >= {tau:.3}: {} edges ({:.3}% density)",
        graph.m(),
        100.0 * graph.density()
    );

    // 4. Parallel maximal clique enumeration, sizes >= 5.
    let garc = Arc::new(graph);
    let mut sink = CollectSink::default();
    let enumerator = ParallelEnumerator::new(ParallelConfig {
        threads: 4,
        enum_config: EnumConfig {
            min_k: 5,
            ..Default::default()
        },
        ..Default::default()
    });
    let stats = enumerator.enumerate(&garc, &mut sink);
    println!(
        "found {} maximal cliques (size >= 5) across {} levels, {} load transfers",
        stats.total_maximal,
        stats.levels.len(),
        stats.run.total_transfers()
    );
    for c in sink.cliques.iter().rev().take(3) {
        println!("  top clique, size {:2}: {:?}", c.len(), c);
    }

    // 5. Glom the largest clique into a paraclique (noise tolerance).
    if let Some(top) = sink.cliques.last() {
        let pc = paraclique(&garc, top, 0.9);
        println!(
            "paraclique around the top clique: {} -> {} genes (density {:.2})",
            top.len(),
            pc.len(),
            subgraph_density(&garc, &pc)
        );
        // How well did we recover the strongest planted module?
        let planted: std::collections::BTreeSet<u32> = truth[0].iter().map(|&g| g as u32).collect();
        let found: std::collections::BTreeSet<u32> = pc.iter().copied().collect();
        let hit = planted.intersection(&found).count();
        println!(
            "module recovery: {hit}/{} of the strongest planted module",
            planted.len()
        );
    }
}
