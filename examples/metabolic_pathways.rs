//! Extreme-pathway analysis of a small metabolic network (§1).
//!
//! "The enumeration of a complete set of 'systemically independent'
//! metabolic pathways, termed 'extreme pathways', is at the core of
//! these approaches" — here on a toy central-metabolism-like network:
//! enzyme-subset reduction first, then elementary-mode enumeration.
//!
//! ```sh
//! cargo run --example metabolic_pathways
//! ```

use gsb::pathways::models::core_carbon;
use gsb::pathways::{elementary_flux_modes, enzyme_subsets, reduce_network, MetabolicNetwork};

fn main() {
    // A branched network: substrate S is taken up, split into two
    // branches (fermentation-like F, respiration-like R), with an
    // interconversion shunt and two excreted products.
    let mut net = MetabolicNetwork::new();
    net.reaction("uptake_S", false, &[("S", 1.0)]);
    net.reaction("S_to_A", false, &[("S", -1.0), ("A", 1.0)]);
    net.reaction("A_to_F", false, &[("A", -1.0), ("F", 1.0)]);
    net.reaction("A_to_R", false, &[("A", -1.0), ("R", 1.0)]);
    net.reaction("F_shunt_R", true, &[("F", -1.0), ("R", 1.0)]);
    net.reaction("excrete_F", false, &[("F", -1.0)]);
    net.reaction("excrete_R", false, &[("R", -1.0)]);

    println!(
        "network: {} metabolites, {} reactions",
        net.n_metabolites(),
        net.n_reactions()
    );

    // Enzyme subsets: reactions locked to fixed flux ratios can be
    // merged before enumeration (the METATOOL reduction the paper
    // cites as a mitigation for the exponential blow-up).
    let (subsets, blocked) = enzyme_subsets(&net);
    println!("enzyme subsets:");
    for group in &subsets {
        let names: Vec<&str> = group
            .iter()
            .map(|&i| net.reactions()[i].name.as_str())
            .collect();
        println!("  {names:?}");
    }
    if !blocked.is_empty() {
        println!("structurally blocked reactions: {blocked:?}");
    }

    // Elementary flux modes / extreme pathways.
    let modes = elementary_flux_modes(&net);
    println!("\n{} elementary flux modes:", modes.len());
    for m in &modes {
        let active: Vec<String> = m
            .support
            .iter()
            .map(|&i| {
                format!(
                    "{}{}",
                    net.reactions()[i].name,
                    if m.fluxes[i] < 0.0 { " (rev)" } else { "" }
                )
            })
            .collect();
        println!("  {}", active.join(" -> "));
        assert!(net.is_steady_state(&m.fluxes, 1e-6));
    }

    // Scale up: the curated core-carbon model, reduced before
    // enumeration (the paper's cited mitigation for the combinatorial
    // blow-up of genome-scale pathway analysis).
    let core = core_carbon();
    println!(
        "\ncore-carbon model: {} metabolites, {} reactions",
        core.n_metabolites(),
        core.n_reactions()
    );
    let red = reduce_network(&core);
    println!(
        "enzyme-subset reduction: {} -> {} reactions",
        core.n_reactions(),
        red.network.n_reactions()
    );
    let core_modes = elementary_flux_modes(&red.network);
    println!(
        "{} extreme pathways through central carbon:",
        core_modes.len()
    );
    for m in &core_modes {
        let full = red.expand_mode(&m.fluxes);
        assert!(core.is_steady_state(&full, 1e-6));
        let active: Vec<&str> = full
            .iter()
            .enumerate()
            .filter(|(_, f)| f.abs() > 1e-9)
            .map(|(i, _)| core.reactions()[i].name.as_str())
            .collect();
        println!("  {}", active.join(", "));
    }
}
