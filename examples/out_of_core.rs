//! Out-of-core enumeration: reproduce the paper's motivating
//! observation (§1) that disk-backed clique storage pays a heavy I/O
//! tax — the reason the framework wants "ultra-large globally
//! addressable memory".
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use gsb::core::sink::CountSink;
use gsb::core::store::SpillConfig;
use gsb::core::{CliqueEnumerator, EnumConfig};
use gsb::graph::generators::{planted, Module};
use std::time::Instant;

fn main() {
    let g = planted(
        500,
        0.006,
        &[Module::clique(13), Module::clique(11), Module::clique(9)],
        5,
    );
    println!("graph: {} vertices, {} edges", g.n(), g.m());
    let enumerator = CliqueEnumerator::new(EnumConfig::default());

    let t0 = Instant::now();
    let mut sink = CountSink::default();
    enumerator.enumerate(&g, &mut sink);
    let in_core = t0.elapsed();
    println!("in-core:           {} cliques in {in_core:?}", sink.count);

    for budget in [8 << 20, 512 << 10, 0usize] {
        let t0 = Instant::now();
        let mut sink = CountSink::default();
        let stats = enumerator
            .enumerate_spilled(&g, &mut sink, &SpillConfig::in_temp(budget))
            .expect("spill I/O");
        let took = t0.elapsed();
        println!(
            "budget {:>9} B: {} cliques in {took:?} ({} read back from disk, {:.1}x in-core)",
            budget,
            sink.count,
            stats.total_bytes_read(),
            took.as_secs_f64() / in_core.as_secs_f64().max(1e-9)
        );
    }
    println!("\nThe paper's conclusion, measured: the algorithm is the same;");
    println!("only the storage changed, and I/O dominates as memory shrinks.");
}
