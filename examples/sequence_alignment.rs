//! The paper's two dynamic-programming applications (§1, §4):
//! ClustalXP-style progressive multiple sequence alignment, and
//! PathBLAST-style pathway alignment across two organisms.
//!
//! ```sh
//! cargo run --release --example sequence_alignment
//! ```

use gsb::align::pathway::label_similarity;
use gsb::align::{align_pathways, global_align, progressive_msa, Scoring};

fn main() {
    // 1. Progressive MSA of a small "gene family" with indels and
    // substitutions.
    let family: Vec<Vec<u8>> = [
        "ATGGCTAAGCTTGGA",
        "ATGGCTAAGCTGGA",  // deletion
        "ATGGCAAAGCTTGGA", // substitution
        "ATGCTAAGCTTGGAA", // indel at both ends
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();

    let scoring = Scoring::dna();
    let msa = progressive_msa(&family, &scoring);
    println!("progressive MSA ({} columns):", msa.width());
    for (row, &orig) in msa.rows.iter().zip(&msa.order) {
        println!("  seq{orig}: {}", String::from_utf8_lossy(row));
    }
    println!("sum-of-pairs score: {}", msa.sum_of_pairs(&scoring));
    for (i, original) in family.iter().enumerate() {
        assert_eq!(&msa.ungapped(i), original);
    }

    // 2. Pairwise identity underneath the tree.
    let al = global_align(&family[0], &family[1], &scoring);
    println!(
        "\npairwise seq0 vs seq1: score {}, identity {:.0}%",
        al.score,
        100.0 * al.identity()
    );

    // 3. Pathway alignment: glycolysis in two organisms, one carrying
    // an extra bypass enzyme and one diverged label.
    let organism_a = ["HK", "PGI", "PFK", "ALD", "TPI", "GAPDH", "PGK"];
    let organism_b = ["HK", "GPI", "PFK", "FBA", "ALD", "TPI", "GAPDH", "PGK"];
    let sim = |x: &&str, y: &&str| {
        if x == y || (*x == "PGI" && *y == "GPI") {
            2.0
        } else {
            -2.0
        }
    };
    let pw = align_pathways(&organism_a, &organism_b, sim, -0.5);
    println!("\npathway alignment (score {:.1}):", pw.score);
    for &(a, b) in &pw.columns {
        let left = a.map_or("-", |i| organism_a[i]);
        let right = b.map_or("-", |j| organism_b[j]);
        println!("  {left:>6}  ~  {right}");
    }
    println!("conserved steps: {}", pw.matches().len());
    let _ = label_similarity(1.0, -1.0); // see docs for the simple case
}
