//! Protein-interaction denoising with Boolean graph operations (§1).
//!
//! "To extract true interactions from the false positive and false
//! negative rates, one can represent the data as undirected graphs ...
//! Then, queries consisting of Boolean graph operations (e.g., graph
//! intersection and at-least-k-of-n over multiple graphs) can be used
//! to refine the data." Yeast two-hybrid screens are noisy; replicates
//! vote. Complexes then fall out as maximal cliques of the consensus.
//!
//! ```sh
//! cargo run --example ppi_denoise
//! ```

use gsb::core::{CliqueEnumerator, CollectSink, EnumConfig};
use gsb::graph::generators::{planted, Module};
use gsb::graph::ops::{intersection, GraphStack};
use gsb::graph::BitGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corrupt a ground-truth interactome: drop true edges (false
/// negatives) and add spurious ones (false positives).
fn noisy_replicate(truth: &BitGraph, fn_rate: f64, fp_count: usize, seed: u64) -> BitGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = BitGraph::new(truth.n());
    for (u, v) in truth.edges() {
        if !rng.gen_bool(fn_rate) {
            g.add_edge(u, v);
        }
    }
    for _ in 0..fp_count {
        let u = rng.gen_range(0..truth.n());
        let v = rng.gen_range(0..truth.n());
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

fn count_true_edges(candidate: &BitGraph, truth: &BitGraph) -> (usize, usize) {
    let kept_true = intersection(candidate, truth).m();
    (kept_true, candidate.m() - kept_true)
}

fn main() {
    // Ground truth: 120 proteins, two complexes (cliques) of sizes 9
    // and 7 over a sparse bait-prey background.
    let truth = planted(120, 0.015, &[Module::clique(9), Module::clique(7)], 1);
    println!(
        "ground truth: {} proteins, {} interactions",
        truth.n(),
        truth.m()
    );

    // Five replicate screens, each with 20% false negatives and ~60
    // false positives (two-hybrid-like noise).
    let stack = GraphStack::from_graphs(
        (0..5)
            .map(|i| noisy_replicate(&truth, 0.2, 60, 100 + i))
            .collect(),
    );
    for k in 1..=stack.depth() {
        let voted = stack.at_least(k);
        let (tp, fp) = count_true_edges(&voted, &truth);
        println!(
            "at-least-{k}-of-5: {} edges ({} true, {} spurious, precision {:.2})",
            voted.m(),
            tp,
            fp,
            tp as f64 / voted.m().max(1) as f64
        );
    }

    // Denoise with the majority vote and extract complexes as maximal
    // cliques of size >= 5.
    let consensus = stack.at_least(3);
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k: 5,
        ..Default::default()
    })
    .enumerate(&consensus, &mut sink);
    println!("putative complexes (maximal cliques, size >= 5) in the consensus:");
    for c in &sink.cliques {
        println!("  size {:2}: {:?}", c.len(), c);
    }
}
