//! Walk through the scaling methodology (Figs. 5–7's substitution):
//! measure per-sub-list costs in a real sequential run, replay them on
//! virtual processors with a level barrier, and watch where speedup
//! bends — no 256-CPU Altix required.
//!
//! ```sh
//! cargo run --release --example altix_scaling
//! ```

use gsb::core::sink::CountSink;
use gsb::core::{CliqueEnumerator, EnumConfig};
use gsb::graph::generators::{correlation_like, CorrelationProfile};
use gsb::par::vsim::{SimConfig, Strategy, VirtualScheduler};

fn main() {
    let mut profile = CorrelationProfile::myogenic_like(600);
    profile.max_module = 16;
    let g = correlation_like(&profile, 7);
    println!("graph: n={}, m={}", g.n(), g.m());

    // 1. Real sequential run with deterministic cost recording.
    let mut sink = CountSink::default();
    let stats = CliqueEnumerator::new(EnumConfig {
        record_costs: true,
        ..Default::default()
    })
    .enumerate(&g, &mut sink);
    println!(
        "sequential: {} maximal cliques over {} levels ({:.3} ns/work-unit)",
        sink.count,
        stats.levels.len(),
        stats.ns_per_unit()
    );

    // 2. Replay on virtual processors.
    let costs = stats.costs_ns().expect("record_costs set");
    let vs = VirtualScheduler::new(
        costs.clone(),
        SimConfig {
            sync_base_ns: 5_000,
            sync_per_proc_ns: 300,
            strategy: Strategy::Lpt,
        },
    );
    println!(
        "\n{:>5}  {:>12}  {:>8}  {:>10}",
        "P", "time", "speedup", "efficiency"
    );
    for &(p, ns, s) in vs.sweep(&[1, 2, 4, 8, 16, 32, 64, 128, 256]).iter() {
        let eff = vs.run(p).efficiency();
        println!(
            "{p:>5}  {:>9.3} ms  {s:>8.1}  {:>9.1}%",
            ns as f64 / 1e6,
            100.0 * eff
        );
    }

    // 3. Contrast with a balancing-free static partition.
    let blind = VirtualScheduler::new(
        costs,
        SimConfig {
            sync_base_ns: 5_000,
            sync_per_proc_ns: 300,
            strategy: Strategy::Static,
        },
    );
    let p = 64;
    println!(
        "\nat P={p}: LPT {:.2} ms vs blind round-robin {:.2} ms — the balancer earns its keep",
        vs.run(p).total_ns as f64 / 1e6,
        blind.run(p).total_ns as f64 / 1e6
    );
}
