//! Network reduction by enzyme-subset merging.
//!
//! The paper (§1) lists "considering the reduced reaction network (with
//! the enzyme subsets taken as combined reactions)" as the standard
//! mitigation of the extreme-pathway blow-up [11, 23]. Each enzyme
//! subset — reactions structurally locked to fixed flux ratios — is
//! collapsed into one combined reaction whose stoichiometry is the
//! ratio-weighted sum of its members; intermediate metabolites cancel
//! out. Elementary flux modes of the reduced network are in one-to-one
//! correspondence with those of the original, which [`ReducedNetwork::expand_mode`]
//! realizes and the tests verify.

use crate::stoich::{MetabolicNetwork, Reaction};
use crate::subsets::{enzyme_subsets, kernel_basis};

const TOL: f64 = 1e-9;

/// Result of reducing a network.
#[derive(Clone, Debug)]
pub struct ReducedNetwork {
    /// The reduced network (one reaction per enzyme subset).
    pub network: MetabolicNetwork,
    /// For each reduced reaction: the original reaction indices and the
    /// flux each carries per unit of combined flux.
    pub members: Vec<Vec<(usize, f64)>>,
    /// Original reactions that can carry no steady-state flux.
    pub blocked: Vec<usize>,
    /// Number of reactions in the original network.
    pub original_reactions: usize,
}

/// Merge every enzyme subset into a single combined reaction.
pub fn reduce_network(net: &MetabolicNetwork) -> ReducedNetwork {
    let (subsets, blocked) = enzyme_subsets(net);
    let s = net.stoichiometric_matrix();
    let r = net.n_reactions();
    let basis = kernel_basis(&s, r);
    let kernel_row = |i: usize| -> Vec<f64> { basis.iter().map(|b| b[i]).collect() };

    let mut reduced = MetabolicNetwork::new();
    // Preserve metabolite interning (names and indices).
    for name in net.metabolite_names() {
        reduced.metabolite(name);
    }
    let mut members_out = Vec::with_capacity(subsets.len());
    for subset in &subsets {
        let lead = subset[0];
        // Ratios relative to the subset's lead reaction, read off any
        // kernel vector in which the subset is active.
        let lead_row = kernel_row(lead);
        let dim = lead_row
            .iter()
            .position(|x| x.abs() > TOL)
            .expect("unblocked reaction has a nonzero kernel entry");
        let lead_val = lead_row[dim];
        let ratios: Vec<(usize, f64)> = subset
            .iter()
            .map(|&i| (i, kernel_row(i)[dim] / lead_val))
            .collect();
        // Combined stoichiometry: ratio-weighted sum of member columns;
        // internal intermediates cancel.
        let mut combined = vec![0.0f64; net.n_metabolites()];
        for &(i, ratio) in &ratios {
            for &(m, c) in &net.reactions()[i].stoich {
                combined[m] += ratio * c;
            }
        }
        let stoich: Vec<(usize, f64)> = combined
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c.abs() > TOL)
            .collect();
        // The combined reaction can run backward only if every member
        // either is reversible or carries negative ratio-forward flux
        // symmetry; conservatively: all members reversible.
        let reversible = subset.iter().all(|&i| net.reactions()[i].reversible);
        let name = subset
            .iter()
            .map(|&i| net.reactions()[i].name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        push_raw_reaction(
            &mut reduced,
            Reaction {
                name,
                reversible,
                stoich,
            },
        );
        members_out.push(ratios);
    }
    ReducedNetwork {
        network: reduced,
        members: members_out,
        blocked,
        original_reactions: r,
    }
}

/// Append a reaction whose stoichiometry is already in metabolite
/// indices (the builder API takes names).
fn push_raw_reaction(net: &mut MetabolicNetwork, reaction: Reaction) {
    let names: Vec<String> = net.metabolite_names().to_vec();
    let by_name: Vec<(&str, f64)> = reaction
        .stoich
        .iter()
        .map(|&(m, c)| (names[m].as_str(), c))
        .collect();
    net.reaction(&reaction.name, reaction.reversible, &by_name);
}

impl ReducedNetwork {
    /// Expand a flux vector over the reduced network back to the
    /// original reaction space.
    pub fn expand_mode(&self, reduced_flux: &[f64]) -> Vec<f64> {
        assert_eq!(
            reduced_flux.len(),
            self.network.n_reactions(),
            "flux length mismatch"
        );
        let mut full = vec![0.0f64; self.original_reactions];
        for (subset, &v) in self.members.iter().zip(reduced_flux) {
            for &(orig, ratio) in subset {
                full[orig] += ratio * v;
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efm::elementary_flux_modes;
    use crate::stoich::example_linear_chain;

    fn branched() -> MetabolicNetwork {
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("A_B", false, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("out_B", false, &[("B", -1.0)]);
        net.reaction("A_C", false, &[("A", -1.0), ("C", 1.0)]);
        net.reaction("out_C", false, &[("C", -1.0)]);
        net
    }

    #[test]
    fn linear_chain_collapses_to_one_reaction() {
        let net = example_linear_chain();
        let red = reduce_network(&net);
        assert_eq!(red.network.n_reactions(), 1);
        // the whole chain nets to nothing: uptake and excretion cancel
        assert!(red.network.reactions()[0].stoich.is_empty());
        assert_eq!(red.members[0].len(), 4);
        for &(_, ratio) in &red.members[0] {
            assert!((ratio - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn branched_reduces_to_three() {
        let net = branched();
        let red = reduce_network(&net);
        assert_eq!(red.network.n_reactions(), 3);
        assert!(red.blocked.is_empty());
        // Intermediates B and C cancel inside the merged branches: the
        // two branch reactions consume exactly one A each.
        let consume_a: Vec<bool> = red
            .network
            .reactions()
            .iter()
            .map(|r| r.stoich == vec![(0, -1.0)])
            .collect();
        assert_eq!(consume_a.iter().filter(|&&x| x).count(), 2);
    }

    #[test]
    fn efms_of_reduced_expand_to_original_modes() {
        let net = branched();
        let red = reduce_network(&net);
        let reduced_modes = elementary_flux_modes(&red.network);
        let original_modes = elementary_flux_modes(&net);
        assert_eq!(reduced_modes.len(), original_modes.len());
        for m in &reduced_modes {
            let full = red.expand_mode(&m.fluxes);
            assert!(
                net.is_steady_state(&full, 1e-6),
                "expanded mode {full:?} not steady"
            );
        }
    }

    #[test]
    fn stoichiometric_ratios_preserved() {
        // 2A -> B chained with B -> C: the subset carries flux ratio
        // u:v = 1:... combined must consume 2 A per C produced.
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("2A_B", false, &[("A", -2.0), ("B", 1.0)]);
        net.reaction("B_C", false, &[("B", -1.0), ("C", 1.0)]);
        net.reaction("out_C", false, &[("C", -1.0)]);
        let red = reduce_network(&net);
        assert_eq!(red.network.n_reactions(), 1);
        let modes = elementary_flux_modes(&net);
        assert_eq!(modes.len(), 1);
        // in_A runs at 2x the rate of 2A_B
        let m = &modes[0];
        assert!((m.fluxes[0] / m.fluxes[1] - 2.0).abs() < 1e-9);
        // reduction's ratios say the same
        let ratios = &red.members[0];
        let get = |i: usize| ratios.iter().find(|&&(j, _)| j == i).unwrap().1;
        assert!((get(0) / get(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_reactions_are_dropped() {
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("out_A", false, &[("A", -1.0)]);
        net.reaction("A_dead", false, &[("A", -1.0), ("DEAD", 1.0)]);
        let red = reduce_network(&net);
        assert_eq!(red.blocked, vec![2]);
        assert_eq!(red.network.n_reactions(), 1);
    }

    #[test]
    fn reversibility_requires_all_members() {
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", true, &[("A", 1.0)]);
        net.reaction("A_B", false, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("out_B", true, &[("B", -1.0)]);
        let red = reduce_network(&net);
        assert_eq!(red.network.n_reactions(), 1);
        assert!(!red.network.reactions()[0].reversible);
    }
}
