//! Curated example networks with regression-tested pathway structure.
//!
//! [`core_carbon`] is a simplified core-carbon-metabolism model in the
//! style of the networks the extreme-pathway papers analyze
//! (glycolysis trunk, a pentose-phosphate-like bypass, fermentation vs.
//! respiration branch, and exchange fluxes). Small enough to enumerate
//! in microseconds, rich enough to exercise subsets, reduction, and
//! reversibility handling.

use crate::stoich::MetabolicNetwork;

/// A ~14-reaction core-carbon model. Metabolites: GLC (glucose), G6P,
/// F6P, T3P (triose), PYR (pyruvate), ACE (acetate-like overflow
/// product), CO2, ATP, NADH.
///
/// Known structure (pinned by tests): every steady-state mode takes
/// glucose to some mix of overflow product, CO2, and biomass drain;
/// ATP/NADH are balanced internally.
pub fn core_carbon() -> MetabolicNetwork {
    let mut net = MetabolicNetwork::new();
    // Exchange fluxes
    net.reaction("glc_uptake", false, &[("GLC", 1.0)]);
    net.reaction("ace_export", false, &[("ACE", -1.0)]);
    net.reaction("co2_export", false, &[("CO2", -1.0)]);
    net.reaction("atp_drain", false, &[("ATP", -1.0)]); // growth/maintenance
                                                        // Glycolysis trunk
    net.reaction(
        "hexokinase",
        false,
        &[("GLC", -1.0), ("ATP", -1.0), ("G6P", 1.0)],
    );
    net.reaction("pgi", true, &[("G6P", -1.0), ("F6P", 1.0)]);
    net.reaction(
        "aldolase_chain",
        false,
        &[("F6P", -1.0), ("ATP", -1.0), ("T3P", 2.0)],
    );
    net.reaction(
        "lower_glycolysis",
        false,
        &[("T3P", -1.0), ("PYR", 1.0), ("ATP", 2.0), ("NADH", 1.0)],
    );
    // Pentose-phosphate-like bypass: G6P -> T3P + CO2 (lumped), no ATP
    net.reaction(
        "ppp_bypass",
        false,
        &[("G6P", -1.0), ("T3P", 0.5), ("CO2", 1.0), ("NADH", 2.0)],
    );
    // Fermentation: PYR + NADH -> ACE (lumped overflow, reoxidizes NADH)
    net.reaction(
        "fermentation",
        false,
        &[("PYR", -1.0), ("NADH", -1.0), ("ACE", 1.0)],
    );
    // Respiration: PYR + NADH burn to CO2, making ATP (lumped TCA+ETC)
    net.reaction(
        "respiration",
        false,
        &[("PYR", -1.0), ("NADH", -1.0), ("CO2", 3.0), ("ATP", 4.0)],
    );
    // NADH shuttle valve: NADH -> ATP (lumped oxidative phosphorylation
    // for excess redox)
    net.reaction("oxphos", false, &[("NADH", -1.0), ("ATP", 1.5)]);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efm::elementary_flux_modes;
    use crate::reduce::reduce_network;
    use crate::subsets::enzyme_subsets;

    #[test]
    fn model_shape() {
        let net = core_carbon();
        assert_eq!(net.n_metabolites(), 9);
        assert_eq!(net.n_reactions(), 12);
    }

    #[test]
    fn modes_exist_and_are_steady() {
        let net = core_carbon();
        let modes = elementary_flux_modes(&net);
        assert!(!modes.is_empty(), "core model must have pathways");
        for m in &modes {
            assert!(net.is_steady_state(&m.fluxes, 1e-6), "mode {:?}", m.support);
            // every mode must move carbon: glucose uptake active
            assert!(m.fluxes[0] > 0.0, "mode without uptake: {:?}", m.support);
        }
        // regression: the enumeration is deterministic
        let modes2 = elementary_flux_modes(&net);
        assert_eq!(modes.len(), modes2.len());
    }

    #[test]
    fn regression_mode_count() {
        // Pinned: changing the algorithm must not silently change the
        // pathway count of the curated model.
        let modes = elementary_flux_modes(&core_carbon());
        assert_eq!(
            modes.len(),
            4,
            "supports: {:?}",
            modes.iter().map(|m| m.support.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn glycolysis_trunk_is_a_subset() {
        // hexokinase and the uptake are locked 1:1 (only consumer of GLC).
        let net = core_carbon();
        let (subsets, blocked) = enzyme_subsets(&net);
        assert!(blocked.is_empty());
        let find = |name: &str| net.reactions().iter().position(|r| r.name == name).unwrap();
        let uptake = find("glc_uptake");
        let hexo = find("hexokinase");
        let together = subsets
            .iter()
            .any(|s| s.contains(&uptake) && s.contains(&hexo));
        assert!(together, "subsets: {subsets:?}");
    }

    #[test]
    fn reduction_shrinks_and_expands_back() {
        let net = core_carbon();
        let red = reduce_network(&net);
        assert!(red.network.n_reactions() < net.n_reactions());
        let reduced_modes = elementary_flux_modes(&red.network);
        for m in &reduced_modes {
            let full = red.expand_mode(&m.fluxes);
            assert!(net.is_steady_state(&full, 1e-6));
        }
        assert_eq!(
            reduced_modes.len(),
            elementary_flux_modes(&net).len(),
            "reduction must preserve the pathway count"
        );
    }
}
