//! Metabolic networks and stoichiometric matrices.

use std::collections::HashMap;

/// One reaction: named, optionally reversible, with stoichiometric
/// coefficients over the network's *internal* metabolites (negative =
/// consumed, positive = produced). External metabolites are simply
/// omitted, following the convention that exchange fluxes are
/// unconstrained.
#[derive(Clone, Debug, PartialEq)]
pub struct Reaction {
    /// Display name (e.g. an enzyme).
    pub name: String,
    /// Whether the flux may run negative.
    pub reversible: bool,
    /// `(metabolite index, coefficient)` pairs.
    pub stoich: Vec<(usize, f64)>,
}

/// A metabolic reaction network over named internal metabolites.
#[derive(Clone, Debug, Default)]
pub struct MetabolicNetwork {
    metabolites: Vec<String>,
    met_index: HashMap<String, usize>,
    reactions: Vec<Reaction>,
}

impl MetabolicNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a metabolite by name, returning its index.
    pub fn metabolite(&mut self, name: &str) -> usize {
        if let Some(&i) = self.met_index.get(name) {
            return i;
        }
        let i = self.metabolites.len();
        self.metabolites.push(name.to_string());
        self.met_index.insert(name.to_string(), i);
        i
    }

    /// Add a reaction from `(metabolite name, coefficient)` pairs.
    /// Consumed metabolites carry negative coefficients.
    pub fn reaction(&mut self, name: &str, reversible: bool, stoich: &[(&str, f64)]) -> usize {
        let stoich = stoich
            .iter()
            .map(|&(m, c)| (self.metabolite(m), c))
            .collect();
        self.reactions.push(Reaction {
            name: name.to_string(),
            reversible,
            stoich,
        });
        self.reactions.len() - 1
    }

    /// Number of internal metabolites.
    pub fn n_metabolites(&self) -> usize {
        self.metabolites.len()
    }

    /// Number of reactions.
    pub fn n_reactions(&self) -> usize {
        self.reactions.len()
    }

    /// Metabolite names in index order.
    pub fn metabolite_names(&self) -> &[String] {
        &self.metabolites
    }

    /// The reactions.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Dense stoichiometric matrix S (metabolites × reactions):
    /// steady state is `S · v = 0`.
    pub fn stoichiometric_matrix(&self) -> Vec<Vec<f64>> {
        let mut s = vec![vec![0.0; self.reactions.len()]; self.metabolites.len()];
        for (j, r) in self.reactions.iter().enumerate() {
            for &(m, c) in &r.stoich {
                s[m][j] += c;
            }
        }
        s
    }

    /// Split every reversible reaction into forward + backward
    /// irreversible halves (the standard preprocessing for extreme
    /// pathway enumeration). Returns the new network and, for each new
    /// reaction, `(original index, direction)` with `+1` forward, `-1`
    /// backward.
    pub fn split_reversible(&self) -> (MetabolicNetwork, Vec<(usize, i8)>) {
        let mut out = MetabolicNetwork::new();
        out.metabolites = self.metabolites.clone();
        out.met_index = self.met_index.clone();
        let mut origin = Vec::new();
        for (i, r) in self.reactions.iter().enumerate() {
            out.reactions.push(Reaction {
                name: r.name.clone(),
                reversible: false,
                stoich: r.stoich.clone(),
            });
            origin.push((i, 1i8));
            if r.reversible {
                out.reactions.push(Reaction {
                    name: format!("{}_rev", r.name),
                    reversible: false,
                    stoich: r.stoich.iter().map(|&(m, c)| (m, -c)).collect(),
                });
                origin.push((i, -1));
            }
        }
        (out, origin)
    }

    /// Steady-state residual `S · v` for a flux vector.
    pub fn residual(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n_reactions(), "flux length mismatch");
        let s = self.stoichiometric_matrix();
        s.iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Is `v` a steady-state flux (within tolerance) respecting
    /// irreversibility?
    pub fn is_steady_state(&self, v: &[f64], tol: f64) -> bool {
        let ok_dirs = self
            .reactions
            .iter()
            .zip(v)
            .all(|(r, &f)| r.reversible || f >= -tol);
        ok_dirs && self.residual(v).iter().all(|x| x.abs() <= tol)
    }
}

/// A classic textbook example: linear chain A → B → C with uptake and
/// excretion, plus a bypass. Used in tests and docs.
pub fn example_linear_chain() -> MetabolicNetwork {
    let mut net = MetabolicNetwork::new();
    net.reaction("uptake_A", false, &[("A", 1.0)]);
    net.reaction("A_to_B", false, &[("A", -1.0), ("B", 1.0)]);
    net.reaction("B_to_C", false, &[("B", -1.0), ("C", 1.0)]);
    net.reaction("excrete_C", false, &[("C", -1.0)]);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut net = MetabolicNetwork::new();
        let a = net.metabolite("A");
        let b = net.metabolite("B");
        assert_eq!(net.metabolite("A"), a);
        assert_ne!(a, b);
        assert_eq!(net.metabolite_names(), &["A", "B"]);
    }

    #[test]
    fn stoichiometric_matrix_shape() {
        let net = example_linear_chain();
        let s = net.stoichiometric_matrix();
        assert_eq!(s.len(), 3); // A, B, C
        assert_eq!(s[0].len(), 4);
        // A row: +1 (uptake), -1 (A_to_B)
        assert_eq!(s[0], vec![1.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn steady_state_check() {
        let net = example_linear_chain();
        assert!(net.is_steady_state(&[1.0, 1.0, 1.0, 1.0], 1e-9));
        assert!(!net.is_steady_state(&[1.0, 0.0, 1.0, 1.0], 1e-9));
        // negative flux through irreversible reaction rejected
        assert!(!net.is_steady_state(&[-1.0, -1.0, -1.0, -1.0], 1e-9));
    }

    #[test]
    fn split_reversible_doubles_only_reversible() {
        let mut net = MetabolicNetwork::new();
        net.reaction("r1", true, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("r2", false, &[("B", -1.0)]);
        let (split, origin) = net.split_reversible();
        assert_eq!(split.n_reactions(), 3);
        assert_eq!(origin, vec![(0, 1), (0, -1), (1, 1)]);
        assert!(split.reactions().iter().all(|r| !r.reversible));
        // reversed stoichiometry negated
        assert_eq!(split.reactions()[1].stoich[0].1, 1.0);
    }
}
