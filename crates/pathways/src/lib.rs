//! # gsb-pathways — metabolic pathway analysis substrate
//!
//! The SC'05 paper's first motivating application (§1): "the
//! enumeration of a complete set of 'systemically independent'
//! metabolic pathways, termed 'extreme pathways', is at the core of
//! these approaches", with the noted mitigations of the exponential
//! blow-up — "considering the reduced reaction network (with the enzyme
//! subsets taken as combined reactions)". This crate implements that
//! stack from scratch:
//!
//! * [`stoich`] — metabolic networks and their stoichiometric matrices;
//! * [`subsets`] — enzyme-subset detection (reactions with structurally
//!   fixed flux ratios, via the kernel of S);
//! * [`reduce`] — the METATOOL-style reduced network: enzyme subsets
//!   merged into combined reactions, with mode expansion back to the
//!   original space;
//! * [`efm`] — elementary flux mode / extreme pathway enumeration by
//!   the double-description tableau algorithm (Schuster-style), which
//!   is exactly the convex-polyhedron vertex enumeration the paper
//!   calls NP-hard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod efm;
pub mod models;
pub mod reduce;
pub mod stoich;
pub mod subsets;

pub use efm::{elementary_flux_modes, FluxMode};
pub use reduce::{reduce_network, ReducedNetwork};
pub use stoich::{MetabolicNetwork, Reaction};
pub use subsets::enzyme_subsets;
