//! Enzyme subsets: reactions whose steady-state fluxes are structurally
//! locked to fixed ratios.
//!
//! Pfeiffer et al.'s METATOOL reduction, which the paper (§1) lists as
//! one mitigation of the extreme-pathway blow-up: "considering the
//! reduced reaction network (with the enzyme subsets taken as combined
//! reactions)". Two reactions belong to one subset iff their rows in a
//! kernel basis of S are proportional — then every steady-state flux
//! carries them in the same ratio, so they can be merged.

use crate::stoich::MetabolicNetwork;

const TOL: f64 = 1e-9;

/// Kernel (nullspace) basis of a dense matrix `a` (rows × cols), as
/// vectors of length `cols`. Gaussian elimination with partial
/// pivoting.
pub fn kernel_basis(a: &[Vec<f64>], cols: usize) -> Vec<Vec<f64>> {
    let rows = a.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut pivot_col_of_row = Vec::new();
    let mut r = 0usize;
    for c in 0..cols {
        // find pivot
        let piv = (r..rows).max_by(|&x, &y| {
            m[x][c]
                .abs()
                .partial_cmp(&m[y][c].abs())
                .expect("no NaN in stoichiometry")
        });
        let Some(p) = piv else { break };
        if m[p][c].abs() <= TOL {
            continue;
        }
        m.swap(r, p);
        let pv = m[r][c];
        for x in &mut m[r] {
            *x /= pv;
        }
        for i in 0..rows {
            if i != r && m[i][c].abs() > TOL {
                let f = m[i][c];
                let pivot_row = m[r].clone();
                for (x, p) in m[i].iter_mut().zip(&pivot_row) {
                    *x -= f * p;
                }
            }
        }
        pivot_col_of_row.push(c);
        r += 1;
        if r == rows {
            break;
        }
    }
    let pivot_cols: Vec<usize> = pivot_col_of_row.clone();
    let free_cols: Vec<usize> = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();
    let mut basis = Vec::with_capacity(free_cols.len());
    for &fc in &free_cols {
        let mut v = vec![0.0; cols];
        v[fc] = 1.0;
        for (row, &pc) in pivot_col_of_row.iter().enumerate() {
            v[pc] = -m[row][fc];
        }
        basis.push(v);
    }
    basis
}

/// Group reactions into enzyme subsets. Returns the partition as lists
/// of reaction indices; reactions that are structurally *blocked*
/// (zero in every kernel vector — they can carry no steady-state flux)
/// are returned separately.
pub fn enzyme_subsets(net: &MetabolicNetwork) -> (Vec<Vec<usize>>, Vec<usize>) {
    let s = net.stoichiometric_matrix();
    let r = net.n_reactions();
    let basis = kernel_basis(&s, r);
    // Reaction i's "kernel row" is (basis[0][i], ..., basis[d-1][i]).
    let row = |i: usize| -> Vec<f64> { basis.iter().map(|b| b[i]).collect() };
    let blocked: Vec<usize> = (0..r)
        .filter(|&i| row(i).iter().all(|x| x.abs() <= TOL))
        .collect();
    let mut assigned = vec![false; r];
    for &b in &blocked {
        assigned[b] = true;
    }
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    for i in 0..r {
        if assigned[i] {
            continue;
        }
        assigned[i] = true;
        let ri = row(i);
        let mut group = vec![i];
        #[allow(clippy::needless_range_loop)] // j indexes both `assigned` and `row`
        for j in i + 1..r {
            if assigned[j] {
                continue;
            }
            if proportional(&ri, &row(j)) {
                assigned[j] = true;
                group.push(j);
            }
        }
        subsets.push(group);
    }
    (subsets, blocked)
}

/// Are two equal-length vectors proportional (including sign)?
fn proportional(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    // cross-product test: a[i]*b[j] == a[j]*b[i] for all pairs, with
    // supports equal
    let support_match = a
        .iter()
        .zip(b)
        .all(|(&x, &y)| (x.abs() > TOL) == (y.abs() > TOL));
    if !support_match {
        return false;
    }
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            if (a[i] * b[j] - a[j] * b[i]).abs() > 1e-6 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stoich::example_linear_chain;

    #[test]
    fn kernel_of_identity_is_empty() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(kernel_basis(&a, 2).is_empty());
    }

    #[test]
    fn kernel_dimension() {
        // one equation, three unknowns: kernel dim 2
        let a = vec![vec![1.0, 1.0, 1.0]];
        let basis = kernel_basis(&a, 3);
        assert_eq!(basis.len(), 2);
        for v in &basis {
            let dot: f64 = v.iter().sum();
            assert!(dot.abs() < 1e-9);
        }
    }

    #[test]
    fn linear_chain_is_one_subset() {
        // every reaction in the chain carries the same flux
        let net = example_linear_chain();
        let (subsets, blocked) = enzyme_subsets(&net);
        assert!(blocked.is_empty());
        assert_eq!(subsets.len(), 1);
        assert_eq!(subsets[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn branch_splits_subsets() {
        // A → B and A → C branch: uptake is its own subset, each branch
        // (conversion + excretion) is a subset.
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("A_B", false, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("out_B", false, &[("B", -1.0)]);
        net.reaction("A_C", false, &[("A", -1.0), ("C", 1.0)]);
        net.reaction("out_C", false, &[("C", -1.0)]);
        let (subsets, blocked) = enzyme_subsets(&net);
        assert!(blocked.is_empty());
        assert_eq!(subsets.len(), 3);
        assert!(subsets.contains(&vec![0]));
        assert!(subsets.contains(&vec![1, 2]));
        assert!(subsets.contains(&vec![3, 4]));
    }

    #[test]
    fn dead_end_reaction_is_blocked() {
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("out_A", false, &[("A", -1.0)]);
        net.reaction("A_to_dead", false, &[("A", -1.0), ("DEAD", 1.0)]);
        let (subsets, blocked) = enzyme_subsets(&net);
        assert_eq!(blocked, vec![2]);
        assert_eq!(subsets, vec![vec![0, 1]]);
    }

    #[test]
    fn proportional_handles_zero_vectors() {
        assert!(proportional(&[0.0, 0.0], &[0.0, 0.0]));
        assert!(!proportional(&[1.0, 0.0], &[0.0, 1.0]));
        assert!(proportional(&[1.0, 2.0], &[2.0, 4.0]));
        assert!(proportional(&[1.0, -2.0], &[-0.5, 1.0]));
    }
}
