//! Elementary flux mode / extreme pathway enumeration.
//!
//! The double-description ("tableau") algorithm of Schuster et al.,
//! which the paper's §1 identifies as the core of pathway analysis and
//! as polynomially equivalent to enumerating the vertices of a convex
//! polyhedron: start from the identity tableau over reactions, process
//! one metabolite (steady-state constraint) at a time by keeping rows
//! already at zero and combining positive×negative pairs, pruning any
//! combination whose support strictly contains another row's support.
//! Surviving rows are exactly the elementary modes.

use crate::stoich::MetabolicNetwork;

const TOL: f64 = 1e-9;

/// One elementary flux mode in the *original* reaction space.
#[derive(Clone, Debug, PartialEq)]
pub struct FluxMode {
    /// Flux through each original reaction (normalized: max |flux| = 1;
    /// reversible reactions may carry negative flux).
    pub fluxes: Vec<f64>,
    /// Indices of reactions with nonzero flux, ascending.
    pub support: Vec<usize>,
}

/// Tableau row during enumeration (over the split, irreversible
/// network).
#[derive(Clone, Debug)]
struct Row {
    flux: Vec<f64>,
    met: Vec<f64>,
}

impl Row {
    fn support(&self) -> Vec<usize> {
        self.flux
            .iter()
            .enumerate()
            .filter(|(_, &f)| f.abs() > TOL)
            .map(|(i, _)| i)
            .collect()
    }

    fn normalize(&mut self) {
        let max = self.flux.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if max > TOL {
            for f in &mut self.flux {
                *f /= max;
                if f.abs() <= TOL {
                    *f = 0.0;
                }
            }
            for m in &mut self.met {
                *m /= max;
                if m.abs() <= TOL {
                    *m = 0.0;
                }
            }
        }
    }
}

fn is_strict_subset(a: &[usize], b: &[usize]) -> bool {
    a.len() < b.len() && a.iter().all(|x| b.binary_search(x).is_ok())
}

/// Enumerate the elementary flux modes of `net`.
///
/// ```
/// use gsb_pathways::MetabolicNetwork;
/// let mut net = MetabolicNetwork::new();
/// net.reaction("in", false, &[("A", 1.0)]);
/// net.reaction("convert", false, &[("A", -1.0), ("B", 1.0)]);
/// net.reaction("out", false, &[("B", -1.0)]);
/// let modes = gsb_pathways::elementary_flux_modes(&net);
/// assert_eq!(modes.len(), 1);
/// assert_eq!(modes[0].support, vec![0, 1, 2]);
/// ```
///
/// Reversible reactions
/// are split, enumerated irreversibly, folded back, and deduplicated
/// (a fully reversible mode is reported once, with its first nonzero
/// flux positive).
pub fn elementary_flux_modes(net: &MetabolicNetwork) -> Vec<FluxMode> {
    let (split, origin) = net.split_reversible();
    let s = split.stoichiometric_matrix();
    let r = split.n_reactions();
    let m = split.n_metabolites();

    // Initial tableau: identity flux part, S-columns as metabolite part.
    let mut rows: Vec<Row> = (0..r)
        .map(|j| {
            let mut flux = vec![0.0; r];
            flux[j] = 1.0;
            Row {
                flux,
                met: (0..m).map(|i| s[i][j]).collect(),
            }
        })
        .collect();

    for i in 0..m {
        let (zeros, nonzeros): (Vec<Row>, Vec<Row>) =
            rows.drain(..).partition(|row| row.met[i].abs() <= TOL);
        let mut next = zeros;
        let pos: Vec<&Row> = nonzeros.iter().filter(|r| r.met[i] > 0.0).collect();
        let neg: Vec<&Row> = nonzeros.iter().filter(|r| r.met[i] < 0.0).collect();
        let mut candidates = Vec::new();
        for p in &pos {
            for q in &neg {
                let (a, b) = (-q.met[i], p.met[i]); // a·p + b·q zeroes column i
                let mut combined = Row {
                    flux: p
                        .flux
                        .iter()
                        .zip(&q.flux)
                        .map(|(x, y)| a * x + b * y)
                        .collect(),
                    met: p
                        .met
                        .iter()
                        .zip(&q.met)
                        .map(|(x, y)| a * x + b * y)
                        .collect(),
                };
                combined.met[i] = 0.0;
                combined.normalize();
                candidates.push(combined);
            }
        }
        // Elementarity: keep a candidate iff no other surviving row's
        // support is a strict subset, and drop duplicate supports (an
        // elementary mode is determined by its support up to scale).
        let mut all: Vec<Row> = next.drain(..).chain(candidates).collect();
        let supports: Vec<Vec<usize>> = all.iter().map(Row::support).collect();
        let mut keep = vec![true; all.len()];
        for x in 0..all.len() {
            if !keep[x] {
                continue;
            }
            for y in 0..all.len() {
                if x == y || !keep[y] {
                    continue;
                }
                if is_strict_subset(&supports[y], &supports[x]) {
                    keep[x] = false;
                    break;
                }
                if supports[x] == supports[y] && y < x {
                    keep[x] = false; // duplicate support, keep first
                    break;
                }
            }
        }
        rows = all
            .drain(..)
            .zip(keep)
            .filter_map(|(row, k)| k.then_some(row))
            .collect();
    }

    // Fold the split fluxes back to the original reaction space.
    let n_orig = net.n_reactions();
    let mut modes: Vec<FluxMode> = Vec::new();
    'rows: for row in &rows {
        let mut fluxes = vec![0.0f64; n_orig];
        for (j, &(orig, dir)) in origin.iter().enumerate() {
            fluxes[orig] += f64::from(dir) * row.flux[j];
        }
        let max = fluxes.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if max <= TOL {
            continue; // forward+backward two-cycle of a split reaction
        }
        for f in &mut fluxes {
            *f /= max;
            if f.abs() <= TOL {
                *f = 0.0;
            }
        }
        // canonical sign: first nonzero flux positive
        if let Some(first) = fluxes.iter().find(|f| f.abs() > TOL) {
            if *first < 0.0 {
                for f in &mut fluxes {
                    *f = -*f;
                }
            }
        }
        let support: Vec<usize> = fluxes
            .iter()
            .enumerate()
            .filter(|(_, &f)| f.abs() > TOL)
            .map(|(i, _)| i)
            .collect();
        for existing in &modes {
            if existing.support == support {
                continue 'rows; // reverse duplicate of a reversible mode
            }
        }
        modes.push(FluxMode { fluxes, support });
    }
    modes.sort_by(|a, b| a.support.cmp(&b.support));
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stoich::example_linear_chain;

    fn assert_all_steady(net: &MetabolicNetwork, modes: &[FluxMode]) {
        for m in modes {
            assert!(
                net.is_steady_state(&m.fluxes, 1e-6),
                "mode {:?} violates steady state: residual {:?}",
                m.fluxes,
                net.residual(&m.fluxes)
            );
        }
    }

    #[test]
    fn linear_chain_has_one_mode() {
        let net = example_linear_chain();
        let modes = elementary_flux_modes(&net);
        assert_eq!(modes.len(), 1);
        assert_eq!(modes[0].support, vec![0, 1, 2, 3]);
        assert_all_steady(&net, &modes);
    }

    #[test]
    fn diamond_has_two_modes() {
        // A → B → D and A → C → D
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("A_B", false, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("A_C", false, &[("A", -1.0), ("C", 1.0)]);
        net.reaction("B_D", false, &[("B", -1.0), ("D", 1.0)]);
        net.reaction("C_D", false, &[("C", -1.0), ("D", 1.0)]);
        net.reaction("out_D", false, &[("D", -1.0)]);
        let modes = elementary_flux_modes(&net);
        assert_eq!(modes.len(), 2);
        assert_all_steady(&net, &modes);
        let supports: Vec<_> = modes.iter().map(|m| m.support.clone()).collect();
        assert!(supports.contains(&vec![0, 1, 3, 5]));
        assert!(supports.contains(&vec![0, 2, 4, 5]));
    }

    #[test]
    fn reversible_reaction_reported_once() {
        // A ⇌ B with exchange on both sides: one mode A→B (canonical
        // sign), its reverse deduplicated... plus nothing else.
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", true, &[("A", 1.0)]);
        net.reaction("A_B", true, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("out_B", true, &[("B", -1.0)]);
        let modes = elementary_flux_modes(&net);
        assert_eq!(modes.len(), 1, "modes: {modes:?}");
        assert_eq!(modes[0].support, vec![0, 1, 2]);
        assert_all_steady(&net, &modes);
    }

    #[test]
    fn stoichiometry_scales_fluxes() {
        // 2A → B: the mode must carry flux ratio 1:2 between uptake of
        // A (doubled) and production of B.
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("2A_B", false, &[("A", -2.0), ("B", 1.0)]);
        net.reaction("out_B", false, &[("B", -1.0)]);
        let modes = elementary_flux_modes(&net);
        assert_eq!(modes.len(), 1);
        let m = &modes[0];
        assert!((m.fluxes[0] / m.fluxes[1] - 2.0).abs() < 1e-9);
        assert_all_steady(&net, &modes);
    }

    #[test]
    fn supports_are_minimal() {
        // No EFM support may strictly contain another (elementarity).
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("A_B", false, &[("A", -1.0), ("B", 1.0)]);
        net.reaction("A_C", false, &[("A", -1.0), ("C", 1.0)]);
        net.reaction("B_C", false, &[("B", -1.0), ("C", 1.0)]);
        net.reaction("out_C", false, &[("C", -1.0)]);
        let modes = elementary_flux_modes(&net);
        assert_all_steady(&net, &modes);
        for a in &modes {
            for b in &modes {
                if a.support != b.support {
                    assert!(
                        !is_strict_subset(&a.support, &b.support),
                        "{:?} ⊂ {:?}",
                        a.support,
                        b.support
                    );
                }
            }
        }
        assert_eq!(modes.len(), 2);
    }

    #[test]
    fn dead_end_metabolite_kills_modes() {
        // A → B with no way to consume B: no steady-state mode.
        let mut net = MetabolicNetwork::new();
        net.reaction("in_A", false, &[("A", 1.0)]);
        net.reaction("A_B", false, &[("A", -1.0), ("B", 1.0)]);
        let modes = elementary_flux_modes(&net);
        assert!(modes.is_empty(), "modes: {modes:?}");
    }
}
