//! Ranking with average-tie handling, the basis of Spearman correlation.

/// Ranks of `xs` (1-based, average ranks for ties), as used by the
/// "pairwise rank coefficient calculation" of the paper's pipeline.
///
/// NaN values are ranked last (deterministically) so a corrupted probe
/// cannot poison its whole row's ordering; callers filtering NaN should
/// do so upstream.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or_else(|| xs[a].is_nan().cmp(&xs[b].is_nan()))
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // positions i..j hold ties; average rank = mean of (i+1)..=j
        let avg = (i + j + 1) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values() {
        assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ties_get_average() {
        // values 5,5 occupy ranks 2 and 3 -> both 2.5
        assert_eq!(
            average_ranks(&[1.0, 5.0, 5.0, 9.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn all_equal() {
        assert_eq!(average_ranks(&[7.0; 4]), vec![2.5; 4]);
    }

    #[test]
    fn empty_and_single() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(average_ranks(&[3.0]), vec![1.0]);
    }

    #[test]
    fn nan_sorts_last() {
        let r = average_ranks(&[f64::NAN, 1.0, 2.0]);
        assert_eq!(r[1], 1.0);
        assert_eq!(r[2], 2.0);
        assert_eq!(r[0], 3.0);
    }
}
