//! Dense gene × condition expression matrices.

/// A genes × conditions matrix of expression levels, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpressionMatrix {
    genes: usize,
    conditions: usize,
    data: Vec<f64>,
}

impl ExpressionMatrix {
    /// A zeroed matrix.
    pub fn zeros(genes: usize, conditions: usize) -> Self {
        ExpressionMatrix {
            genes,
            conditions,
            data: vec![0.0; genes * conditions],
        }
    }

    /// Build from row-major data. Panics unless
    /// `data.len() == genes * conditions`.
    pub fn from_rows(genes: usize, conditions: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), genes * conditions, "shape mismatch");
        ExpressionMatrix {
            genes,
            conditions,
            data,
        }
    }

    /// Number of genes (rows).
    #[inline]
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Number of conditions / arrays (columns).
    #[inline]
    pub fn conditions(&self) -> usize {
        self.conditions
    }

    /// Expression of gene `g` under condition `c`.
    #[inline]
    pub fn get(&self, g: usize, c: usize) -> f64 {
        self.data[g * self.conditions + c]
    }

    /// Set one entry.
    #[inline]
    pub fn set(&mut self, g: usize, c: usize, v: f64) {
        self.data[g * self.conditions + c] = v;
    }

    /// One gene's expression profile.
    #[inline]
    pub fn row(&self, g: usize) -> &[f64] {
        &self.data[g * self.conditions..(g + 1) * self.conditions]
    }

    /// Mutable access to one gene's profile.
    #[inline]
    pub fn row_mut(&mut self, g: usize) -> &mut [f64] {
        &mut self.data[g * self.conditions..(g + 1) * self.conditions]
    }

    /// One condition's values across all genes (copies; columns are
    /// strided).
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.genes).map(|g| self.get(g, c)).collect()
    }

    /// Iterate over gene profiles.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data
            .chunks_exact(self.conditions.max(1))
            .take(self.genes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_access() {
        let mut m = ExpressionMatrix::zeros(3, 2);
        m.set(1, 1, 5.0);
        m.set(2, 0, -1.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.row(1), &[0.0, 5.0]);
        assert_eq!(m.column(0), vec![0.0, 0.0, -1.0]);
        assert_eq!(m.genes(), 3);
        assert_eq!(m.conditions(), 2);
    }

    #[test]
    fn from_rows_layout() {
        let m = ExpressionMatrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    #[should_panic]
    fn from_rows_shape_checked() {
        ExpressionMatrix::from_rows(2, 3, vec![1.0; 5]);
    }
}
