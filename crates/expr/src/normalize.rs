//! Normalization of expression matrices.
//!
//! The paper's graphs were built "from raw microarray data after
//! normalization" (§3). Two standard steps are provided: per-gene
//! z-scoring (so correlation thresholds compare across genes) and
//! cross-array quantile normalization (so arrays share a common
//! intensity distribution).

use crate::matrix::ExpressionMatrix;
use crate::rank::average_ranks;

/// Z-score every gene profile in place: mean 0, stddev 1. Genes with
/// zero variance are left centered at zero.
pub fn zscore_rows(m: &mut ExpressionMatrix) {
    let c = m.conditions();
    if c == 0 {
        return;
    }
    for g in 0..m.genes() {
        let row = m.row_mut(g);
        let mean = row.iter().sum::<f64>() / c as f64;
        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / c as f64;
        let sd = var.sqrt();
        for x in row.iter_mut() {
            *x = if sd > 0.0 { (*x - mean) / sd } else { 0.0 };
        }
    }
}

/// Quantile-normalize across arrays (columns) in place: each column is
/// forced onto the mean order statistics of all columns. Ties within a
/// column receive the average of their reference quantiles.
pub fn quantile_normalize(m: &mut ExpressionMatrix) {
    let (genes, conditions) = (m.genes(), m.conditions());
    if genes == 0 || conditions == 0 {
        return;
    }
    // Reference distribution: mean of the g-th smallest value across
    // columns.
    let mut reference = vec![0.0f64; genes];
    for c in 0..conditions {
        let mut col = m.column(c);
        col.sort_by(|a, b| a.partial_cmp(b).expect("NaN in expression data"));
        for (g, v) in col.into_iter().enumerate() {
            reference[g] += v;
        }
    }
    for r in reference.iter_mut() {
        *r /= conditions as f64;
    }
    // Map each column value to the reference value at its (average) rank.
    for c in 0..conditions {
        let col = m.column(c);
        let ranks = average_ranks(&col);
        for (g, rank) in ranks.iter().enumerate() {
            // rank is 1-based and possibly fractional (ties): linear
            // interpolation between neighboring reference quantiles.
            let r = rank - 1.0;
            let lo = r.floor() as usize;
            let hi = r.ceil() as usize;
            let frac = r - lo as f64;
            let v = if hi >= genes {
                reference[genes - 1]
            } else {
                reference[lo] * (1.0 - frac) + reference[hi] * frac
            };
            m.set(g, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_normalizes_moments() {
        let mut m = ExpressionMatrix::from_rows(2, 4, vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        zscore_rows(&mut m);
        let row = m.row(0);
        let mean: f64 = row.iter().sum::<f64>() / 4.0;
        let var: f64 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        // constant row maps to zeros, not NaN
        assert_eq!(m.row(1), &[0.0; 4]);
    }

    #[test]
    fn quantile_makes_columns_identical_distributions() {
        let mut m = ExpressionMatrix::from_rows(
            4,
            2,
            vec![
                5.0, 400.0, //
                2.0, 100.0, //
                3.0, 300.0, //
                4.0, 200.0,
            ],
        );
        quantile_normalize(&mut m);
        let mut c0 = m.column(0);
        let mut c1 = m.column(1);
        c0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        c1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in c0.iter().zip(&c1) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // order within each column is preserved
        assert!(m.get(1, 0) < m.get(2, 0));
        assert!(m.get(1, 1) < m.get(3, 1));
    }

    #[test]
    fn quantile_preserves_ranks() {
        let mut m = ExpressionMatrix::from_rows(3, 1, vec![9.0, 1.0, 5.0]);
        let before = crate::rank::average_ranks(&m.column(0));
        quantile_normalize(&mut m);
        let after = crate::rank::average_ranks(&m.column(0));
        assert_eq!(before, after);
    }

    #[test]
    fn degenerate_shapes_no_panic() {
        let mut m = ExpressionMatrix::zeros(0, 5);
        quantile_normalize(&mut m);
        zscore_rows(&mut m);
        let mut m = ExpressionMatrix::zeros(5, 0);
        quantile_normalize(&mut m);
        zscore_rows(&mut m);
    }
}
