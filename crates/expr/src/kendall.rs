//! Kendall rank correlation (τ-b) and missing-data-aware Pearson.
//!
//! Spearman is the paper's "pairwise rank coefficient"; Kendall's τ-b
//! is the other standard rank coefficient microarray pipelines reach
//! for when outliers dominate, and real array data has missing probes —
//! handled here by pairwise-complete filtering.

use crate::correlation::{pearson, CorrelationMatrix};
use crate::matrix::ExpressionMatrix;
use rayon::prelude::*;

/// Kendall τ-b of two equal-length profiles (tie-corrected). Returns
/// 0.0 when either profile is constant.
pub fn kendall(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "profile length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_x, mut ties_y) = (0i64, 0i64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            let tx = dx == 0.0;
            let ty = dy == 0.0;
            match (tx, ty) {
                (true, true) => {}
                (true, false) => ties_x += 1,
                (false, true) => ties_y += 1,
                (false, false) => {
                    if dx * dy > 0.0 {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let n0 = concordant + discordant;
    let denom = (((n0 + ties_x) as f64) * ((n0 + ties_y) as f64)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        ((concordant - discordant) as f64 / denom).clamp(-1.0, 1.0)
    }
}

/// All-pairs Kendall τ-b (parallel over the leading gene).
pub fn kendall_matrix(m: &ExpressionMatrix) -> CorrelationMatrix {
    let n = m.genes();
    let profiles: Vec<&[f64]> = (0..n).map(|g| m.row(g)).collect();
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (i + 1..n)
                .map(|j| kendall(profiles[i], profiles[j]))
                .collect()
        })
        .collect();
    CorrelationMatrix::from_upper_rows(n, rows)
}

/// Pearson correlation over pairwise-complete observations: positions
/// where either profile is NaN are dropped. Returns 0.0 when fewer
/// than 3 complete pairs remain (too little data to correlate).
pub fn pearson_complete(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "profile length mismatch");
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for (&a, &b) in x.iter().zip(y) {
        if !a.is_nan() && !b.is_nan() {
            xs.push(a);
            ys.push(b);
        }
    }
    if xs.len() < 3 {
        return 0.0;
    }
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall(&x, &[10., 20., 30., 40.]) - 1.0).abs() < 1e-12);
        assert!((kendall(&x, &[40., 30., 20., 10.]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value() {
        // classic example: one discordant pair among six
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 4.0, 3.0];
        // C=5, D=1, tau = 4/6
        assert!((kendall(&x, &y) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_corrected() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let t = kendall(&x, &y);
        assert!(t > 0.0 && t < 1.0, "tau {t}");
        // constant profile -> 0
        assert_eq!(kendall(&[5.0; 4], &y), 0.0);
        assert_eq!(kendall(&[], &[]), 0.0);
    }

    #[test]
    fn monotone_invariance() {
        // tau depends only on orderings
        let x = [0.1, 0.5, 0.9, 1.7, 2.0];
        let y = [3.0, 1.0, 4.0, 1.5, 9.0];
        let fx: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((kendall(&x, &y) - kendall(&fx, &y)).abs() < 1e-12);
    }

    #[test]
    fn matrix_matches_pairwise() {
        let m = ExpressionMatrix::from_rows(
            3,
            5,
            vec![
                1., 4., 2., 8., 5., //
                2., 2., 9., 1., 8., //
                9., 7., 5., 3., 1.,
            ],
        );
        let c = kendall_matrix(&m);
        for (i, j, r) in c.iter_pairs() {
            assert!((r - kendall(m.row(i), m.row(j))).abs() < 1e-12);
        }
        assert_eq!(c.get(1, 0), c.get(0, 1));
    }

    #[test]
    fn pearson_complete_ignores_nan() {
        let x = [1.0, 2.0, f64::NAN, 4.0, 5.0];
        let y = [2.0, 4.0, 100.0, 8.0, 10.0];
        assert!((pearson_complete(&x, &y) - 1.0).abs() < 1e-12);
        // too few complete pairs
        let short = [1.0, f64::NAN, f64::NAN, f64::NAN, f64::NAN];
        assert_eq!(pearson_complete(&short, &y), 0.0);
    }
}
