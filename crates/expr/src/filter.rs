//! Gene filtering and missing-value handling.
//!
//! Real microarray pipelines filter uninformative probes before the
//! O(n²) correlation pass — the paper's graphs come from "raw
//! microarray data after normalization ... and filtering" — and patch
//! missing intensities. Both steps here, with the kept-gene index map
//! so downstream cliques can be traced back to probe ids.

use crate::matrix::ExpressionMatrix;

/// Per-gene variance (population).
pub fn gene_variances(m: &ExpressionMatrix) -> Vec<f64> {
    let c = m.conditions();
    (0..m.genes())
        .map(|g| {
            if c == 0 {
                return 0.0;
            }
            let row = m.row(g);
            let mean = row.iter().filter(|x| !x.is_nan()).sum::<f64>()
                / row.iter().filter(|x| !x.is_nan()).count().max(1) as f64;
            let (mut var, mut k) = (0.0, 0usize);
            for &x in row {
                if !x.is_nan() {
                    var += (x - mean) * (x - mean);
                    k += 1;
                }
            }
            if k == 0 {
                0.0
            } else {
                var / k as f64
            }
        })
        .collect()
}

/// Keep genes whose variance is at least `min_variance`. Returns the
/// filtered matrix and the original indices of the kept genes.
pub fn filter_low_variance(
    m: &ExpressionMatrix,
    min_variance: f64,
) -> (ExpressionMatrix, Vec<usize>) {
    let vars = gene_variances(m);
    let kept: Vec<usize> = (0..m.genes())
        .filter(|&g| vars[g] >= min_variance)
        .collect();
    let mut out = ExpressionMatrix::zeros(kept.len(), m.conditions());
    for (new, &old) in kept.iter().enumerate() {
        out.row_mut(new).copy_from_slice(m.row(old));
    }
    (out, kept)
}

/// Keep the `top` highest-variance genes (all genes if `top >= genes`).
pub fn keep_top_variance(m: &ExpressionMatrix, top: usize) -> (ExpressionMatrix, Vec<usize>) {
    let vars = gene_variances(m);
    let mut order: Vec<usize> = (0..m.genes()).collect();
    order.sort_by(|&a, &b| {
        vars[b]
            .partial_cmp(&vars[a])
            .expect("no NaN variance")
            .then(a.cmp(&b))
    });
    let mut kept: Vec<usize> = order.into_iter().take(top).collect();
    kept.sort_unstable();
    let mut out = ExpressionMatrix::zeros(kept.len(), m.conditions());
    for (new, &old) in kept.iter().enumerate() {
        out.row_mut(new).copy_from_slice(m.row(old));
    }
    (out, kept)
}

/// Replace each NaN with its gene's mean over observed conditions
/// (genes with no observation become all-zero). Returns how many
/// values were imputed.
pub fn impute_missing_with_gene_mean(m: &mut ExpressionMatrix) -> usize {
    let mut imputed = 0usize;
    for g in 0..m.genes() {
        let row = m.row(g);
        let observed: Vec<f64> = row.iter().copied().filter(|x| !x.is_nan()).collect();
        let mean = if observed.is_empty() {
            0.0
        } else {
            observed.iter().sum::<f64>() / observed.len() as f64
        };
        for x in m.row_mut(g) {
            if x.is_nan() {
                *x = mean;
                imputed += 1;
            }
        }
    }
    imputed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_computation() {
        let m = ExpressionMatrix::from_rows(2, 4, vec![1., 1., 1., 1., 0., 2., 0., 2.]);
        let v = gene_variances(&m);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn filter_drops_flat_genes() {
        let m = ExpressionMatrix::from_rows(3, 3, vec![5., 5., 5., 1., 2., 3., 7., 7., 7.1]);
        let (f, kept) = filter_low_variance(&m, 0.01);
        assert_eq!(kept, vec![1]);
        assert_eq!(f.genes(), 1);
        assert_eq!(f.row(0), m.row(1));
    }

    #[test]
    fn top_variance_keeps_order_and_indices() {
        let m = ExpressionMatrix::from_rows(3, 2, vec![0., 10., 0., 1., 0., 5.]);
        let (f, kept) = keep_top_variance(&m, 2);
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(f.genes(), 2);
        assert_eq!(f.row(1), m.row(2));
        let (all, kept_all) = keep_top_variance(&m, 10);
        assert_eq!(all.genes(), 3);
        assert_eq!(kept_all, vec![0, 1, 2]);
    }

    #[test]
    fn imputation_fills_gene_means() {
        let mut m = ExpressionMatrix::from_rows(
            2,
            3,
            vec![1.0, f64::NAN, 3.0, f64::NAN, f64::NAN, f64::NAN],
        );
        let n = impute_missing_with_gene_mean(&mut m);
        assert_eq!(n, 4);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn variance_skips_nan() {
        let m = ExpressionMatrix::from_rows(1, 4, vec![0.0, 2.0, f64::NAN, 0.0]);
        let v = gene_variances(&m);
        assert!(v[0] > 0.0 && !v[0].is_nan());
    }
}
