//! Synthetic expression data with planted co-regulated modules.
//!
//! Stands in for the paper's proprietary microarray datasets: each
//! module shares a latent condition-response factor; member genes mix
//! that factor with private noise, so within-module pairwise correlation
//! is ≈ `strength²` in expectation — thresholding recovers the module as
//! a (near-)clique, exactly the structure the SC'05 graphs exhibit.

use crate::matrix::ExpressionMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One planted module.
#[derive(Clone, Debug)]
pub struct SynthModule {
    /// Number of member genes.
    pub size: usize,
    /// Mixing weight of the shared latent factor, in [0, 1]; within-
    /// module correlation concentrates around `strength²`.
    pub strength: f64,
}

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Total genes (rows).
    pub genes: usize,
    /// Conditions / arrays (columns).
    pub conditions: usize,
    /// Planted modules; memberships are disjoint unless sizes exceed the
    /// gene count, which panics.
    pub modules: Vec<SynthModule>,
    /// Standard deviation of per-gene noise.
    pub noise: f64,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl SynthConfig {
    /// Generate the matrix and the per-module gene memberships.
    pub fn generate(&self) -> (ExpressionMatrix, Vec<Vec<usize>>) {
        let total_module_genes: usize = self.modules.iter().map(|m| m.size).sum();
        assert!(
            total_module_genes <= self.genes,
            "modules need {total_module_genes} genes, only {} available",
            self.genes
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut m = ExpressionMatrix::zeros(self.genes, self.conditions);

        // background: independent noise
        for g in 0..self.genes {
            for c in 0..self.conditions {
                m.set(g, c, self.noise * normalish(&mut rng));
            }
        }

        // assign disjoint random memberships
        let mut ids: Vec<usize> = (0..self.genes).collect();
        ids.shuffle(&mut rng);
        let mut cursor = 0usize;
        let mut memberships = Vec::with_capacity(self.modules.len());
        for spec in &self.modules {
            let members: Vec<usize> = ids[cursor..cursor + spec.size].to_vec();
            cursor += spec.size;
            // shared latent factor per condition
            let latent: Vec<f64> = (0..self.conditions).map(|_| normalish(&mut rng)).collect();
            let w = spec.strength.clamp(0.0, 1.0);
            let private = (1.0 - w * w).sqrt();
            for &g in &members {
                for (c, &l) in latent.iter().enumerate() {
                    let v = w * l + private * self.noise * normalish(&mut rng);
                    m.set(g, c, v);
                }
            }
            memberships.push(members);
        }
        (m, memberships)
    }
}

/// Approximate standard normal via the sum of 12 uniforms minus 6
/// (Irwin–Hall): mean 0, variance 1, adequate for workload synthesis and
/// free of external distribution dependencies.
fn normalish(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::pearson;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig {
            genes: 30,
            conditions: 10,
            modules: vec![SynthModule {
                size: 5,
                strength: 0.9,
            }],
            noise: 1.0,
            seed: 7,
        };
        let (a, ma) = cfg.generate();
        let (b, mb) = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(ma, mb);
    }

    #[test]
    fn module_members_correlate() {
        let cfg = SynthConfig {
            genes: 40,
            conditions: 60,
            modules: vec![SynthModule {
                size: 6,
                strength: 0.95,
            }],
            noise: 1.0,
            seed: 3,
        };
        let (m, members) = cfg.generate();
        let mem = &members[0];
        let mut within = Vec::new();
        for (i, &u) in mem.iter().enumerate() {
            for &v in &mem[i + 1..] {
                within.push(pearson(m.row(u), m.row(v)));
            }
        }
        let avg = within.iter().sum::<f64>() / within.len() as f64;
        assert!(avg > 0.7, "avg within-module r = {avg}");
    }

    #[test]
    fn background_uncorrelated_on_average() {
        let cfg = SynthConfig {
            genes: 30,
            conditions: 80,
            modules: vec![],
            noise: 1.0,
            seed: 5,
        };
        let (m, _) = cfg.generate();
        let mut rs = Vec::new();
        for i in 0..10 {
            for j in i + 1..10 {
                rs.push(pearson(m.row(i), m.row(j)).abs());
            }
        }
        let avg = rs.iter().sum::<f64>() / rs.len() as f64;
        assert!(avg < 0.3, "background |r| = {avg}");
    }

    #[test]
    fn memberships_disjoint() {
        let cfg = SynthConfig {
            genes: 50,
            conditions: 10,
            modules: vec![
                SynthModule {
                    size: 10,
                    strength: 0.9,
                },
                SynthModule {
                    size: 15,
                    strength: 0.8,
                },
            ],
            noise: 1.0,
            seed: 1,
        };
        let (_, members) = cfg.generate();
        let mut all: Vec<usize> = members.iter().flatten().copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    #[should_panic]
    fn oversubscription_panics() {
        SynthConfig {
            genes: 5,
            conditions: 4,
            modules: vec![SynthModule {
                size: 10,
                strength: 0.9,
            }],
            noise: 1.0,
            seed: 0,
        }
        .generate();
    }
}
