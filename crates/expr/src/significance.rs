//! Statistical significance of correlation thresholds.
//!
//! The paper's biology (§4) worries explicitly about "the number of
//! independent hypotheses being tested" across a 12,422² correlation
//! matrix. This module converts between correlation magnitude and
//! p-value via the Fisher z-transform — `z = atanh(r)·√(n−3)` is
//! approximately standard normal under the null — and derives the
//! |r| threshold for a target significance level with Bonferroni
//! correction over all tested pairs.

use crate::correlation::CorrelationMatrix;

/// Φ(x): standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — ample for thresholding).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// Inverse of the standard normal CDF (Acklam-style rational
/// approximation refined by one Newton step; |error| < 1e-8 over
/// (1e-12, 1−1e-12)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of [0,1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Beasley-Springer-Moro
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    let x = if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let mut r = if y > 0.0 { 1.0 - p } else { p };
        r = (-r.ln()).ln();
        let mut s = C[0];
        let mut rp = 1.0;
        for &c in &C[1..] {
            rp *= r;
            s += c * rp;
        }
        if y < 0.0 {
            -s
        } else {
            s
        }
    };
    // one Newton refinement against normal_cdf
    let pdf = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if pdf > 1e-300 {
        x - (normal_cdf(x) - p) / pdf
    } else {
        x
    }
}

/// Two-sided p-value of observing |correlation| ≥ `r` between two
/// length-`n` profiles under the null of independence (Fisher z).
/// Returns 1.0 when `n <= 3` (too short to test).
pub fn correlation_pvalue(r: f64, n: usize) -> f64 {
    if n <= 3 {
        return 1.0;
    }
    let r = r.clamp(-0.9999999, 0.9999999);
    let z = r.atanh() * ((n - 3) as f64).sqrt();
    2.0 * (1.0 - normal_cdf(z.abs()))
}

/// The |r| threshold at two-sided significance `alpha` for length-`n`
/// profiles (inverse of [`correlation_pvalue`]).
pub fn threshold_for_alpha(alpha: f64, n: usize) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha out of [0,1]");
    assert!(n > 3, "need more than 3 conditions");
    let z = normal_quantile(1.0 - alpha / 2.0);
    (z / ((n - 3) as f64).sqrt()).tanh()
}

/// Bonferroni-corrected threshold over every pair of a gene–gene
/// correlation matrix: family-wise `alpha` across `n·(n−1)/2` tests —
/// the "adjust more appropriately for the number of independent
/// hypotheses" the paper aims at.
pub fn bonferroni_threshold(corr: &CorrelationMatrix, alpha: f64, conditions: usize) -> f64 {
    let tests = corr.pairs().max(1);
    threshold_for_alpha(alpha / tests as f64, conditions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}: x={x}");
        }
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
    }

    #[test]
    fn pvalue_behaviour() {
        // stronger correlation, longer profile => smaller p
        assert!(correlation_pvalue(0.9, 30) < correlation_pvalue(0.5, 30));
        assert!(correlation_pvalue(0.5, 100) < correlation_pvalue(0.5, 10));
        assert_eq!(correlation_pvalue(0.99, 3), 1.0);
        assert!(correlation_pvalue(0.0, 50) > 0.99);
        // textbook check: r=0.3, n=100 -> z≈3.05 -> p≈0.0023
        let p = correlation_pvalue(0.3, 100);
        assert!((p - 0.0023).abs() < 5e-4, "p={p}");
    }

    #[test]
    fn threshold_inverts_pvalue() {
        for &(alpha, n) in &[(0.05, 20usize), (0.01, 60), (1e-6, 40)] {
            let r = threshold_for_alpha(alpha, n);
            let p = correlation_pvalue(r, n);
            assert!((p - alpha).abs() / alpha < 0.02, "alpha={alpha} p={p}");
        }
    }

    #[test]
    fn bonferroni_is_stricter() {
        use crate::correlation::pearson_matrix;
        use crate::matrix::ExpressionMatrix;
        let m = ExpressionMatrix::from_rows(
            20,
            12,
            (0..240).map(|i| ((i * 37 % 101) as f64).sin()).collect(),
        );
        let corr = pearson_matrix(&m);
        let single = threshold_for_alpha(0.05, 12);
        let family = bonferroni_threshold(&corr, 0.05, 12);
        assert!(family > single, "family {family} <= single {single}");
        assert!(family < 1.0);
    }
}
