//! Correlation-to-graph filtering.
//!
//! The final pipeline stage: connect gene pairs whose |correlation|
//! clears a threshold. The paper chose thresholds yielding edge
//! densities of 0.008 %, 0.2 %, and 0.3 %; [`threshold_for_density`]
//! inverts that choice — given a target density, find the cutoff.

use crate::correlation::CorrelationMatrix;
use gsb_graph::BitGraph;

/// Graph with an edge wherever `|r| >= tau`.
pub fn graph_from_correlation(corr: &CorrelationMatrix, tau: f64) -> BitGraph {
    let mut g = BitGraph::new(corr.n());
    for (i, j, r) in corr.iter_pairs() {
        if r.abs() >= tau {
            g.add_edge(i, j);
        }
    }
    g
}

/// The smallest threshold that keeps the edge density at or below
/// `target` (i.e. the |r| of the ⌈target × pairs⌉-th strongest pair).
/// Returns 1.0 + ε semantics (`f64::INFINITY` is never returned; an
/// impossible target yields a threshold just above the strongest pair).
pub fn threshold_for_density(corr: &CorrelationMatrix, target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target), "density must be in [0,1]");
    let mut vals = corr.abs_values();
    if vals.is_empty() {
        return 1.0;
    }
    let keep = (target * vals.len() as f64).floor() as usize;
    if keep == 0 {
        // nothing may pass: go just above the maximum
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        return (max + f64::EPSILON).min(1.0 + f64::EPSILON);
    }
    if keep >= vals.len() {
        return 0.0;
    }
    // threshold = keep-th largest magnitude
    vals.sort_by(|a, b| b.partial_cmp(a).expect("NaN correlation"));
    vals[keep - 1]
}

/// Convenience: threshold for a density target, then build the graph.
pub fn graph_at_density(corr: &CorrelationMatrix, target: f64) -> (BitGraph, f64) {
    let tau = threshold_for_density(corr, target);
    (graph_from_correlation(corr, tau), tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::pearson_matrix;
    use crate::matrix::ExpressionMatrix;
    use crate::synth::{SynthConfig, SynthModule};

    fn small_corr() -> CorrelationMatrix {
        // 4 genes: 0,1 perfectly correlated; 2 anti-correlated with 0;
        // 3 noise-ish
        let m = ExpressionMatrix::from_rows(
            4,
            4,
            vec![
                1., 2., 3., 4., //
                2., 4., 6., 8., //
                4., 3., 2., 1., //
                1., 9., 2., 8.,
            ],
        );
        pearson_matrix(&m)
    }

    #[test]
    fn threshold_filters_edges() {
        let c = small_corr();
        let g = graph_from_correlation(&c, 0.999);
        // |r|=1 pairs: (0,1), (0,2), (1,2) — anti-correlation counts
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn density_targeting() {
        let c = small_corr();
        let (g, tau) = graph_at_density(&c, 0.5);
        // 6 pairs, target 0.5 → 3 edges
        assert_eq!(g.m(), 3);
        assert!(tau > 0.9);
        let (g_all, tau0) = graph_at_density(&c, 1.0);
        assert_eq!(g_all.m(), 6);
        assert_eq!(tau0, 0.0);
        let (g_none, _) = graph_at_density(&c, 0.0);
        assert_eq!(g_none.m(), 0);
    }

    #[test]
    fn planted_module_becomes_clique() {
        // The end-to-end property the whole pipeline exists for: a
        // strongly co-regulated module thresholds into a clique.
        let cfg = SynthConfig {
            genes: 60,
            conditions: 40,
            modules: vec![SynthModule {
                size: 8,
                strength: 0.98,
            }],
            noise: 1.0,
            seed: 42,
        };
        let (m, memberships) = cfg.generate();
        let corr = pearson_matrix(&m);
        let g = graph_from_correlation(&corr, 0.7);
        let module = &memberships[0];
        for (a, &u) in module.iter().enumerate() {
            for &v in &module[a + 1..] {
                assert!(
                    g.has_edge(u, v),
                    "module pair ({u},{v}) lost: r={}",
                    corr.get(u, v)
                );
            }
        }
    }
}
