//! # gsb-expr — microarray expression substrate
//!
//! The SC'05 evaluation graphs "were generated from raw microarray data
//! after normalization, pairwise rank coefficient calculation, and
//! filtering using threshold" (§3). This crate implements that pipeline
//! end to end, plus a synthetic data generator standing in for the
//! proprietary Affymetrix U74Av2 mouse-brain and myogenic-differentiation
//! datasets (see DESIGN.md §2 for the substitution argument):
//!
//! 1. [`synth`] — expression matrices with planted co-regulated gene
//!    modules (shared latent factors + per-gene noise);
//! 2. [`normalize`] — per-gene z-scoring and cross-array quantile
//!    normalization;
//! 3. [`correlation`] — all-pairs Pearson and Spearman (rank)
//!    correlation, parallelized with rayon (embarrassingly parallel);
//! 4. [`threshold`] — correlation → graph filtering, including picking
//!    the threshold that hits a target edge density (how the paper's
//!    0.008 %–0.3 % graphs were made);
//! 5. [`kendall`](mod@kendall) / [`filter`] / [`significance`] — the pipeline extras
//!    real array data needs: Kendall τ-b, pairwise-complete Pearson,
//!    variance filtering, missing-value imputation, and Fisher-z
//!    p-value / Bonferroni threshold selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod filter;
pub mod kendall;
pub mod matrix;
pub mod normalize;
pub mod rank;
pub mod significance;
pub mod synth;
pub mod threshold;

pub use correlation::{pearson_matrix, spearman_matrix, CorrelationMatrix};
pub use kendall::{kendall, kendall_matrix, pearson_complete};
pub use matrix::ExpressionMatrix;
pub use synth::{SynthConfig, SynthModule};
