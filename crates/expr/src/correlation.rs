//! All-pairs gene correlation, Pearson and Spearman.
//!
//! The O(n²·c) pairwise pass is the pipeline's embarrassingly parallel
//! stage; it is parallelized with rayon over genes. The result is stored
//! as a packed upper triangle: for the paper's 12,422-gene dataset that
//! is ~617 MB of f64 — the "very large correlation matrices" of §4.

use crate::matrix::ExpressionMatrix;
use crate::rank::average_ranks;
use rayon::prelude::*;

/// Symmetric gene–gene correlation matrix, packed upper triangle
/// (diagonal implicit at 1.0).
#[derive(Clone, Debug)]
pub struct CorrelationMatrix {
    n: usize,
    /// Entry for pair (i, j), i < j, at `i*n - i*(i+1)/2 + (j - i - 1)`.
    upper: Vec<f64>,
}

impl CorrelationMatrix {
    /// Assemble from per-gene upper rows: `rows[i]` holds the values
    /// for pairs `(i, i+1) .. (i, n-1)`.
    pub fn from_upper_rows(n: usize, rows: Vec<Vec<f64>>) -> Self {
        assert_eq!(rows.len(), n, "need one row per gene");
        let mut upper = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for (i, row) in rows.into_iter().enumerate() {
            assert_eq!(row.len(), n - 1 - i, "row {i} has the wrong width");
            upper.extend(row);
        }
        CorrelationMatrix { n, upper }
    }

    /// Number of genes.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Correlation of genes `i` and `j` (1.0 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        use std::cmp::Ordering;
        match i.cmp(&j) {
            Ordering::Equal => 1.0,
            Ordering::Less => self.upper[self.idx(i, j)],
            Ordering::Greater => self.upper[self.idx(j, i)],
        }
    }

    /// Iterate `(i, j, r)` over all pairs `i < j`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n)
            .flat_map(move |i| (i + 1..self.n).map(move |j| (i, j, self.upper[self.idx(i, j)])))
    }

    /// Number of stored pairs.
    pub fn pairs(&self) -> usize {
        self.upper.len()
    }

    /// Absolute correlation magnitudes of all pairs (used for
    /// density-targeted thresholding).
    pub fn abs_values(&self) -> Vec<f64> {
        self.upper.iter().map(|r| r.abs()).collect()
    }
}

/// Pearson correlation of two equal-length profiles; 0.0 when either
/// profile has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "profile length mismatch");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (a, b) in x.iter().zip(y) {
        let (dx, dy) = (a - mx, b - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Spearman rank correlation of two profiles.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    pearson(&average_ranks(x), &average_ranks(y))
}

fn allpairs(m: &ExpressionMatrix, profiles: &[Vec<f64>]) -> CorrelationMatrix {
    let n = m.genes();
    // Parallelize over the leading gene: row i computes pairs (i, i+1..n).
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (i + 1..n)
                .map(|j| pearson(&profiles[i], &profiles[j]))
                .collect()
        })
        .collect();
    CorrelationMatrix::from_upper_rows(n, rows)
}

/// All-pairs Pearson correlation.
pub fn pearson_matrix(m: &ExpressionMatrix) -> CorrelationMatrix {
    let profiles: Vec<Vec<f64>> = m.rows().map(<[f64]>::to_vec).collect();
    allpairs(m, &profiles)
}

/// All-pairs Spearman correlation (the paper's "pairwise rank
/// coefficient"): rank every profile once, then Pearson on ranks.
pub fn spearman_matrix(m: &ExpressionMatrix) -> CorrelationMatrix {
    let profiles: Vec<Vec<f64>> = m.rows().map(average_ranks).collect();
    allpairs(m, &profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_known_values() {
        assert!((pearson(&[1., 2., 3.], &[2., 4., 6.]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1., 2., 3.], &[6., 4., 2.]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1., 1., 1.], &[2., 4., 6.]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn spearman_monotone_is_one() {
        // any monotone transform correlates at exactly 1 by ranks
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y) - 1.0).abs() > 1e-3); // pearson is not 1
    }

    #[test]
    fn matrix_symmetry_and_diagonal() {
        let m =
            ExpressionMatrix::from_rows(3, 4, vec![1., 2., 3., 4., 4., 3., 2., 1., 1., 3., 2., 4.]);
        let c = pearson_matrix(&m);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), c.get(1, 0));
        assert!((c.get(0, 1) + 1.0).abs() < 1e-12);
        assert_eq!(c.pairs(), 3);
        assert_eq!(c.iter_pairs().count(), 3);
    }

    #[test]
    fn packed_index_covers_triangle() {
        let m = ExpressionMatrix::from_rows(5, 3, (0..15).map(|x| (x as f64).sin()).collect());
        let c = pearson_matrix(&m);
        let mut seen = std::collections::BTreeSet::new();
        for (i, j, _) in c.iter_pairs() {
            assert!(i < j);
            seen.insert((i, j));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn spearman_matrix_matches_pairwise() {
        let m = ExpressionMatrix::from_rows(
            3,
            5,
            vec![
                1., 4., 2., 8., 5., //
                2., 2., 9., 1., 8., //
                9., 7., 5., 3., 1.,
            ],
        );
        let c = spearman_matrix(&m);
        for (i, j, r) in c.iter_pairs() {
            let direct = spearman(m.row(i), m.row(j));
            assert!((r - direct).abs() < 1e-12, "pair ({i},{j})");
        }
    }
}
