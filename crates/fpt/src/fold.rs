//! Vertex cover with degree-2 folding (struction-lite).
//!
//! The kernelization literature's next rule beyond degree-1 and Buss:
//! a degree-2 vertex `v` with non-adjacent neighbors `u, w` can be
//! *folded* — `v, u, w` are contracted into one virtual vertex `v'`
//! adjacent to `N(u) ∪ N(w) ∖ {v}`, and the parameter drops by one.
//! Reconstruction: if `v'` is in the folded instance's cover, the real
//! cover takes `{u, w}`; otherwise it takes `{v}`. (If `u, w` are
//! adjacent, `{u, w}` is simply forced.) Folding shrinks kernels well
//! past what the basic rules reach; the `vertex_cover` bench compares.

use gsb_bitset::BitSet;
use gsb_graph::BitGraph;

/// One fold record for reconstruction (virtual vertex reuses `v`'s id).
#[derive(Clone, Copy, Debug)]
struct Fold {
    v: usize,
    u: usize,
    w: usize,
}

/// Mutable working instance: adjacency is copied so folds can rewrite
/// neighborhoods; `alive` masks deleted vertices.
struct Instance {
    adj: Vec<BitSet>,
    alive: BitSet,
}

impl Instance {
    fn new(g: &BitGraph) -> Self {
        Instance {
            adj: (0..g.n()).map(|v| g.neighbors(v).clone()).collect(),
            alive: BitSet::full(g.n()),
        }
    }

    fn degree(&self, v: usize) -> usize {
        self.adj[v].count_and(&self.alive)
    }

    fn remove(&mut self, v: usize) {
        self.alive.remove(v);
    }

    fn neighbors_alive(&self, v: usize) -> Vec<usize> {
        self.adj[v]
            .iter_ones()
            .filter(|&u| self.alive.contains(u))
            .collect()
    }

    /// Rewrite `v` to be the fold vertex adjacent to
    /// `(N(u) ∪ N(w)) ∖ {v, u, w}`, removing `u` and `w`.
    fn fold(&mut self, v: usize, u: usize, w: usize) {
        let mut merged = self.adj[u].or(&self.adj[w]);
        merged.remove(v);
        merged.remove(u);
        merged.remove(w);
        merged.and_assign(&self.alive);
        // detach v's old edges
        let old: Vec<usize> = self.adj[v].iter_ones().collect();
        for x in old {
            self.adj[x].remove(v);
        }
        // attach the merged neighborhood symmetrically
        for x in merged.iter_ones() {
            self.adj[x].insert(v);
        }
        self.adj[v] = merged;
        self.remove(u);
        self.remove(w);
    }

    fn edges_and_max_degree(&self) -> (usize, usize, Option<usize>, Option<usize>) {
        let mut edges = 0usize;
        let mut max_deg = 0usize;
        let mut max_v = None;
        let mut low = None; // degree-1 or degree-2 vertex
        for v in self.alive.iter_ones() {
            let d = self.degree(v);
            edges += d;
            if d > max_deg {
                max_deg = d;
                max_v = Some(v);
            }
            if (d == 1 || d == 2) && low.is_none() {
                low = Some(v);
            }
        }
        (edges / 2, max_deg, max_v, low)
    }
}

/// A vertex cover of size ≤ `k` using degree-0/1/2 (folding) rules,
/// the Buss rule, and max-degree branching; `None` if none exists.
pub fn vertex_cover_folding(g: &BitGraph, k: usize) -> Option<Vec<usize>> {
    let mut inst = Instance::new(g);
    let mut cover = Vec::new();
    let mut folds = Vec::new();
    if !search(&mut inst, &mut cover, &mut folds, k) {
        return None;
    }
    // Unfold in reverse order.
    let mut in_cover = vec![false; g.n()];
    for &c in &cover {
        in_cover[c] = true;
    }
    for &Fold { v, u, w } in folds.iter().rev() {
        if in_cover[v] {
            in_cover[v] = false;
            in_cover[u] = true;
            in_cover[w] = true;
        } else {
            in_cover[v] = true;
        }
    }
    let result: Vec<usize> = (0..g.n()).filter(|&v| in_cover[v]).collect();
    debug_assert!(crate::vc::is_vertex_cover(g, &result));
    Some(result)
}

/// Minimum vertex cover via folding + iterative deepening.
pub fn minimum_vertex_cover_folding(g: &BitGraph) -> Vec<usize> {
    let lower = crate::bounds::greedy_matching_bound(g);
    for k in lower..=g.n() {
        if let Some(cover) = vertex_cover_folding(g, k) {
            return cover;
        }
    }
    Vec::new() // n covers everything; loop always returns
}

fn search(
    inst: &mut Instance,
    cover: &mut Vec<usize>,
    folds: &mut Vec<Fold>,
    mut budget: usize,
) -> bool {
    let cover_mark = cover.len();
    let folds_mark = folds.len();
    // Reduce to a fixed point; on failure, rebuilding the instance is
    // the caller's job (we clone at branch points).
    loop {
        let (edges, max_deg, max_v, low) = inst.edges_and_max_degree();
        if edges == 0 {
            return true;
        }
        if budget == 0 {
            cover.truncate(cover_mark);
            folds.truncate(folds_mark);
            return false;
        }
        if max_deg > budget {
            let v = max_v.expect("edges > 0");
            inst.remove(v);
            cover.push(v);
            budget -= 1;
            continue;
        }
        if let Some(v) = low {
            let nbrs = inst.neighbors_alive(v);
            match *nbrs.as_slice() {
                [u] => {
                    // degree-1: take the neighbor
                    inst.remove(u);
                    inst.remove(v);
                    cover.push(u);
                    budget -= 1;
                }
                [u, w] => {
                    if inst.adj[u].contains(w) {
                        // triangle: u,w dominate v
                        if budget < 2 {
                            cover.truncate(cover_mark);
                            folds.truncate(folds_mark);
                            return false;
                        }
                        inst.remove(u);
                        inst.remove(w);
                        inst.remove(v);
                        cover.push(u);
                        cover.push(w);
                        budget -= 2;
                    } else {
                        // fold v,u,w into virtual vertex at v's slot
                        inst.fold(v, u, w);
                        folds.push(Fold { v, u, w });
                        budget -= 1;
                    }
                }
                _ => unreachable!("low has degree 1 or 2"),
            }
            continue;
        }
        if edges > budget * max_deg {
            cover.truncate(cover_mark);
            folds.truncate(folds_mark);
            return false;
        }
        // Branch on a maximum-degree vertex (min degree is now >= 3, so
        // the branching factor is at worst (1, 3)).
        let v = max_v.expect("edges > 0");
        let nbrs = inst.neighbors_alive(v);
        // Branch 1: v in the cover.
        {
            let mut inst1 = Instance {
                adj: inst.adj.clone(),
                alive: inst.alive.clone(),
            };
            inst1.remove(v);
            cover.push(v);
            if search(&mut inst1, cover, folds, budget - 1) {
                return true;
            }
            cover.pop();
        }
        // Branch 2: N(v) in the cover.
        if nbrs.len() <= budget {
            let mut inst2 = Instance {
                adj: inst.adj.clone(),
                alive: inst.alive.clone(),
            };
            inst2.remove(v);
            for &u in &nbrs {
                inst2.remove(u);
                cover.push(u);
            }
            if search(&mut inst2, cover, folds, budget - nbrs.len()) {
                return true;
            }
        }
        cover.truncate(cover_mark);
        folds.truncate(folds_mark);
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::{is_vertex_cover, minimum_vertex_cover};
    use gsb_graph::generators::gnp;

    #[test]
    fn paths_fold_to_nothing() {
        // long path: all degree <= 2, solved entirely by rules
        let n = 12;
        let path = BitGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let cover = minimum_vertex_cover_folding(&path);
        assert!(is_vertex_cover(&path, &cover));
        assert_eq!(cover.len(), (n - 1).div_ceil(2));
    }

    #[test]
    fn cycles_fold() {
        for n in [4usize, 5, 6, 9] {
            let cycle = BitGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
            let cover = minimum_vertex_cover_folding(&cycle);
            assert!(is_vertex_cover(&cycle, &cover), "n={n}");
            assert_eq!(cover.len(), n.div_ceil(2), "n={n}");
        }
    }

    #[test]
    fn matches_basic_solver_on_random_graphs() {
        for seed in 0..12 {
            let g = gnp(14, 0.3, seed);
            let basic = minimum_vertex_cover(&g);
            let folded = minimum_vertex_cover_folding(&g);
            assert!(is_vertex_cover(&g, &folded), "seed {seed}");
            assert_eq!(folded.len(), basic.len(), "seed {seed}");
        }
    }

    #[test]
    fn decision_boundary_with_folding() {
        let c5 = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(vertex_cover_folding(&c5, 2).is_none());
        let c = vertex_cover_folding(&c5, 3).unwrap();
        assert!(is_vertex_cover(&c5, &c));
        assert!(c.len() <= 3);
    }

    #[test]
    fn triangle_rule() {
        // degree-2 vertex whose neighbors are adjacent
        let g = BitGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
        let cover = minimum_vertex_cover_folding(&g);
        assert!(is_vertex_cover(&g, &cover));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn dense_graphs_still_exact() {
        for seed in 0..4 {
            let g = gnp(12, 0.6, 100 + seed);
            let basic = minimum_vertex_cover(&g);
            let folded = minimum_vertex_cover_folding(&g);
            assert_eq!(folded.len(), basic.len(), "seed {seed}");
        }
    }
}
