//! Feedback vertex set by reduction + shortest-cycle branching.
//!
//! The paper's §4 names FVS as the crucial combinatorial problem in
//! phylogenetic footprinting and cites the authors' `O*(2^O(k))`
//! branching algorithm \[43\]. This implementation keeps the same shape:
//! reduce (strip degree-≤1 vertices, which lie on no cycle), find a
//! *shortest* cycle, and branch on which of its vertices joins the
//! solution — every feedback vertex set must hit every cycle, so the
//! branching is exhaustive, and short cycles keep the branching factor
//! small.

use gsb_bitset::BitSet;
use gsb_graph::BitGraph;

/// A minimum feedback vertex set (vertices ascending): removing it
/// leaves an acyclic graph (a forest).
pub fn feedback_vertex_set(g: &BitGraph) -> Vec<usize> {
    for k in crate::bounds::fvs_excess_bound(g)..=g.n() {
        if let Some(mut s) = fvs_decision(g, k) {
            s.sort_unstable();
            return s;
        }
    }
    Vec::new() // n >= any FVS; loop always returns
}

/// A feedback vertex set of size ≤ `k` if one exists.
pub fn fvs_decision(g: &BitGraph, k: usize) -> Option<Vec<usize>> {
    let alive = BitSet::full(g.n());
    let mut chosen = Vec::new();
    if search(g, alive, &mut chosen, k) {
        Some(chosen)
    } else {
        None
    }
}

/// Is the subgraph induced by `alive` acyclic?
fn is_forest(g: &BitGraph, alive: &BitSet) -> bool {
    find_cycle(g, alive).is_none()
}

/// Does removing `removed` from `g` leave a forest? (Public validity
/// check for tests and callers.)
pub fn is_feedback_vertex_set(g: &BitGraph, removed: &[usize]) -> bool {
    let mut alive = BitSet::full(g.n());
    for &v in removed {
        alive.remove(v);
    }
    is_forest(g, &alive)
}

/// BFS from every vertex to find a shortest cycle in the alive
/// subgraph; returns its vertices, or `None` if acyclic.
fn find_cycle(g: &BitGraph, alive: &BitSet) -> Option<Vec<usize>> {
    let n = g.n();
    let mut best: Option<Vec<usize>> = None;
    let mut parent = vec![usize::MAX; n];
    let mut depth = vec![usize::MAX; n];
    for root in alive.iter_ones() {
        // BFS tree rooted here; a non-tree edge (u,v) closes a cycle of
        // length depth[u] + depth[v] - 2*depth[lca] + 1; for a shortest
        // cycle through the root's component, the first cross edge found
        // by BFS gives a near-shortest cycle, good enough for branching.
        for v in alive.iter_ones() {
            parent[v] = usize::MAX;
            depth[v] = usize::MAX;
        }
        depth[root] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for w in g.neighbors(u).iter_ones() {
                if !alive.contains(w) {
                    continue;
                }
                if depth[w] == usize::MAX {
                    depth[w] = depth[u] + 1;
                    parent[w] = u;
                    queue.push_back(w);
                } else if parent[u] != w && depth[w] <= depth[u] {
                    // non-tree edge: walk both endpoints up to their LCA
                    let cycle = extract_cycle(u, w, &parent, &depth);
                    if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                        best = Some(cycle);
                    }
                }
            }
        }
        if let Some(b) = &best {
            if b.len() == 3 {
                break; // cannot do better than a triangle
            }
        }
    }
    best
}

fn extract_cycle(mut a: usize, mut b: usize, parent: &[usize], depth: &[usize]) -> Vec<usize> {
    let mut left = vec![a];
    let mut right = vec![b];
    while depth[a] > depth[b] {
        a = parent[a];
        left.push(a);
    }
    while depth[b] > depth[a] {
        b = parent[b];
        right.push(b);
    }
    while a != b {
        a = parent[a];
        b = parent[b];
        left.push(a);
        right.push(b);
    }
    right.pop(); // LCA recorded once (in `left`)
    right.reverse();
    left.extend(right);
    left
}

fn search(g: &BitGraph, mut alive: BitSet, chosen: &mut Vec<usize>, budget: usize) -> bool {
    // Reduction: vertices of alive-degree <= 1 lie on no cycle.
    loop {
        let mut removed_any = false;
        let low: Vec<usize> = alive
            .iter_ones()
            .filter(|&v| g.neighbors(v).count_and(&alive) <= 1)
            .collect();
        for v in low {
            alive.remove(v);
            removed_any = true;
        }
        if !removed_any {
            break;
        }
    }
    let Some(cycle) = find_cycle(g, &alive) else {
        return true; // already a forest
    };
    if budget == 0 {
        return false;
    }
    let mark = chosen.len();
    for &v in &cycle {
        let mut next = alive.clone();
        next.remove(v);
        chosen.push(v);
        if search(g, next, chosen, budget - 1) {
            return true;
        }
        chosen.truncate(mark);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::generators::gnp;

    /// Brute-force minimum FVS size.
    fn oracle_size(g: &BitGraph) -> usize {
        let n = g.n();
        (0u32..(1 << n))
            .filter(|mask| {
                let removed: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                is_feedback_vertex_set(g, &removed)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap()
    }

    #[test]
    fn forests_need_nothing() {
        let tree = BitGraph::from_edges(6, [(0, 1), (0, 2), (2, 3), (2, 4), (4, 5)]);
        assert!(feedback_vertex_set(&tree).is_empty());
        assert!(feedback_vertex_set(&BitGraph::new(4)).is_empty());
    }

    #[test]
    fn single_cycle_needs_one() {
        let c5 = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let s = feedback_vertex_set(&c5);
        assert_eq!(s.len(), 1);
        assert!(is_feedback_vertex_set(&c5, &s));
    }

    #[test]
    fn complete_graph_needs_n_minus_2() {
        let k5 = BitGraph::complete(5);
        let s = feedback_vertex_set(&k5);
        assert_eq!(s.len(), 3);
        assert!(is_feedback_vertex_set(&k5, &s));
    }

    #[test]
    fn two_disjoint_cycles_need_two() {
        let g = BitGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = feedback_vertex_set(&g);
        assert_eq!(s.len(), 2);
        assert!(is_feedback_vertex_set(&g, &s));
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..8 {
            let g = gnp(10, 0.35, seed);
            let s = feedback_vertex_set(&g);
            assert!(is_feedback_vertex_set(&g, &s), "seed {seed}");
            assert_eq!(s.len(), oracle_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn decision_boundaries() {
        let k4 = BitGraph::complete(4);
        assert!(fvs_decision(&k4, 1).is_none());
        let s = fvs_decision(&k4, 2).unwrap();
        assert!(is_feedback_vertex_set(&k4, &s));
    }
}
