//! Maximum clique through the FPT vertex-cover route (§2.1).
//!
//! A set `C` is a clique of `G` iff `V ∖ C` is a vertex cover of the
//! complement `Ḡ`; a *minimum* cover therefore complements a *maximum*
//! clique. "Like maximal clique, maximum clique via vertex cover can be
//! solved on much larger scales with monolithic shared memory
//! architectures" (§4) — here it serves as the exact cross-check for
//! the direct branch-and-bound in `gsb-core`.

use crate::vc::minimum_vertex_cover;
use gsb_graph::BitGraph;

/// A maximum clique of `g` (vertices ascending), computed as the
/// complement of a minimum vertex cover of the complement graph.
pub fn maximum_clique_via_vc(g: &BitGraph) -> Vec<usize> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let complement = g.complement();
    let cover = minimum_vertex_cover(&complement);
    let mut in_cover = vec![false; n];
    for &v in &cover {
        in_cover[v] = true;
    }
    (0..n).filter(|&v| !in_cover[v]).collect()
}

/// Decide "does `g` have a clique of size ≥ k?" by asking whether the
/// complement has a vertex cover of size ≤ n − k.
pub fn clique_decision_via_vc(g: &BitGraph, k: usize) -> bool {
    let n = g.n();
    if k == 0 {
        return true;
    }
    if k > n {
        return false;
    }
    crate::vc::vertex_cover_decision(&g.complement(), n - k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::generators::{gnp, planted, Module};

    #[test]
    fn known_graphs() {
        assert_eq!(maximum_clique_via_vc(&BitGraph::complete(6)).len(), 6);
        assert_eq!(maximum_clique_via_vc(&BitGraph::new(4)).len(), 1);
        assert!(maximum_clique_via_vc(&BitGraph::new(0)).is_empty());
        let c5 = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(maximum_clique_via_vc(&c5).len(), 2);
    }

    #[test]
    fn result_is_a_clique() {
        for seed in 0..8 {
            let g = gnp(16, 0.5, seed);
            let c = maximum_clique_via_vc(&g);
            assert!(g.is_clique(&c), "seed {seed}");
        }
    }

    #[test]
    fn decision_consistent_with_search() {
        for seed in 0..5 {
            let g = gnp(14, 0.45, 30 + seed);
            let omega = maximum_clique_via_vc(&g).len();
            assert!(clique_decision_via_vc(&g, omega));
            assert!(!clique_decision_via_vc(&g, omega + 1));
            assert!(clique_decision_via_vc(&g, 0));
            assert!(!clique_decision_via_vc(&g, g.n() + 1));
        }
    }

    #[test]
    fn finds_planted_clique() {
        let g = planted(24, 0.1, &[Module::clique(8)], 3);
        assert_eq!(maximum_clique_via_vc(&g).len(), 8);
    }
}
