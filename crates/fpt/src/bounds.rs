//! Lower bounds for the branching searches.

use gsb_graph::BitGraph;

/// Size of a greedy maximal matching. Any vertex cover must pick at
/// least one endpoint per matched edge, so this lower-bounds the minimum
/// vertex cover (and `2×` upper-bounds it).
pub fn greedy_matching_bound(g: &BitGraph) -> usize {
    let mut used = vec![false; g.n()];
    let mut matched = 0usize;
    for (u, v) in g.edges() {
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            matched += 1;
        }
    }
    matched
}

/// A cheap feedback-vertex-set lower bound: `⌈(m − n + components) / ...⌉`
/// is hard to make tight cheaply, so we use the cycle-packing-ish bound
/// `max(0, m − (n − components))` capped by reality: each removed vertex
/// kills at most `degree` excess edges. Returns a valid lower bound
/// (possibly 0).
pub fn fvs_excess_bound(g: &BitGraph) -> usize {
    let n = g.n();
    let (_, components) = gsb_graph::stats::connected_components(g);
    let excess = g.m() as isize - (n as isize - components as isize);
    if excess <= 0 {
        return 0;
    }
    // Removing one vertex of maximum degree d removes at most d edges,
    // i.e. reduces the excess by at most d - 1 (it also removes the
    // vertex). A uniform bound: ceil(excess / max_degree).
    let maxd = (0..n).map(|v| g.degree(v)).max().unwrap_or(1).max(1);
    (excess as usize).div_ceil(maxd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_bound_on_known_graphs() {
        assert_eq!(greedy_matching_bound(&BitGraph::new(5)), 0);
        let path = BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(greedy_matching_bound(&path), 2);
        // K4: matching of size 2
        assert_eq!(greedy_matching_bound(&BitGraph::complete(4)), 2);
    }

    #[test]
    fn fvs_bound_zero_on_forests() {
        let tree = BitGraph::from_edges(5, [(0, 1), (0, 2), (2, 3), (2, 4)]);
        assert_eq!(fvs_excess_bound(&tree), 0);
        assert_eq!(fvs_excess_bound(&BitGraph::new(3)), 0);
    }

    #[test]
    fn fvs_bound_positive_on_cycles() {
        let c4 = BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(fvs_excess_bound(&c4) >= 1);
        // K5 needs 3 removals; bound must not exceed the truth
        assert!(fvs_excess_bound(&BitGraph::complete(5)) <= 3);
    }
}
