//! # gsb-fpt — fixed-parameter tractable solvers
//!
//! §2.1 of the SC'05 paper: "clique is not FPT unless the W hierarchy
//! collapses. Thus we focus instead on clique's complementary dual, the
//! vertex cover problem" — a clique of size k in G is the complement of
//! a vertex cover of size n−k in Ḡ. This crate implements that route:
//!
//! * [`vc`] — vertex cover by kernelization (degree-0/1 rules plus the
//!   Buss high-degree rule) and a bounded search tree branching on a
//!   maximum-degree vertex (take it, or take its whole neighborhood);
//! * [`fold`] — the same search strengthened with degree-2 *folding*,
//!   including solution reconstruction through nested folds;
//! * [`maxclique`] — maximum clique via minimum vertex cover of the
//!   complement, validated against the direct branch-and-bound in
//!   `gsb-core`;
//! * [`fvs`] — feedback vertex set (the paper's §4: "in phylogenetic
//!   footprinting ... it is feedback vertex set that is the crucial
//!   combinatorial problem"), by reduction rules plus branching over a
//!   shortest cycle;
//! * [`bounds`] — matching-based lower bounds used to start the
//!   iterative-deepening searches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod fold;
pub mod fvs;
pub mod maxclique;
pub mod vc;

pub use fold::{minimum_vertex_cover_folding, vertex_cover_folding};
pub use fvs::{feedback_vertex_set, fvs_decision};
pub use maxclique::maximum_clique_via_vc;
pub use vc::{minimum_vertex_cover, vertex_cover_decision};
