//! Vertex cover: kernelization + bounded search tree.
//!
//! The classic FPT recipe the paper builds on (§2.1): reduction rules
//! shrink the instance to a kernel, then a search tree branches on a
//! maximum-degree vertex — either it is in the cover, or its entire
//! neighborhood is. Rules implemented:
//!
//! * **degree 0** — isolated vertices never enter a cover;
//! * **degree 1** — a pendant edge is covered optimally by the
//!   *neighbor* of the leaf;
//! * **Buss' high-degree rule** — a vertex with degree > k must be in
//!   any size-≤k cover;
//! * **edge-count cutoff** — after the rules, a yes-instance has at most
//!   `k · Δ` edges.

use gsb_bitset::BitSet;
use gsb_graph::BitGraph;

/// A vertex cover of size ≤ `k` if one exists (vertices ascending),
/// else `None`.
pub fn vertex_cover_decision(g: &BitGraph, k: usize) -> Option<Vec<usize>> {
    let alive = BitSet::full(g.n());
    let mut cover = Vec::new();
    if search(g, alive, &mut cover, k) {
        cover.sort_unstable();
        Some(cover)
    } else {
        None
    }
}

/// A minimum vertex cover (iterative deepening from the matching lower
/// bound; the greedy matching also supplies the 2-approximation that
/// caps the search).
///
/// ```
/// use gsb_graph::BitGraph;
/// let star = BitGraph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
/// assert_eq!(gsb_fpt::minimum_vertex_cover(&star), vec![0]);
/// ```
pub fn minimum_vertex_cover(g: &BitGraph) -> Vec<usize> {
    let lower = crate::bounds::greedy_matching_bound(g);
    let upper = 2 * lower; // both endpoints of every matched edge
    for k in lower..=upper {
        if let Some(cover) = vertex_cover_decision(g, k) {
            return cover;
        }
    }
    unreachable!("2-approximation guarantees a cover within [lower, 2*lower]")
}

/// Is `cover` a vertex cover of `g`?
pub fn is_vertex_cover(g: &BitGraph, cover: &[usize]) -> bool {
    let mut inc = BitSet::new(g.n());
    for &v in cover {
        inc.insert(v);
    }
    g.edges().all(|(u, v)| inc.contains(u) || inc.contains(v))
}

fn alive_degree(g: &BitGraph, alive: &BitSet, v: usize) -> usize {
    g.neighbors(v).count_and(alive)
}

/// Recursive search: find a cover of the alive subgraph using at most
/// `budget` vertices, appending choices to `cover`. On success, `cover`
/// holds the solution; on failure, `cover` is restored.
fn search(g: &BitGraph, mut alive: BitSet, cover: &mut Vec<usize>, mut budget: usize) -> bool {
    let mark = cover.len();
    // Kernelization to a fixed point.
    loop {
        let mut changed = false;
        let mut edges = 0usize;
        let mut max_deg = 0usize;
        let mut max_v = None;
        let mut pendant = None;
        for v in alive.iter_ones() {
            let d = alive_degree(g, &alive, v);
            edges += d;
            if d > max_deg {
                max_deg = d;
                max_v = Some(v);
            }
            if d == 1 && pendant.is_none() {
                pendant = Some(v);
            }
        }
        let edges = edges / 2;
        if edges == 0 {
            return true; // nothing left to cover
        }
        if budget == 0 {
            cover.truncate(mark);
            return false;
        }
        // Buss rule: degree > budget forces the vertex into the cover.
        if max_deg > budget {
            let v = max_v.expect("max_deg > 0");
            alive.remove(v);
            cover.push(v);
            budget -= 1;
            changed = true;
        } else if let Some(leaf) = pendant {
            // Degree-1 rule: take the unique alive neighbor.
            let u = g
                .neighbors(leaf)
                .iter_ones()
                .find(|&u| alive.contains(u))
                .expect("degree 1");
            alive.remove(u);
            alive.remove(leaf);
            cover.push(u);
            budget -= 1;
            changed = true;
        } else if edges > budget * max_deg {
            // Each chosen vertex covers at most max_deg edges.
            cover.truncate(mark);
            return false;
        }
        if !changed {
            // Kernel is reduced: branch on a maximum-degree vertex.
            let v = max_v.expect("edges > 0");
            // Branch 1: v in the cover.
            let mut alive1 = alive.clone();
            alive1.remove(v);
            cover.push(v);
            if search(g, alive1, cover, budget - 1) {
                return true;
            }
            cover.pop();
            // Branch 2: all alive neighbors of v in the cover.
            let nbrs: Vec<usize> = g
                .neighbors(v)
                .iter_ones()
                .filter(|&u| alive.contains(u))
                .collect();
            if nbrs.len() <= budget {
                let mut alive2 = alive.clone();
                alive2.remove(v);
                for &u in &nbrs {
                    alive2.remove(u);
                    cover.push(u);
                }
                if search(g, alive2, cover, budget - nbrs.len()) {
                    return true;
                }
                cover.truncate(mark);
            }
            cover.truncate(mark);
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::generators::gnp;

    /// Brute-force minimum cover size.
    fn oracle_size(g: &BitGraph) -> usize {
        let n = g.n();
        (0u32..(1 << n))
            .filter(|mask| {
                let cover: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                is_vertex_cover(g, &cover)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap()
    }

    #[test]
    fn known_covers() {
        // path P4: cover {1,2}
        let p4 = BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(minimum_vertex_cover(&p4).len(), 2);
        // star K1,4: cover {center}
        let star = BitGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(minimum_vertex_cover(&star), vec![0]);
        // K5: cover any 4
        assert_eq!(minimum_vertex_cover(&BitGraph::complete(5)).len(), 4);
        // edgeless
        assert!(minimum_vertex_cover(&BitGraph::new(6)).is_empty());
    }

    #[test]
    fn decision_boundaries() {
        let c5 = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(vertex_cover_decision(&c5, 2).is_none());
        let c = vertex_cover_decision(&c5, 3).unwrap();
        assert!(is_vertex_cover(&c5, &c));
        assert!(c.len() <= 3);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..10 {
            let g = gnp(12, 0.4, seed);
            let cover = minimum_vertex_cover(&g);
            assert!(is_vertex_cover(&g, &cover), "seed {seed}");
            assert_eq!(cover.len(), oracle_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn decision_never_lies() {
        for seed in 0..6 {
            let g = gnp(11, 0.5, 50 + seed);
            let opt = oracle_size(&g);
            for k in 0..g.n() {
                match vertex_cover_decision(&g, k) {
                    Some(c) => {
                        assert!(k >= opt);
                        assert!(c.len() <= k);
                        assert!(is_vertex_cover(&g, &c));
                    }
                    None => assert!(k < opt, "k={k} opt={opt} seed={seed}"),
                }
            }
        }
    }
}
