//! Property-based tests: bitset algebra laws, WAH equivalence, counter
//! consistency against a naive per-position model.

use gsb_bitset::{BitSet, SliceCounter, WahBitSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: usize = 300;

fn subset() -> impl Strategy<Value = BTreeSet<usize>> {
    prop::collection::btree_set(0..N, 0..64)
}

fn bs(s: &BTreeSet<usize>) -> BitSet {
    BitSet::from_ones(N, s.iter().copied())
}

proptest! {
    #[test]
    fn and_matches_set_intersection(a in subset(), b in subset()) {
        let expect: Vec<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(bs(&a).and(&bs(&b)).to_vec(), expect);
    }

    #[test]
    fn or_matches_set_union(a in subset(), b in subset()) {
        let expect: Vec<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(bs(&a).or(&bs(&b)).to_vec(), expect);
    }

    #[test]
    fn and_not_matches_set_difference(a in subset(), b in subset()) {
        let expect: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(bs(&a).and_not(&bs(&b)).to_vec(), expect);
    }

    #[test]
    fn de_morgan(a in subset(), b in subset()) {
        // !(a | b) == !a & !b
        let mut lhs = bs(&a).or(&bs(&b));
        lhs.not_assign();
        let (mut na, mut nb) = (bs(&a), bs(&b));
        na.not_assign();
        nb.not_assign();
        prop_assert_eq!(lhs, na.and(&nb));
    }

    #[test]
    fn intersects_iff_nonempty_and(a in subset(), b in subset()) {
        let x = bs(&a);
        let y = bs(&b);
        prop_assert_eq!(x.intersects(&y), x.and(&y).any());
        prop_assert_eq!(x.count_and(&y), x.and(&y).count_ones());
    }

    #[test]
    fn subset_consistent(a in subset(), b in subset()) {
        let x = bs(&a);
        let y = bs(&b);
        prop_assert_eq!(x.is_subset(&y), a.is_subset(&b));
    }

    #[test]
    fn iter_ones_roundtrip(a in subset()) {
        let x = bs(&a);
        let back: BTreeSet<usize> = x.iter_ones().collect();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn next_one_walks_all(a in subset()) {
        let x = bs(&a);
        let mut got = Vec::new();
        let mut pos = 0usize;
        while let Some(i) = x.next_one(pos) {
            got.push(i);
            pos = i + 1;
        }
        prop_assert_eq!(got, x.to_vec());
    }

    #[test]
    fn wah_roundtrip(a in subset()) {
        let plain = bs(&a);
        let wah = WahBitSet::from_bitset(&plain);
        prop_assert_eq!(wah.to_bitset(), plain.clone());
        prop_assert_eq!(wah.count_ones(), plain.count_ones());
        prop_assert_eq!(wah.any(), plain.any());
    }

    #[test]
    fn wah_and_or_match_plain(a in subset(), b in subset()) {
        let (pa, pb) = (bs(&a), bs(&b));
        let (wa, wb) = (WahBitSet::from_bitset(&pa), WahBitSet::from_bitset(&pb));
        prop_assert_eq!(wa.and(&wb).to_bitset(), pa.and(&pb));
        prop_assert_eq!(wa.or(&wb).to_bitset(), pa.or(&pb));
        prop_assert_eq!(wa.intersects(&wb), pa.intersects(&pb));
    }

    #[test]
    fn wah_not_and_not_iter_match_plain(a in subset(), b in subset()) {
        let (pa, pb) = (bs(&a), bs(&b));
        let (wa, wb) = (WahBitSet::from_bitset(&pa), WahBitSet::from_bitset(&pb));
        let mut na = pa.clone();
        na.not_assign();
        prop_assert_eq!(wa.not().to_bitset(), na);
        prop_assert_eq!(wa.and_not(&wb).to_bitset(), pa.and_not(&pb));
        let got: Vec<usize> = wa.iter_ones().collect();
        prop_assert_eq!(got, pa.to_vec());
        prop_assert_eq!(wa.first_one(), pa.first_one());
    }

    #[test]
    fn wah_singleton_isolated(i in 0..N) {
        let s = WahBitSet::singleton(N, i);
        prop_assert_eq!(s.count_ones(), 1);
        prop_assert_eq!(s.first_one(), Some(i));
    }

    #[test]
    fn counter_matches_naive(rows in prop::collection::vec(subset(), 0..12), k in 0usize..14) {
        let mut counter = SliceCounter::new(N);
        let mut naive = vec![0usize; N];
        for r in &rows {
            counter.add(&bs(r));
            for &i in r {
                naive[i] += 1;
            }
        }
        let expect: Vec<usize> =
            (0..N).filter(|&i| naive[i] >= k).collect();
        prop_assert_eq!(counter.at_least(k).to_vec(), expect);
        let expect_eq: Vec<usize> =
            (0..N).filter(|&i| naive[i] == k).collect();
        prop_assert_eq!(counter.exactly(k).to_vec(), expect_eq);
    }
}
