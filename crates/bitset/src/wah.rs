//! Word-Aligned Hybrid (WAH) compressed bitmaps.
//!
//! The paper's conclusion notes that "the sparcity of the bitmap memory
//! index can potentially provide high compression rate and allow for
//! bitwise operations to be performed on the compressed data. The work
//! in this direction is underway." This module is that direction, done:
//! a 64-bit WAH encoding whose `AND`/`OR` operate directly on the
//! compressed words without decompressing either operand.
//!
//! Encoding: each code word is one `u64`.
//!
//! * MSB = 0 → *literal*: the low 63 bits are one group of 63 bitmap bits.
//! * MSB = 1 → *fill*: bit 62 is the fill value, the low 62 bits count
//!   how many consecutive 63-bit groups consist entirely of that value.

use crate::BitSet;

const GROUP_BITS: usize = 63;
const LITERAL_MASK: u64 = (1u64 << GROUP_BITS) - 1;
const FILL_FLAG: u64 = 1u64 << 63;
const FILL_VALUE: u64 = 1u64 << 62;
const MAX_FILL: u64 = (1u64 << 62) - 1;

/// A WAH-compressed bitmap over a fixed universe.
///
/// ```
/// use gsb_bitset::{BitSet, WahBitSet};
/// let sparse = BitSet::from_ones(100_000, [5, 99_000]);
/// let wah = WahBitSet::from_bitset(&sparse);
/// assert!(wah.compression_ratio() > 100.0);
/// let other = WahBitSet::from_bitset(&BitSet::from_ones(100_000, [99_000]));
/// assert!(wah.intersects(&other));            // on compressed words
/// assert_eq!(wah.and(&other).count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WahBitSet {
    nbits: usize,
    code: Vec<u64>,
}

/// One run of identical 63-bit groups produced by the cursor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Group {
    Fill(bool),
    Literal(u64),
}

impl WahBitSet {
    /// Compress a plain bitset.
    pub fn from_bitset(bits: &BitSet) -> Self {
        let nbits = bits.len();
        let ngroups = nbits.div_ceil(GROUP_BITS);
        let mut b = Builder::new(nbits);
        for g in 0..ngroups {
            b.push_group(extract_group(bits, g), 1);
        }
        b.finish()
    }

    /// An all-zero compressed bitmap.
    pub fn zero(nbits: usize) -> Self {
        let ngroups = nbits.div_ceil(GROUP_BITS);
        let mut b = Builder::new(nbits);
        if ngroups > 0 {
            b.push_fill(false, ngroups as u64);
        }
        b.finish()
    }

    /// Universe size in bits.
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Number of code words in the compressed representation.
    pub fn code_words(&self) -> usize {
        self.code.len()
    }

    /// Heap bytes used by the compressed form.
    pub fn heap_bytes(&self) -> usize {
        self.code.capacity() * std::mem::size_of::<u64>()
    }

    /// Compression ratio versus the plain representation (plain words /
    /// code words). Greater than 1.0 means the compression won.
    pub fn compression_ratio(&self) -> f64 {
        if self.code.is_empty() {
            return 1.0;
        }
        crate::words_for(self.nbits) as f64 / self.code.len() as f64
    }

    /// Decompress into a plain bitset.
    pub fn to_bitset(&self) -> BitSet {
        let mut out = BitSet::new(self.nbits);
        let mut pos = 0usize; // group index
        for (count, g) in self.runs() {
            match g {
                Group::Fill(false) => pos += count as usize,
                Group::Fill(true) => {
                    for gi in pos..pos + count as usize {
                        set_group(&mut out, gi, LITERAL_MASK);
                    }
                    pos += count as usize;
                }
                Group::Literal(w) => {
                    set_group(&mut out, pos, w);
                    pos += 1;
                }
            }
        }
        out
    }

    /// Population count, computed on the compressed form.
    pub fn count_ones(&self) -> usize {
        let ngroups = self.nbits.div_ceil(GROUP_BITS);
        let mut pos = 0usize;
        let mut total = 0usize;
        for (count, g) in self.runs() {
            match g {
                Group::Fill(false) => pos += count as usize,
                Group::Fill(true) => {
                    for gi in pos..pos + count as usize {
                        total += group_width(self.nbits, gi, ngroups);
                    }
                    pos += count as usize;
                }
                Group::Literal(w) => {
                    total += w.count_ones() as usize;
                    pos += 1;
                }
            }
        }
        total
    }

    /// Any bit set? Early-exits at the first one-fill or nonzero literal.
    pub fn any(&self) -> bool {
        self.runs().any(|(_, g)| match g {
            Group::Fill(v) => v,
            Group::Literal(w) => w != 0,
        })
    }

    /// Bitwise AND on the compressed forms.
    pub fn and(&self, other: &Self) -> Self {
        self.merge(other, |a, b| a & b, |fa, fb| fa && fb)
    }

    /// Bitwise OR on the compressed forms.
    pub fn or(&self, other: &Self) -> Self {
        self.merge(other, |a, b| a | b, |fa, fb| fa || fb)
    }

    /// Bitwise difference `self & !other` on the compressed forms.
    pub fn and_not(&self, other: &Self) -> Self {
        self.merge(other, |a, b| a & !b, |fa, fb| fa && !fb)
    }

    /// Complement within the universe, on the compressed form. Fill
    /// runs flip wholesale; only the final (possibly partial) group is
    /// rewritten bit-exactly.
    pub fn not(&self) -> Self {
        let ngroups = self.nbits.div_ceil(GROUP_BITS);
        let last_mask = if self.nbits.is_multiple_of(GROUP_BITS) {
            LITERAL_MASK
        } else {
            (1u64 << (self.nbits % GROUP_BITS)) - 1
        };
        let mut b = Builder::new(self.nbits);
        let mut pos = 0usize; // group index
        for (count, g) in self.runs() {
            let count = count as usize;
            let covers_last = pos + count == ngroups && ngroups > 0;
            let whole = if covers_last { count - 1 } else { count };
            match g {
                Group::Fill(v) => {
                    if whole > 0 {
                        b.push_fill(!v, whole as u64);
                    }
                    if covers_last {
                        let w = if v { 0 } else { LITERAL_MASK };
                        b.push_group(w & last_mask, 1);
                    }
                }
                Group::Literal(w) => {
                    let flipped = !w & LITERAL_MASK;
                    if covers_last {
                        b.push_group(flipped & last_mask, 1);
                    } else {
                        b.push_group(flipped, 1);
                    }
                }
            }
            pos += count;
        }
        b.finish()
    }

    /// A compressed bitmap with exactly one bit set.
    pub fn singleton(nbits: usize, i: usize) -> Self {
        assert!(i < nbits, "bit {i} out of range {nbits}");
        let ngroups = nbits.div_ceil(GROUP_BITS);
        let (gi, off) = (i / GROUP_BITS, i % GROUP_BITS);
        let mut b = Builder::new(nbits);
        b.push_fill(false, gi as u64);
        b.push_group(1u64 << off, 1);
        b.push_fill(false, (ngroups - gi - 1) as u64);
        b.finish()
    }

    /// Position of the lowest set bit, decoded from the compressed form.
    pub fn first_one(&self) -> Option<usize> {
        let mut pos = 0usize;
        for (count, g) in self.runs() {
            match g {
                Group::Fill(false) => pos += count as usize,
                Group::Fill(true) => return Some(pos * GROUP_BITS),
                Group::Literal(w) => {
                    if w != 0 {
                        return Some(pos * GROUP_BITS + w.trailing_zeros() as usize);
                    }
                    pos += 1;
                }
            }
        }
        None
    }

    /// Iterate set-bit positions, ascending, without decompressing to a
    /// plain bitmap.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        WahOnes {
            cursor: RunCursor::new(&self.code),
            run: None,
            group_pos: 0,
            within: 0,
        }
    }

    /// Does `self & other` have any set bit? Runs on compressed forms
    /// without allocating the result.
    pub fn intersects(&self, other: &Self) -> bool {
        assert_eq!(self.nbits, other.nbits, "universe mismatch");
        let mut xa = RunCursor::new(&self.code);
        let mut xb = RunCursor::new(&other.code);
        let (mut ra, mut rb) = (xa.next(), xb.next());
        loop {
            let ((ca, ga), (cb, gb)) = match (ra, rb) {
                (Some(a), Some(b)) => (a, b),
                _ => return false,
            };
            let step = ca.min(cb);
            let hit = match (ga, gb) {
                (Group::Fill(false), _) | (_, Group::Fill(false)) => false,
                (Group::Fill(true), Group::Fill(true)) => true,
                (Group::Fill(true), Group::Literal(w)) | (Group::Literal(w), Group::Fill(true)) => {
                    w != 0
                }
                (Group::Literal(a), Group::Literal(b)) => a & b != 0,
            };
            if hit {
                return true;
            }
            ra = advance(ra, step, &mut xa);
            rb = advance(rb, step, &mut xb);
        }
    }

    /// Compressed AND written into `out`, reusing `out`'s code
    /// allocation. The hot-loop form of [`and`](Self::and): the
    /// enumeration kernel calls this once per candidate expansion, so
    /// the output buffer must not reallocate on every call.
    pub fn and_into(a: &Self, b: &Self, out: &mut Self) {
        let mut code = std::mem::take(&mut out.code);
        code.clear();
        let mut builder = Builder {
            nbits: a.nbits,
            code,
        };
        merge_into(a, b, &mut builder, |x, y| x & y, |fa, fb| fa && fb);
        out.nbits = a.nbits;
        out.code = builder.code;
    }

    /// Membership test, decoded from the compressed form.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.nbits {
            return false;
        }
        let (target, off) = (i / GROUP_BITS, i % GROUP_BITS);
        let mut pos = 0usize;
        for (count, g) in self.runs() {
            match g {
                Group::Fill(v) => {
                    if target < pos + count as usize {
                        return v;
                    }
                    pos += count as usize;
                }
                Group::Literal(w) => {
                    if target == pos {
                        return w & (1u64 << off) != 0;
                    }
                    pos += 1;
                }
            }
        }
        false
    }

    /// Set bit `i` in place by group surgery: a literal group flips one
    /// bit; a fill run splits into fill/literal/fill. The result may be
    /// non-canonical (e.g. a literal equal to a fill word) — every
    /// operation tolerates that, but structural equality (`==`) between
    /// logically equal sets built along different paths is not
    /// guaranteed.
    pub fn set_bit(&mut self, i: usize) {
        self.write_bit(i, true);
    }

    /// Clear bit `i` in place (see [`set_bit`](Self::set_bit) for the
    /// encoding caveats).
    pub fn clear_bit(&mut self, i: usize) {
        self.write_bit(i, false);
    }

    fn write_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        let (target, off) = (i / GROUP_BITS, i % GROUP_BITS);
        let mut pos = 0usize;
        for idx in 0..self.code.len() {
            let w = self.code[idx];
            if w & FILL_FLAG != 0 {
                let count = (w & MAX_FILL) as usize;
                let fill = w & FILL_VALUE != 0;
                if target < pos + count {
                    if fill == value {
                        return; // already the requested value
                    }
                    let pre = (target - pos) as u64;
                    let post = count as u64 - pre - 1;
                    let fill_word = FILL_FLAG | if fill { FILL_VALUE } else { 0 };
                    let base = if fill { LITERAL_MASK } else { 0 };
                    let lit = (base ^ (1u64 << off)) & LITERAL_MASK;
                    let mut repl = Vec::with_capacity(3);
                    if pre > 0 {
                        repl.push(fill_word | pre);
                    }
                    repl.push(lit);
                    if post > 0 {
                        repl.push(fill_word | post);
                    }
                    self.code.splice(idx..idx + 1, repl);
                    return;
                }
                pos += count;
            } else {
                if target == pos {
                    if value {
                        self.code[idx] |= 1u64 << off;
                    } else {
                        self.code[idx] &= !(1u64 << off);
                    }
                    return;
                }
                pos += 1;
            }
        }
        unreachable!("group {target} not covered by encoding");
    }

    /// Decompress into an existing plain bitset (reusing its words).
    pub fn expand_into(&self, out: &mut BitSet) {
        if out.len() != self.nbits {
            *out = BitSet::new(self.nbits);
        } else {
            out.clear();
        }
        let last_mask = partial_last_mask(self.nbits);
        let ngroups = self.nbits.div_ceil(GROUP_BITS);
        let mut pos = 0usize;
        for (count, g) in self.runs() {
            match g {
                Group::Fill(false) => pos += count as usize,
                Group::Fill(true) => {
                    for gi in pos..pos + count as usize {
                        let v = if gi + 1 == ngroups {
                            LITERAL_MASK & last_mask
                        } else {
                            LITERAL_MASK
                        };
                        or_group(out.words_mut(), gi, v);
                    }
                    pos += count as usize;
                }
                Group::Literal(w) => {
                    let v = if pos + 1 == ngroups { w & last_mask } else { w };
                    or_group(out.words_mut(), pos, v);
                    pos += 1;
                }
            }
        }
    }

    /// `out &= self`, operating on the compressed runs against a plain
    /// bitset of the same universe.
    pub fn and_assign_dense(&self, out: &mut BitSet) {
        assert_eq!(self.nbits, out.len(), "universe mismatch");
        let mut pos = 0usize;
        for (count, g) in self.runs() {
            match g {
                Group::Fill(true) => pos += count as usize,
                Group::Fill(false) => {
                    for gi in pos..pos + count as usize {
                        and_group(out.words_mut(), gi, 0);
                    }
                    pos += count as usize;
                }
                Group::Literal(w) => {
                    and_group(out.words_mut(), pos, w);
                    pos += 1;
                }
            }
        }
    }

    /// Does `self & other` have any set bit, for a plain `other`?
    /// Walks the compressed runs without materializing either side.
    pub fn intersects_dense(&self, other: &BitSet) -> bool {
        assert_eq!(self.nbits, other.len(), "universe mismatch");
        let mut pos = 0usize;
        for (count, g) in self.runs() {
            match g {
                Group::Fill(false) => pos += count as usize,
                Group::Fill(true) => {
                    for gi in pos..pos + count as usize {
                        if extract_group(other, gi) != 0 {
                            return true;
                        }
                    }
                    pos += count as usize;
                }
                Group::Literal(w) => {
                    if extract_group(other, pos) & w != 0 {
                        return true;
                    }
                    pos += 1;
                }
            }
        }
        false
    }

    /// Append the code words as little-endian bytes (the record codecs'
    /// on-disk form; framing and checksums live at the record layer).
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.code.len() * 8);
        for w in &self.code {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Rebuild from little-endian code bytes for a `nbits` universe.
    /// Returns `None` when the bytes are not a whole number of words or
    /// the decoded groups do not cover the universe exactly.
    pub fn deserialize(nbits: usize, bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let code: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        let mut groups = 0u64;
        for w in &code {
            groups += if w & FILL_FLAG != 0 { w & MAX_FILL } else { 1 };
        }
        if groups != nbits.div_ceil(GROUP_BITS) as u64 {
            return None;
        }
        Some(WahBitSet { nbits, code })
    }

    fn merge(
        &self,
        other: &Self,
        lit_op: impl Fn(u64, u64) -> u64,
        fill_op: impl Fn(bool, bool) -> bool,
    ) -> Self {
        let mut out = Builder::new(self.nbits);
        merge_into(self, other, &mut out, lit_op, fill_op);
        out.finish()
    }

    fn runs(&self) -> RunCursor<'_> {
        RunCursor::new(&self.code)
    }
}

/// The shared pair-walk behind every binary operation: decode both
/// operands run-by-run, apply the op over the overlap, append to `out`.
fn merge_into(
    a: &WahBitSet,
    b: &WahBitSet,
    out: &mut Builder,
    lit_op: impl Fn(u64, u64) -> u64,
    fill_op: impl Fn(bool, bool) -> bool,
) {
    assert_eq!(a.nbits, b.nbits, "universe mismatch");
    let mut xa = RunCursor::new(&a.code);
    let mut xb = RunCursor::new(&b.code);
    let (mut ra, mut rb) = (xa.next(), xb.next());
    loop {
        let ((ca, ga), (cb, gb)) = match (ra, rb) {
            (Some(a), Some(b)) => (a, b),
            (None, None) => break,
            _ => unreachable!("equal universes decode to equal group counts"),
        };
        let step = ca.min(cb);
        match (ga, gb) {
            (Group::Fill(fa), Group::Fill(fb)) => out.push_fill(fill_op(fa, fb), step),
            (Group::Fill(f), Group::Literal(w)) => {
                let fw = if f { LITERAL_MASK } else { 0 };
                out.push_group(lit_op(fw, w) & LITERAL_MASK, step);
            }
            (Group::Literal(w), Group::Fill(f)) => {
                let fw = if f { LITERAL_MASK } else { 0 };
                out.push_group(lit_op(w, fw) & LITERAL_MASK, step);
            }
            (Group::Literal(a), Group::Literal(b)) => {
                out.push_group(lit_op(a, b) & LITERAL_MASK, step)
            }
        }
        ra = advance(ra, step, &mut xa);
        rb = advance(rb, step, &mut xb);
    }
}

/// Mask for the (possibly partial) final 63-bit group of a universe.
fn partial_last_mask(nbits: usize) -> u64 {
    if nbits.is_multiple_of(GROUP_BITS) {
        LITERAL_MASK
    } else {
        (1u64 << (nbits % GROUP_BITS)) - 1
    }
}

/// OR 63-bit group `g` into a plain word array (two-word shift; the
/// caller guarantees `value` has no bits beyond the universe).
fn or_group(words: &mut [u64], g: usize, value: u64) {
    let start = g * GROUP_BITS;
    let (wi, off) = (start / 64, start % 64);
    if wi < words.len() {
        words[wi] |= value << off;
    }
    if off != 0 && wi + 1 < words.len() {
        words[wi + 1] |= value >> (64 - off);
    }
}

/// AND 63-bit group `g` of a plain word array with `value`, leaving
/// neighboring groups' bits untouched.
fn and_group(words: &mut [u64], g: usize, value: u64) {
    let start = g * GROUP_BITS;
    let (wi, off) = (start / 64, start % 64);
    if wi < words.len() {
        let mask_lo = LITERAL_MASK << off;
        words[wi] &= !mask_lo | (value << off);
    }
    if off != 0 && wi + 1 < words.len() {
        let mask_hi = LITERAL_MASK >> (64 - off);
        words[wi + 1] &= !mask_hi | (value >> (64 - off));
    }
}

fn advance(
    run: Option<(u64, Group)>,
    step: u64,
    cursor: &mut RunCursor<'_>,
) -> Option<(u64, Group)> {
    let (c, g) = run?;
    debug_assert!(step <= c);
    if step == c {
        cursor.next()
    } else {
        Some((c - step, g))
    }
}

/// Bits in group `gi` (the final group of a non-multiple universe is
/// narrower).
fn group_width(nbits: usize, gi: usize, ngroups: usize) -> usize {
    if gi + 1 == ngroups && !nbits.is_multiple_of(GROUP_BITS) {
        nbits % GROUP_BITS
    } else {
        GROUP_BITS
    }
}

/// Extract 63-bit group `g` from a plain bitset (bits beyond the universe
/// read as zero).
fn extract_group(bits: &BitSet, g: usize) -> u64 {
    let start = g * GROUP_BITS;
    let words = bits.words();
    let (wi, off) = (start / 64, start % 64);
    let lo = words.get(wi).copied().unwrap_or(0) >> off;
    let hi = if off == 0 {
        0
    } else {
        words.get(wi + 1).copied().unwrap_or(0) << (64 - off)
    };
    (lo | hi) & LITERAL_MASK
}

/// Write 63-bit group `g` into a plain bitset, clipped to the universe.
fn set_group(bits: &mut BitSet, g: usize, value: u64) {
    let start = g * GROUP_BITS;
    let end = (start + GROUP_BITS).min(bits.len());
    let mut v = value;
    for i in start..end {
        if v == 0 {
            break;
        }
        if v & 1 != 0 {
            bits.insert(i);
        }
        v >>= 1;
    }
}

/// Streaming set-bit iterator over the compressed form.
struct WahOnes<'a> {
    cursor: RunCursor<'a>,
    run: Option<(u64, Group)>,
    /// Group index of the current run's start.
    group_pos: usize,
    /// Bits already consumed within the current run (for fills: groups
    /// × 63 + bit; for literals: bit shifts applied).
    within: u64,
}

impl Iterator for WahOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let (count, g) = match self.run {
                Some(r) => r,
                None => {
                    let r = self.cursor.next()?;
                    self.run = Some(r);
                    self.within = 0;
                    r
                }
            };
            match g {
                Group::Fill(false) => {
                    self.group_pos += count as usize;
                    self.run = None;
                }
                Group::Fill(true) => {
                    let total = count * GROUP_BITS as u64;
                    if self.within < total {
                        let bit = self.group_pos * GROUP_BITS + self.within as usize;
                        self.within += 1;
                        return Some(bit);
                    }
                    self.group_pos += count as usize;
                    self.run = None;
                }
                Group::Literal(w) => {
                    let rest = w >> self.within;
                    if rest != 0 {
                        let tz = rest.trailing_zeros() as u64;
                        let bit = self.group_pos * GROUP_BITS + (self.within + tz) as usize;
                        self.within += tz + 1;
                        return Some(bit);
                    }
                    self.group_pos += 1;
                    self.run = None;
                }
            }
        }
    }
}

/// Streaming decoder producing `(group_count, Group)` runs.
struct RunCursor<'a> {
    code: &'a [u64],
    i: usize,
}

impl<'a> RunCursor<'a> {
    fn new(code: &'a [u64]) -> Self {
        RunCursor { code, i: 0 }
    }
}

impl Iterator for RunCursor<'_> {
    type Item = (u64, Group);

    fn next(&mut self) -> Option<Self::Item> {
        let w = *self.code.get(self.i)?;
        self.i += 1;
        if w & FILL_FLAG != 0 {
            Some((w & MAX_FILL, Group::Fill(w & FILL_VALUE != 0)))
        } else {
            Some((1, Group::Literal(w)))
        }
    }
}

/// Appends groups, coalescing adjacent identical fills.
struct Builder {
    nbits: usize,
    code: Vec<u64>,
}

impl Builder {
    fn new(nbits: usize) -> Self {
        Builder {
            nbits,
            code: Vec::new(),
        }
    }

    fn push_group(&mut self, w: u64, count: u64) {
        debug_assert_eq!(w & !LITERAL_MASK, 0);
        if w == 0 {
            self.push_fill(false, count);
        } else if w == LITERAL_MASK {
            self.push_fill(true, count);
        } else {
            for _ in 0..count {
                self.code.push(w);
            }
        }
    }

    fn push_fill(&mut self, value: bool, mut count: u64) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.code.last_mut() {
            if *last & FILL_FLAG != 0 && (*last & FILL_VALUE != 0) == value {
                let have = *last & MAX_FILL;
                let add = count.min(MAX_FILL - have);
                *last += add;
                count -= add;
            }
        }
        while count > 0 {
            let chunk = count.min(MAX_FILL);
            self.code
                .push(FILL_FLAG | if value { FILL_VALUE } else { 0 } | chunk);
            count -= chunk;
        }
    }

    fn finish(mut self) -> WahBitSet {
        self.code.shrink_to_fit();
        WahBitSet {
            nbits: self.nbits,
            code: self.code,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(nbits: usize, ones: &[usize]) {
        let plain = BitSet::from_ones(nbits, ones.iter().copied());
        let wah = WahBitSet::from_bitset(&plain);
        assert_eq!(wah.to_bitset(), plain, "roundtrip n={nbits} ones={ones:?}");
        assert_eq!(wah.count_ones(), plain.count_ones());
        assert_eq!(wah.any(), plain.any());
    }

    #[test]
    fn roundtrips() {
        roundtrip(0, &[]);
        roundtrip(1, &[0]);
        roundtrip(63, &[0, 62]);
        roundtrip(64, &[63]);
        roundtrip(126, &[0, 62, 63, 125]);
        roundtrip(1000, &[0, 500, 999]);
        roundtrip(1000, &[]);
        let all: Vec<usize> = (0..500).collect();
        roundtrip(500, &all);
    }

    #[test]
    fn sparse_compresses() {
        let plain = BitSet::from_ones(100_000, [5usize, 99_000]);
        let wah = WahBitSet::from_bitset(&plain);
        assert!(wah.code_words() < 10, "got {}", wah.code_words());
        assert!(wah.compression_ratio() > 100.0);
    }

    #[test]
    fn dense_fill_compresses() {
        let plain = BitSet::full(100_000);
        let wah = WahBitSet::from_bitset(&plain);
        assert!(wah.code_words() <= 2, "got {}", wah.code_words());
        assert_eq!(wah.count_ones(), 100_000);
    }

    #[test]
    fn and_or_match_plain() {
        let a = BitSet::from_ones(400, [0, 1, 63, 64, 65, 200, 399]);
        let b = BitSet::from_ones(400, [1, 64, 200, 300]);
        let wa = WahBitSet::from_bitset(&a);
        let wb = WahBitSet::from_bitset(&b);
        assert_eq!(wa.and(&wb).to_bitset(), a.and(&b));
        assert_eq!(wa.or(&wb).to_bitset(), a.or(&b));
    }

    #[test]
    fn intersects_matches_plain() {
        let a = BitSet::from_ones(1000, [999]);
        let b = BitSet::from_ones(1000, [999]);
        let c = BitSet::from_ones(1000, [0]);
        let (wa, wb, wc) = (
            WahBitSet::from_bitset(&a),
            WahBitSet::from_bitset(&b),
            WahBitSet::from_bitset(&c),
        );
        assert!(wa.intersects(&wb));
        assert!(!wa.intersects(&wc));
        assert!(!WahBitSet::zero(1000).intersects(&wa));
    }

    #[test]
    fn zero_constructor() {
        let z = WahBitSet::zero(500);
        assert!(!z.any());
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.to_bitset(), BitSet::new(500));
    }

    #[test]
    fn not_matches_plain() {
        for (n, ones) in [
            (10usize, vec![0usize, 9]),
            (63, vec![]),
            (64, vec![63]),
            (126, vec![0, 62, 63, 125]),
            (200, (0..200).collect::<Vec<_>>()),
            (1000, vec![500]),
        ] {
            let plain = BitSet::from_ones(n, ones.iter().copied());
            let wah = WahBitSet::from_bitset(&plain);
            let mut expect = plain.clone();
            expect.not_assign();
            assert_eq!(wah.not().to_bitset(), expect, "n={n}");
            // double complement is identity
            assert_eq!(wah.not().not(), WahBitSet::from_bitset(&plain), "n={n}");
        }
    }

    #[test]
    fn and_not_matches_plain() {
        let a = BitSet::from_ones(300, [0, 100, 200, 299]);
        let b = BitSet::from_ones(300, [100, 299]);
        let (wa, wb) = (WahBitSet::from_bitset(&a), WahBitSet::from_bitset(&b));
        assert_eq!(wa.and_not(&wb).to_bitset(), a.and_not(&b));
    }

    #[test]
    fn singleton_and_first_one() {
        for n in [1usize, 63, 64, 100, 500] {
            for &i in &[0usize, n / 2, n - 1] {
                let s = WahBitSet::singleton(n, i);
                assert_eq!(s.count_ones(), 1, "n={n} i={i}");
                assert_eq!(s.first_one(), Some(i));
                assert_eq!(s.to_bitset().to_vec(), vec![i]);
            }
        }
        assert_eq!(WahBitSet::zero(50).first_one(), None);
    }

    #[test]
    fn iter_ones_matches_plain() {
        for (n, ones) in [
            (100usize, vec![0usize, 1, 62, 63, 64, 99]),
            (700, vec![5, 300, 301, 699]),
            (63, vec![]),
            (630, (0..630).collect::<Vec<_>>()), // full fills
        ] {
            let plain = BitSet::from_ones(n, ones.iter().copied());
            let wah = WahBitSet::from_bitset(&plain);
            let got: Vec<usize> = wah.iter_ones().collect();
            assert_eq!(got, plain.to_vec(), "n={n}");
        }
    }

    #[test]
    fn and_with_full_is_identity() {
        let a = BitSet::from_ones(300, [0, 100, 299]);
        let wa = WahBitSet::from_bitset(&a);
        let wf = WahBitSet::from_bitset(&BitSet::full(300));
        assert_eq!(wa.and(&wf).to_bitset(), a);
    }

    #[test]
    fn and_into_matches_and_and_reuses_buffer() {
        let a = BitSet::from_ones(500, [0, 63, 64, 200, 499]);
        let b = BitSet::from_ones(500, [63, 200, 300]);
        let (wa, wb) = (WahBitSet::from_bitset(&a), WahBitSet::from_bitset(&b));
        let mut out = WahBitSet::zero(500);
        for _ in 0..3 {
            WahBitSet::and_into(&wa, &wb, &mut out);
            assert_eq!(out.to_bitset(), a.and(&b));
        }
        // buffer works across differing operands too
        WahBitSet::and_into(&wb, &wb, &mut out);
        assert_eq!(out.to_bitset(), b);
    }

    #[test]
    fn set_and_clear_bit_match_plain() {
        for n in [1usize, 63, 64, 126, 500] {
            let mut plain = BitSet::new(n);
            let mut wah = WahBitSet::zero(n);
            let probes: Vec<usize> = [0, 1, 62, 63, 64, n / 2, n - 1]
                .into_iter()
                .filter(|&i| i < n)
                .collect();
            for &i in &probes {
                plain.insert(i);
                wah.set_bit(i);
                assert_eq!(wah.to_bitset(), plain, "set {i} n={n}");
                assert!(wah.contains(i));
            }
            // idempotent sets, then clears
            for &i in &probes {
                wah.set_bit(i);
                assert_eq!(wah.to_bitset(), plain, "re-set {i} n={n}");
            }
            for &i in &probes {
                plain.remove(i);
                wah.clear_bit(i);
                assert_eq!(wah.to_bitset(), plain, "clear {i} n={n}");
                assert!(!wah.contains(i));
            }
            assert!(!wah.any());
        }
    }

    #[test]
    fn set_bit_splits_one_fills() {
        let mut wah = WahBitSet::from_bitset(&BitSet::full(630));
        wah.clear_bit(315);
        let mut expect = BitSet::full(630);
        expect.remove(315);
        assert_eq!(wah.to_bitset(), expect);
        assert_eq!(wah.count_ones(), 629);
        wah.set_bit(315);
        assert_eq!(wah.to_bitset(), BitSet::full(630));
    }

    #[test]
    fn mutated_encodings_interoperate_with_ops() {
        // set_bit/clear_bit may leave non-canonical literals; every
        // operation must still read them correctly.
        let mut a = WahBitSet::zero(200);
        a.set_bit(5);
        a.set_bit(150);
        a.clear_bit(5);
        let b = WahBitSet::singleton(200, 150);
        assert!(a.intersects(&b));
        assert_eq!(a.and(&b).count_ones(), 1);
        assert_eq!(a.first_one(), Some(150));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![150]);
    }

    #[test]
    fn contains_matches_plain() {
        let plain = BitSet::from_ones(400, [0, 62, 63, 64, 126, 399]);
        let wah = WahBitSet::from_bitset(&plain);
        for i in 0..400 {
            assert_eq!(wah.contains(i), plain.contains(i), "bit {i}");
        }
        assert!(!wah.contains(400));
    }

    #[test]
    fn expand_into_matches_to_bitset() {
        for (n, ones) in [
            (0usize, vec![]),
            (63, vec![0usize, 62]),
            (64, vec![63]),
            (126, vec![0, 62, 63, 125]),
            (1000, vec![0, 500, 999]),
            (630, (0..630).collect::<Vec<_>>()),
        ] {
            let plain = BitSet::from_ones(n, ones.iter().copied());
            let wah = WahBitSet::from_bitset(&plain);
            let mut out = BitSet::new(n);
            wah.expand_into(&mut out);
            assert_eq!(out, plain, "n={n}");
            // reuse with stale contents
            wah.expand_into(&mut out);
            assert_eq!(out, plain, "n={n} reuse");
        }
    }

    #[test]
    fn mixed_dense_ops_match_plain() {
        let a = BitSet::from_ones(700, [0, 63, 64, 300, 699]);
        let b = BitSet::from_ones(700, [63, 300, 500]);
        let wa = WahBitSet::from_bitset(&a);
        // dense &= wah
        let mut out = b.clone();
        wa.and_assign_dense(&mut out);
        assert_eq!(out, a.and(&b));
        assert!(wa.intersects_dense(&b));
        assert!(!WahBitSet::from_bitset(&BitSet::from_ones(700, [1usize])).intersects_dense(&b));
        // full-fill runs against dense
        let wf = WahBitSet::from_bitset(&BitSet::full(700));
        let mut out = b.clone();
        wf.and_assign_dense(&mut out);
        assert_eq!(out, b);
        assert!(wf.intersects_dense(&b));
        assert!(!wf.intersects_dense(&BitSet::new(700)));
    }

    #[test]
    fn serialize_roundtrips() {
        for (n, ones) in [
            (0usize, vec![]),
            (100, vec![5usize, 99]),
            (1000, (0..1000).step_by(7).collect::<Vec<_>>()),
        ] {
            let wah = WahBitSet::from_bitset(&BitSet::from_ones(n, ones.iter().copied()));
            let mut bytes = Vec::new();
            wah.serialize_into(&mut bytes);
            let back = WahBitSet::deserialize(n, &bytes).expect("roundtrip");
            assert_eq!(back, wah, "n={n}");
        }
        // torn / wrong-universe bytes are rejected
        let wah = WahBitSet::from_bitset(&BitSet::from_ones(100, [5usize]));
        let mut bytes = Vec::new();
        wah.serialize_into(&mut bytes);
        assert!(WahBitSet::deserialize(100, &bytes[..bytes.len() - 3]).is_none());
        assert!(WahBitSet::deserialize(5000, &bytes).is_none());
    }
}
