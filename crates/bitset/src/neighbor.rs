//! The [`NeighborSet`] trait: the bitmap operations the levelwise
//! clique kernel actually uses, abstracted over representation.
//!
//! The SC'05 Clique Enumerator touches its common-neighbor bitmaps
//! through a tiny surface — `AND` into a scratch buffer, any-bit
//! intersection tests, population counts, and (de)serialization for the
//! out-of-core and checkpoint codecs. Everything else about the
//! enumeration (sub-list bookkeeping, level barriers, parallel
//! distribution) is representation-agnostic, so the kernel is generic
//! over this trait and is instantiated with:
//!
//! * [`BitSet`] — dense words; fastest per operation, `n/64` words per
//!   set regardless of density;
//! * [`WahBitSet`] — WAH-compressed; operations run on the compressed
//!   words, so sparse sets cost memory *and time* proportional to their
//!   run structure instead of the universe;
//! * [`HybridSet`] — adaptive: each stored sub-list keeps whichever
//!   representation is smaller for its own density, while the hot AND
//!   scratch stays dense.

use crate::{BitSet, WahBitSet};

/// Backend identifier for [`BitSet`] (see [`NeighborSet::KIND`]).
pub const KIND_DENSE: u8 = 0;
/// Backend identifier for [`WahBitSet`].
pub const KIND_WAH: u8 = 1;
/// Backend identifier for [`HybridSet`].
pub const KIND_HYBRID: u8 = 2;

/// A fixed-universe bit string supporting exactly the operations the
/// levelwise enumeration kernel needs.
///
/// Implementations must agree bit-for-bit with [`BitSet`] on every
/// operation; the representation only changes the cost model. The
/// serialization methods define each representation's on-disk payload
/// (record framing and checksums live in the store layer above).
pub trait NeighborSet: Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Stable one-byte representation tag, persisted in checkpoint
    /// headers so a resume cannot silently decode with the wrong
    /// backend.
    const KIND: u8;

    /// Human-readable backend name (CLI `--backend` values).
    const KIND_NAME: &'static str;

    /// Build from a dense bitset.
    fn from_bitset(bits: &BitSet) -> Self;

    /// Decompress/copy into a dense bitset.
    fn to_bitset(&self) -> BitSet;

    /// The empty set over a `nbits` universe.
    fn empty(nbits: usize) -> Self;

    /// Universe size in bits.
    fn nbits(&self) -> usize;

    /// `out = a & b`, reusing `out`'s storage. The kernel's one hot
    /// operation: called once per candidate vertex per sub-list.
    fn and_into(a: &Self, b: &Self, out: &mut Self);

    /// Does `self & other` have any set bit? (The paper's one-AND
    /// maximality test.)
    fn intersects(&self, other: &Self) -> bool;

    /// Any bit set?
    fn any(&self) -> bool;

    /// Lowest set bit, if any.
    fn first_one(&self) -> Option<usize>;

    /// Population count.
    fn count_ones(&self) -> usize;

    /// Membership test.
    fn contains(&self, i: usize) -> bool;

    /// Heap bytes held by this set (memory-watchdog accounting).
    fn heap_bytes(&self) -> usize;

    /// Clone for long-term storage in a kept sub-list. Adaptive
    /// representations re-choose their encoding here (the scratch
    /// buffer being cloned is transient and optimized for speed, the
    /// stored copy for footprint); plain representations just clone.
    fn store_clone(&self) -> Self {
        self.clone()
    }

    /// `Some(bytes)` when every set over a `nbits` universe serializes
    /// to the same fixed width (dense words) — the record codecs then
    /// omit the length prefix, keeping the dense formats byte-identical
    /// to their pre-trait layout. `None` for variable-width encodings.
    fn serialized_len(nbits: usize) -> Option<usize>;

    /// Append this set's serialized payload.
    fn serialize_into(&self, out: &mut Vec<u8>);

    /// Rebuild from a serialized payload for a `nbits` universe;
    /// `None` on malformed bytes.
    fn deserialize(nbits: usize, bytes: &[u8]) -> Option<Self>;
}

impl NeighborSet for BitSet {
    const KIND: u8 = KIND_DENSE;
    const KIND_NAME: &'static str = "dense";

    fn from_bitset(bits: &BitSet) -> Self {
        bits.clone()
    }

    fn to_bitset(&self) -> BitSet {
        self.clone()
    }

    fn empty(nbits: usize) -> Self {
        BitSet::new(nbits)
    }

    fn nbits(&self) -> usize {
        self.len()
    }

    fn and_into(a: &Self, b: &Self, out: &mut Self) {
        BitSet::and_into(a, b, out);
    }

    fn intersects(&self, other: &Self) -> bool {
        BitSet::intersects(self, other)
    }

    fn any(&self) -> bool {
        BitSet::any(self)
    }

    fn first_one(&self) -> Option<usize> {
        BitSet::first_one(self)
    }

    fn count_ones(&self) -> usize {
        BitSet::count_ones(self)
    }

    fn contains(&self, i: usize) -> bool {
        BitSet::contains(self, i)
    }

    fn heap_bytes(&self) -> usize {
        BitSet::heap_bytes(self)
    }

    fn serialized_len(nbits: usize) -> Option<usize> {
        Some(crate::words_for(nbits) * 8)
    }

    fn serialize_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.words().len() * 8);
        for w in self.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn deserialize(nbits: usize, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != crate::words_for(nbits) * 8 {
            return None;
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        // from_words panics on trailing garbage; validate first.
        let tail_bits = nbits % 64;
        if tail_bits != 0 {
            if let Some(&last) = words.last() {
                if last >> tail_bits != 0 {
                    return None;
                }
            }
        }
        Some(BitSet::from_words(nbits, words))
    }
}

impl NeighborSet for WahBitSet {
    const KIND: u8 = KIND_WAH;
    const KIND_NAME: &'static str = "wah";

    fn from_bitset(bits: &BitSet) -> Self {
        WahBitSet::from_bitset(bits)
    }

    fn to_bitset(&self) -> BitSet {
        WahBitSet::to_bitset(self)
    }

    fn empty(nbits: usize) -> Self {
        WahBitSet::zero(nbits)
    }

    fn nbits(&self) -> usize {
        self.len()
    }

    fn and_into(a: &Self, b: &Self, out: &mut Self) {
        WahBitSet::and_into(a, b, out);
    }

    fn intersects(&self, other: &Self) -> bool {
        WahBitSet::intersects(self, other)
    }

    fn any(&self) -> bool {
        WahBitSet::any(self)
    }

    fn first_one(&self) -> Option<usize> {
        WahBitSet::first_one(self)
    }

    fn count_ones(&self) -> usize {
        WahBitSet::count_ones(self)
    }

    fn contains(&self, i: usize) -> bool {
        WahBitSet::contains(self, i)
    }

    fn heap_bytes(&self) -> usize {
        WahBitSet::heap_bytes(self)
    }

    fn serialized_len(_nbits: usize) -> Option<usize> {
        None
    }

    fn serialize_into(&self, out: &mut Vec<u8>) {
        WahBitSet::serialize_into(self, out);
    }

    fn deserialize(nbits: usize, bytes: &[u8]) -> Option<Self> {
        WahBitSet::deserialize(nbits, bytes)
    }
}

/// An adaptive neighbor set: stores whichever of the dense or WAH
/// representation is smaller, chosen per set by its own density.
///
/// The choice is made at [`from_bitset`](NeighborSet::from_bitset) /
/// [`store_clone`](NeighborSet::store_clone) time; intermediate results
/// ([`and_into`](NeighborSet::and_into) outputs) always materialize
/// dense so the kernel's scratch buffer never reallocates per
/// operation.
#[derive(Clone, Debug)]
pub enum HybridSet {
    /// Dense words won (high-density set).
    Dense(BitSet),
    /// WAH compression won (sparse or run-structured set).
    Wah(WahBitSet),
}

impl HybridSet {
    /// Exact storage bytes of each representation for a dense input.
    fn pick(bits: &BitSet) -> Self {
        let wah = WahBitSet::from_bitset(bits);
        if wah.code_words() * 8 < crate::words_for(bits.len()) * 8 {
            HybridSet::Wah(wah)
        } else {
            HybridSet::Dense(bits.clone())
        }
    }

    /// Which representation this set currently holds ("dense"/"wah").
    pub fn repr_name(&self) -> &'static str {
        match self {
            HybridSet::Dense(_) => "dense",
            HybridSet::Wah(_) => "wah",
        }
    }
}

impl PartialEq for HybridSet {
    /// Logical equality: representation does not matter.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (HybridSet::Dense(a), HybridSet::Dense(b)) => a == b,
            (HybridSet::Wah(a), HybridSet::Wah(b)) => a.to_bitset() == b.to_bitset(),
            (HybridSet::Dense(d), HybridSet::Wah(w)) | (HybridSet::Wah(w), HybridSet::Dense(d)) => {
                &w.to_bitset() == d
            }
        }
    }
}

impl NeighborSet for HybridSet {
    const KIND: u8 = KIND_HYBRID;
    const KIND_NAME: &'static str = "hybrid";

    fn from_bitset(bits: &BitSet) -> Self {
        Self::pick(bits)
    }

    fn to_bitset(&self) -> BitSet {
        match self {
            HybridSet::Dense(d) => d.clone(),
            HybridSet::Wah(w) => w.to_bitset(),
        }
    }

    fn empty(nbits: usize) -> Self {
        HybridSet::Wah(WahBitSet::zero(nbits))
    }

    fn nbits(&self) -> usize {
        match self {
            HybridSet::Dense(d) => d.len(),
            HybridSet::Wah(w) => w.len(),
        }
    }

    fn and_into(a: &Self, b: &Self, out: &mut Self) {
        let nbits = a.nbits();
        // Reuse out's dense buffer when it has one; otherwise install one.
        if !matches!(out, HybridSet::Dense(d) if d.len() == nbits) {
            *out = HybridSet::Dense(BitSet::new(nbits));
        }
        let HybridSet::Dense(dense) = out else {
            unreachable!("out forced dense above")
        };
        match a {
            HybridSet::Dense(d) => dense.words_mut().copy_from_slice(d.words()),
            HybridSet::Wah(w) => w.expand_into(dense),
        }
        match b {
            HybridSet::Dense(d) => dense.and_assign(d),
            HybridSet::Wah(w) => w.and_assign_dense(dense),
        }
    }

    fn intersects(&self, other: &Self) -> bool {
        match (self, other) {
            (HybridSet::Dense(a), HybridSet::Dense(b)) => a.intersects(b),
            (HybridSet::Wah(a), HybridSet::Wah(b)) => a.intersects(b),
            (HybridSet::Dense(d), HybridSet::Wah(w)) | (HybridSet::Wah(w), HybridSet::Dense(d)) => {
                w.intersects_dense(d)
            }
        }
    }

    fn any(&self) -> bool {
        match self {
            HybridSet::Dense(d) => d.any(),
            HybridSet::Wah(w) => w.any(),
        }
    }

    fn first_one(&self) -> Option<usize> {
        match self {
            HybridSet::Dense(d) => d.first_one(),
            HybridSet::Wah(w) => w.first_one(),
        }
    }

    fn count_ones(&self) -> usize {
        match self {
            HybridSet::Dense(d) => d.count_ones(),
            HybridSet::Wah(w) => w.count_ones(),
        }
    }

    fn contains(&self, i: usize) -> bool {
        match self {
            HybridSet::Dense(d) => d.contains(i),
            HybridSet::Wah(w) => w.contains(i),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            HybridSet::Dense(d) => d.heap_bytes(),
            HybridSet::Wah(w) => w.heap_bytes(),
        }
    }

    fn store_clone(&self) -> Self {
        match self {
            // Transient dense scratch: re-evaluate the density choice
            // before the copy is stored for a whole level.
            HybridSet::Dense(d) => Self::pick(d),
            // Already compressed: compression was already the winner.
            HybridSet::Wah(w) => HybridSet::Wah(w.clone()),
        }
    }

    fn serialized_len(_nbits: usize) -> Option<usize> {
        None
    }

    fn serialize_into(&self, out: &mut Vec<u8>) {
        match self {
            HybridSet::Dense(d) => {
                out.push(KIND_DENSE);
                NeighborSet::serialize_into(d, out);
            }
            HybridSet::Wah(w) => {
                out.push(KIND_WAH);
                NeighborSet::serialize_into(w, out);
            }
        }
    }

    fn deserialize(nbits: usize, bytes: &[u8]) -> Option<Self> {
        let (&tag, payload) = bytes.split_first()?;
        match tag {
            KIND_DENSE => {
                <BitSet as NeighborSet>::deserialize(nbits, payload).map(HybridSet::Dense)
            }
            KIND_WAH => WahBitSet::deserialize(nbits, payload).map(HybridSet::Wah),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sets(n: usize) -> Vec<BitSet> {
        vec![
            BitSet::new(n),
            BitSet::full(n),
            BitSet::from_ones(n, [0usize, n / 2, n - 1]),
            BitSet::from_ones(n, (0..n).step_by(3)),
            BitSet::from_ones(n, (n / 4)..(n / 2)),
        ]
    }

    fn exercise<S: NeighborSet>(n: usize) {
        for a in sample_sets(n) {
            let sa = S::from_bitset(&a);
            assert_eq!(sa.to_bitset(), a);
            assert_eq!(sa.nbits(), n);
            assert_eq!(sa.count_ones(), a.count_ones());
            assert_eq!(sa.any(), a.any());
            assert_eq!(sa.first_one(), a.first_one());
            for i in [0usize, n / 2, n - 1] {
                assert_eq!(sa.contains(i), a.contains(i));
            }
            assert_eq!(sa.store_clone().to_bitset(), a);
            // serialization roundtrip
            let mut bytes = Vec::new();
            sa.serialize_into(&mut bytes);
            if let Some(fixed) = S::serialized_len(n) {
                assert_eq!(bytes.len(), fixed);
            }
            let back = S::deserialize(n, &bytes).expect("roundtrip");
            assert_eq!(back.to_bitset(), a);
            for b in sample_sets(n) {
                let sb = S::from_bitset(&b);
                assert_eq!(sa.intersects(&sb), a.intersects(&b));
                let mut out = S::empty(n);
                S::and_into(&sa, &sb, &mut out);
                assert_eq!(out.to_bitset(), a.and(&b), "and n={n}");
                // and reuse the scratch immediately
                S::and_into(&sb, &sa, &mut out);
                assert_eq!(out.to_bitset(), a.and(&b));
            }
        }
    }

    #[test]
    fn dense_conforms() {
        exercise::<BitSet>(130);
        exercise::<BitSet>(64);
    }

    #[test]
    fn wah_conforms() {
        exercise::<WahBitSet>(130);
        exercise::<WahBitSet>(64);
    }

    #[test]
    fn hybrid_conforms() {
        exercise::<HybridSet>(130);
        exercise::<HybridSet>(64);
    }

    #[test]
    fn hybrid_picks_the_smaller_representation() {
        // sparse: a couple of bits in a large universe → WAH wins
        let sparse = BitSet::from_ones(100_000, [5usize, 9_000]);
        let h = HybridSet::from_bitset(&sparse);
        assert_eq!(h.repr_name(), "wah");
        assert!(h.heap_bytes() < sparse.heap_bytes() / 100);
        // dense random-ish: alternating bits kill run compression
        let dense = BitSet::from_ones(1000, (0..1000).step_by(2));
        let h = HybridSet::from_bitset(&dense);
        assert_eq!(h.repr_name(), "dense");
        // store_clone of a dense scratch re-chooses
        let mut out = HybridSet::empty(100_000);
        let a = HybridSet::from_bitset(&sparse);
        let full = HybridSet::from_bitset(&BitSet::full(100_000));
        HybridSet::and_into(&a, &full, &mut out);
        assert_eq!(out.repr_name(), "dense"); // scratch stays dense
        assert_eq!(out.store_clone().repr_name(), "wah"); // storage compresses
    }

    #[test]
    fn hybrid_mixed_serialization_roundtrips() {
        for bits in [
            BitSet::from_ones(5000, [1usize, 4000]),
            BitSet::from_ones(5000, (0..5000).step_by(2)),
        ] {
            let h = HybridSet::from_bitset(&bits);
            let mut bytes = Vec::new();
            h.serialize_into(&mut bytes);
            let back = HybridSet::deserialize(5000, &bytes).expect("roundtrip");
            assert_eq!(back.to_bitset(), bits);
            assert_eq!(back.repr_name(), h.repr_name());
        }
        assert!(HybridSet::deserialize(100, &[]).is_none());
        assert!(HybridSet::deserialize(100, &[9, 0, 0]).is_none());
    }
}
