//! Bit-sliced counters for *at-least-k-of-n* Boolean graph queries.
//!
//! The paper (§1) refines noisy protein-interaction data with "queries
//! consisting of Boolean graph operations (e.g., graph intersection and
//! at-least-k-of-n over multiple graphs)". Counting how many of `n`
//! bitmaps set each position, bit-parallel, needs a vertical (bit-sliced)
//! counter: slice `j` holds bit `j` of the per-position count.

use crate::BitSet;

/// A per-position counter over a fixed universe, stored as bit slices.
///
/// ```
/// use gsb_bitset::{BitSet, SliceCounter};
/// let mut votes = SliceCounter::new(8);
/// votes.add(&BitSet::from_ones(8, [0, 1, 2]));
/// votes.add(&BitSet::from_ones(8, [1, 2]));
/// votes.add(&BitSet::from_ones(8, [2]));
/// assert_eq!(votes.at_least(2).to_vec(), vec![1, 2]);
/// assert_eq!(votes.exactly(3).to_vec(), vec![2]);
/// ```
///
/// Adding a bitmap is a ripple-carry over the slices; extracting the
/// positions whose count reaches a threshold is a bit-parallel
/// comparison — no per-position loop ever runs.
#[derive(Clone, Debug)]
pub struct SliceCounter {
    nbits: usize,
    /// `slices[j]` holds bit `j` of every position's count.
    slices: Vec<BitSet>,
    added: usize,
}

impl SliceCounter {
    /// A zeroed counter over `nbits` positions.
    pub fn new(nbits: usize) -> Self {
        SliceCounter {
            nbits,
            slices: Vec::new(),
            added: 0,
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// How many bitmaps have been accumulated.
    pub fn added(&self) -> usize {
        self.added
    }

    /// Add one bitmap: every set position's count increments by one.
    pub fn add(&mut self, bits: &BitSet) {
        assert_eq!(bits.len(), self.nbits, "universe mismatch");
        let mut carry = bits.clone();
        for slice in &mut self.slices {
            if carry.none() {
                break;
            }
            // (slice, carry) = (slice XOR carry, slice AND carry)
            let new_carry = slice.and(&carry);
            slice.xor_assign(&carry);
            carry = new_carry;
        }
        if carry.any() {
            self.slices.push(carry);
        }
        self.added += 1;
    }

    /// Count at one position.
    pub fn count_at(&self, i: usize) -> usize {
        assert!(i < self.nbits, "position out of range");
        self.slices
            .iter()
            .enumerate()
            .map(|(j, s)| (s.contains(i) as usize) << j)
            .sum()
    }

    /// Positions whose count is `>= k`, as a bitmap.
    pub fn at_least(&self, k: usize) -> BitSet {
        if k == 0 {
            return BitSet::full(self.nbits);
        }
        // Compare bit-sliced counts against the constant k, MSB first:
        // `ge` tracks positions still equal on all higher bits; a
        // position wins outright where its count bit is 1 and k's is 0.
        let width = usize::BITS as usize - k.leading_zeros() as usize;
        let width = width.max(self.slices.len());
        let mut result = BitSet::new(self.nbits);
        let mut equal = BitSet::full(self.nbits);
        let zero = BitSet::new(self.nbits);
        for j in (0..width).rev() {
            let slice = self.slices.get(j).unwrap_or(&zero);
            if (k >> j) & 1 == 0 {
                result.or_assign(&slice.and(&equal));
                equal.and_not_assign(slice);
            } else {
                equal.and_assign(slice);
            }
        }
        result.or_assign(&equal); // exactly-k positions
        result
    }

    /// Positions whose count is exactly `k`.
    pub fn exactly(&self, k: usize) -> BitSet {
        let mut hi = self.at_least(k);
        hi.and_not_assign(&self.at_least(k + 1));
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_from(rows: &[&[usize]], nbits: usize) -> SliceCounter {
        let mut c = SliceCounter::new(nbits);
        for r in rows {
            c.add(&BitSet::from_ones(nbits, r.iter().copied()));
        }
        c
    }

    #[test]
    fn count_at_matches_manual() {
        let c = counter_from(&[&[0, 1, 2], &[1, 2], &[2]], 4);
        assert_eq!(c.count_at(0), 1);
        assert_eq!(c.count_at(1), 2);
        assert_eq!(c.count_at(2), 3);
        assert_eq!(c.count_at(3), 0);
        assert_eq!(c.added(), 3);
    }

    #[test]
    fn at_least_thresholds() {
        let c = counter_from(&[&[0, 1, 2], &[1, 2], &[2]], 4);
        assert_eq!(c.at_least(0).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(c.at_least(1).to_vec(), vec![0, 1, 2]);
        assert_eq!(c.at_least(2).to_vec(), vec![1, 2]);
        assert_eq!(c.at_least(3).to_vec(), vec![2]);
        assert_eq!(c.at_least(4).to_vec(), Vec::<usize>::new());
    }

    #[test]
    fn exactly_partitions() {
        let c = counter_from(&[&[0, 1], &[1]], 3);
        assert_eq!(c.exactly(0).to_vec(), vec![2]);
        assert_eq!(c.exactly(1).to_vec(), vec![0]);
        assert_eq!(c.exactly(2).to_vec(), vec![1]);
    }

    #[test]
    fn many_additions_ripple() {
        let mut c = SliceCounter::new(2);
        let ones = BitSet::from_ones(2, [0]);
        for _ in 0..100 {
            c.add(&ones);
        }
        assert_eq!(c.count_at(0), 100);
        assert_eq!(c.count_at(1), 0);
        assert_eq!(c.at_least(100).to_vec(), vec![0]);
        assert_eq!(c.at_least(101).to_vec(), Vec::<usize>::new());
    }

    #[test]
    fn threshold_wider_than_counter() {
        let c = counter_from(&[&[0]], 2);
        // k = 8 needs 4 comparison bits; counter has 1 slice.
        assert!(c.at_least(8).none());
    }
}
