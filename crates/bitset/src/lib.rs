//! # gsb-bitset — bit-string substrate for genome-scale graph analysis
//!
//! The SC'05 framework ("Genome-Scale Computational Approaches to
//! Memory-Intensive Applications in Systems Biology", Zhang et al.)
//! rests on one data-representation idea: the *common neighbors* of a
//! clique in an `n`-vertex graph are a length-`n` bit string, so that
//!
//! * `CN(C ∪ {v}) = CN(C) AND N(v)` is one vectorized AND, and
//! * "is clique `C` maximal?" is one *any-bit-set* test on `CN(C)`.
//!
//! This crate provides that substrate:
//!
//! * [`BitSet`] — a fixed-universe bit string over `u64` words with the
//!   bulk kernels the enumeration kernels need (`and_into`,
//!   [`BitSet::intersects`], [`BitSet::count_and`], word-level access);
//! * [`WahBitSet`] — a Word-Aligned-Hybrid compressed bitmap with
//!   `AND`/`OR` performed directly on the compressed form (the paper's
//!   §4 "work in this direction is underway");
//! * [`SliceCounter`] — a bit-sliced counter for *at-least-k-of-n*
//!   Boolean graph queries over stacks of bitmaps (paper §1, cleaning
//!   protein-interaction replicates).
//!
//! All operations preserve the invariant that bits at positions
//! `>= len()` are zero, so word-level equality, hashing, and population
//! counts are exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod counter;
mod neighbor;
mod wah;

pub use bitset::{BitSet, Ones};
pub use counter::SliceCounter;
pub use neighbor::{HybridSet, NeighborSet, KIND_DENSE, KIND_HYBRID, KIND_WAH};
pub use wah::WahBitSet;

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `nbits` bits.
#[inline]
pub const fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }
}
