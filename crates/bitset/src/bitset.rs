//! Fixed-universe bit string over `u64` words.

use crate::{words_for, WORD_BITS};
use std::fmt;

/// A fixed-length bit string ("bitmap memory index" in the paper's terms).
///
/// ```
/// use gsb_bitset::BitSet;
/// let a = BitSet::from_ones(128, [1, 64, 100]);
/// let b = BitSet::from_ones(128, [64, 100, 127]);
/// assert_eq!(a.and(&b).to_vec(), vec![64, 100]);
/// assert!(a.intersects(&b));          // one early-exit pass
/// assert_eq!(a.count_and(&b), 2);     // popcount without materializing
/// ```
///
/// The universe size is fixed at construction; all binary operations
/// require equal universe sizes and panic otherwise (mixing universes is
/// a logic error in the enumeration kernels, never a recoverable
/// condition).
///
/// Invariant: bits at positions `>= self.len()` are always zero.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    nbits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty bit string over a universe of `nbits` positions.
    pub fn new(nbits: usize) -> Self {
        BitSet {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// A bit string with every position set.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::new(nbits);
        s.set_all();
        s
    }

    /// Build from an iterator of positions. Panics if any position is out
    /// of range.
    pub fn from_ones<I: IntoIterator<Item = usize>>(nbits: usize, ones: I) -> Self {
        let mut s = Self::new(nbits);
        for i in ones {
            s.insert(i);
        }
        s
    }

    /// Reconstruct from raw words. Trailing bits beyond `nbits` must be
    /// zero; panics otherwise.
    pub fn from_words(nbits: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(nbits), "word count mismatch");
        let s = BitSet { nbits, words };
        assert!(s.trailing_clear(), "nonzero bits beyond universe");
        s
    }

    /// Universe size in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True when the universe itself is empty (`len() == 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Raw word storage.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw word storage — crate-internal so callers cannot
    /// violate the trailing-bits-clear invariant (the WAH
    /// mixed-representation kernels write whole groups directly).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Heap bytes used by the word storage (for memory accounting).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn tail_mask(&self) -> u64 {
        let r = self.nbits % WORD_BITS;
        if r == 0 {
            u64::MAX
        } else {
            (1u64 << r) - 1
        }
    }

    fn trailing_clear(&self) -> bool {
        match self.words.last() {
            Some(&w) => w & !self.tail_mask() == 0,
            None => true,
        }
    }

    /// Set the bit at `i`. Returns whether it was previously clear.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Clear the bit at `i`. Returns whether it was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Test the bit at `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Set every bit in the universe.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        if let Some(last) = self.words.last_mut() {
            *last &= {
                let r = self.nbits % WORD_BITS;
                if r == 0 {
                    u64::MAX
                } else {
                    (1u64 << r) - 1
                }
            };
        }
    }

    /// Clear every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set — the paper's maximality test
    /// (`BitOneExists(..) = FALSE`).
    #[inline]
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when at least one bit is set (`BitOneExists`).
    #[inline]
    pub fn any(&self) -> bool {
        !self.none()
    }

    /// Position of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Position of the highest set bit, if any.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Position of the lowest set bit at index `>= from`, if any.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.nbits {
            return None;
        }
        let (mut wi, b) = (from / WORD_BITS, from % WORD_BITS);
        let mut w = self.words[wi] & (u64::MAX << b);
        loop {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi == self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }

    /// Iterate over set-bit positions in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            wi: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect set positions into a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    #[inline]
    fn check_len(&self, other: &Self) {
        assert_eq!(
            self.nbits, other.nbits,
            "universe mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }

    /// In-place intersection: `self &= other`.
    #[inline]
    pub fn and_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union: `self |= other`.
    #[inline]
    pub fn or_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place symmetric difference: `self ^= other`.
    #[inline]
    pub fn xor_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// In-place difference: `self &= !other`.
    #[inline]
    pub fn and_not_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// In-place complement within the universe.
    pub fn not_assign(&mut self) {
        let mask = self.tail_mask();
        let last = self.words.len().wrapping_sub(1);
        for (i, w) in self.words.iter_mut().enumerate() {
            *w = !*w;
            if i == last {
                *w &= mask;
            }
        }
    }

    /// `self & other` into a freshly allocated set.
    pub fn and(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// `self | other` into a freshly allocated set.
    pub fn or(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// `self & !other` into a freshly allocated set.
    pub fn and_not(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_not_assign(other);
        out
    }

    /// Write `a & b` into `out` without allocating. All three must share
    /// a universe.
    pub fn and_into(a: &Self, b: &Self, out: &mut Self) {
        a.check_len(b);
        a.check_len(out);
        for ((o, x), y) in out.words.iter_mut().zip(&a.words).zip(&b.words) {
            *o = *x & *y;
        }
    }

    /// Does `self & other` contain any set bit? Early-exits on the first
    /// nonzero word; this is the hot inner test of the Clique Enumerator.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Population count of `self & other` without materializing it.
    #[inline]
    pub fn count_and(&self, other: &Self) -> usize {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_len(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Is `self` disjoint from `other`?
    pub fn is_disjoint(&self, other: &Self) -> bool {
        !self.intersects(other)
    }

    /// Lowest set bit of `self & other` at index `>= from`, if any.
    /// Avoids materializing the intersection when only the next common
    /// element is needed.
    pub fn next_common(&self, other: &Self, from: usize) -> Option<usize> {
        self.check_len(other);
        if from >= self.nbits {
            return None;
        }
        let (mut wi, b) = (from / WORD_BITS, from % WORD_BITS);
        let mut w = (self.words[wi] & other.words[wi]) & (u64::MAX << b);
        loop {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi == self.words.len() {
                return None;
            }
            w = self.words[wi] & other.words[wi];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the largest element plus one.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let nbits = items.iter().max().map_or(0, |m| m + 1);
        BitSet::from_ones(nbits, items)
    }
}

/// Iterator over set-bit positions of a [`BitSet`], ascending.
pub struct Ones<'a> {
    words: &'a [u64],
    wi: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.current = self.words[self.wi];
        }
        let b = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.wi * WORD_BITS + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(!s.contains(5));
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
    }

    #[test]
    fn boundary_bits() {
        for n in [1usize, 63, 64, 65, 127, 128, 129] {
            let mut s = BitSet::new(n);
            s.insert(0);
            s.insert(n - 1);
            assert!(s.contains(0));
            assert!(s.contains(n - 1));
            assert_eq!(s.count_ones(), if n == 1 { 1 } else { 2 });
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut s = BitSet::new(64);
        s.insert(64);
    }

    #[test]
    fn set_all_respects_universe() {
        let mut s = BitSet::new(70);
        s.set_all();
        assert_eq!(s.count_ones(), 70);
        s.not_assign();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn not_assign_complements() {
        let mut s = BitSet::from_ones(10, [0, 3, 9]);
        s.not_assign();
        assert_eq!(s.to_vec(), vec![1, 2, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn and_or_xor() {
        let a = BitSet::from_ones(130, [0, 1, 64, 100, 129]);
        let b = BitSet::from_ones(130, [1, 64, 65, 129]);
        assert_eq!(a.and(&b).to_vec(), vec![1, 64, 129]);
        assert_eq!(a.or(&b).to_vec(), vec![0, 1, 64, 65, 100, 129]);
        let mut x = a.clone();
        x.xor_assign(&b);
        assert_eq!(x.to_vec(), vec![0, 65, 100]);
        assert_eq!(a.and_not(&b).to_vec(), vec![0, 100]);
    }

    #[test]
    fn intersects_and_count_and() {
        let a = BitSet::from_ones(200, [0, 150]);
        let b = BitSet::from_ones(200, [150, 199]);
        let c = BitSet::from_ones(200, [1, 2]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.count_and(&b), 1);
        assert_eq!(a.count_and(&c), 0);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_ones(64, [1, 2]);
        let b = BitSet::from_ones(64, [1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        let c = BitSet::from_ones(64, [4]);
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn first_last_next_one() {
        let s = BitSet::from_ones(300, [5, 70, 299]);
        assert_eq!(s.first_one(), Some(5));
        assert_eq!(s.last_one(), Some(299));
        assert_eq!(s.next_one(0), Some(5));
        assert_eq!(s.next_one(5), Some(5));
        assert_eq!(s.next_one(6), Some(70));
        assert_eq!(s.next_one(71), Some(299));
        assert_eq!(s.next_one(300), None);
        assert_eq!(BitSet::new(10).first_one(), None);
        assert_eq!(BitSet::new(10).last_one(), None);
    }

    #[test]
    fn next_common_matches_and() {
        let a = BitSet::from_ones(150, [3, 64, 100, 149]);
        let b = BitSet::from_ones(150, [64, 100, 110]);
        assert_eq!(a.next_common(&b, 0), Some(64));
        assert_eq!(a.next_common(&b, 65), Some(100));
        assert_eq!(a.next_common(&b, 101), None);
    }

    #[test]
    fn iter_ones_order() {
        let v = vec![0, 63, 64, 65, 128, 191];
        let s = BitSet::from_ones(192, v.clone());
        assert_eq!(s.to_vec(), v);
    }

    #[test]
    fn and_into_no_alloc() {
        let a = BitSet::from_ones(100, [1, 50, 99]);
        let b = BitSet::from_ones(100, [50, 99]);
        let mut out = BitSet::new(100);
        BitSet::and_into(&a, &b, &mut out);
        assert_eq!(out.to_vec(), vec![50, 99]);
    }

    #[test]
    fn from_words_roundtrip() {
        let s = BitSet::from_ones(100, [0, 64, 99]);
        let t = BitSet::from_words(100, s.words().to_vec());
        assert_eq!(s, t);
    }

    #[test]
    #[should_panic]
    fn from_words_rejects_trailing_garbage() {
        BitSet::from_words(10, vec![u64::MAX]);
    }

    #[test]
    fn from_iter_sizes_universe() {
        let s: BitSet = [3usize, 7, 2].into_iter().collect();
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_vec(), vec![2, 3, 7]);
    }

    #[test]
    fn empty_universe() {
        let s = BitSet::new(0);
        assert!(s.none());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    fn figure2_worked_example() {
        // Paper Figure 2: K4 on {a,b,c,d}. Bit i of a vertex's row is its
        // adjacency to vertex i. CN(a,b) = N(a) & N(b) etc.; the 4-clique
        // has empty common neighborhood (maximal), the 3-cliques do not.
        let n = 4;
        let nb = |v: usize| {
            let mut s = BitSet::full(n);
            s.remove(v);
            s
        };
        let cn_ab = nb(0).and(&nb(1));
        assert_eq!(cn_ab.to_vec(), vec![2, 3]); // "0011" over {c,d}
        let cn_abc = cn_ab.and(&nb(2));
        assert_eq!(cn_abc.to_vec(), vec![3]); // non-maximal
        assert!(cn_abc.any());
        let cn_abcd = cn_abc.and(&nb(3));
        assert!(cn_abcd.none()); // maximal
    }
}
