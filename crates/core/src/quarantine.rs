//! Quarantine sidecar: poison sub-lists that are skipped, not lost.
//!
//! When a worker repeatedly dies (panic or missed heartbeat deadline)
//! on the same sub-list, the supervised parallel enumerator isolates
//! the offender and appends it — prefix, tails, level, and the failure
//! reason — to a `quarantine.jsonl` sidecar next to the checkpoints,
//! then continues the level without it (*degraded-exact* mode: every
//! emitted clique is still a real maximal clique; only descendants of
//! quarantined prefixes may be missing, and exactly which ones is on
//! record). `gsb report` surfaces the quarantine count, and
//! [`QuarantineEntry::to_sublist`] rebuilds the exact pending work unit
//! so a later run can re-enumerate just the quarantined prefixes.

use crate::sublist::SubList;
use crate::Vertex;
use gsb_bitset::NeighborSet;
use gsb_graph::BitGraph;
use gsb_telemetry::json::{self, JsonValue};
use std::io::Write;
use std::path::Path;

/// One quarantined sub-list: enough to skip it now and re-enumerate it
/// later.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Level (prefix length + 1 = clique size) the sub-list belonged to.
    pub k: u64,
    /// The shared (k−1)-prefix of the poisoned sub-list.
    pub prefix: Vec<Vertex>,
    /// The tail vertices pending under that prefix.
    pub tails: Vec<Vertex>,
    /// Why it was quarantined (panic message or deadline report).
    pub reason: String,
}

impl QuarantineEntry {
    fn to_json(&self) -> String {
        let mut w = json::ObjectWriter::new();
        w.u64_field("k", self.k);
        w.u64_slice_field(
            "prefix",
            &self
                .prefix
                .iter()
                .map(|&v| u64::from(v))
                .collect::<Vec<_>>(),
        );
        w.u64_slice_field(
            "tails",
            &self.tails.iter().map(|&v| u64::from(v)).collect::<Vec<_>>(),
        );
        w.str_field("reason", &self.reason);
        w.finish()
    }

    fn from_value(v: &JsonValue) -> Option<Self> {
        let vertices = |key: &str| -> Vec<Vertex> {
            v.u64_array(key).into_iter().map(|x| x as Vertex).collect()
        };
        Some(QuarantineEntry {
            k: v.u64_or_zero("k"),
            prefix: vertices("prefix"),
            tails: vertices("tails"),
            reason: v.get("reason")?.as_str()?.to_string(),
        })
    }

    /// Rebuild the pending work unit: the prefix's common-neighbor set
    /// is recomputed from the graph (it is derived state, deliberately
    /// not serialized), the tails are restored verbatim.
    pub fn to_sublist<S: NeighborSet>(&self, g: &BitGraph) -> SubList<S> {
        let members: Vec<usize> = self.prefix.iter().map(|&v| v as usize).collect();
        SubList {
            prefix: self.prefix.clone(),
            cn: S::from_bitset(&g.common_neighbors(&members)),
            tails: self.tails.clone(),
        }
    }
}

/// Append entries to the quarantine sidecar (JSON lines, one entry per
/// line; the file is created on first use).
pub fn append_entries(path: &Path, entries: &[QuarantineEntry]) -> std::io::Result<()> {
    if entries.is_empty() {
        return Ok(());
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = String::new();
    for e in entries {
        buf.push_str(&e.to_json());
        buf.push('\n');
    }
    file.write_all(buf.as_bytes())?;
    file.sync_all()
}

/// Load every entry from a quarantine sidecar. A missing file is an
/// empty quarantine; unparseable lines (e.g. a torn final line from a
/// crash mid-append) are skipped rather than fatal.
pub fn load_entries(path: &Path) -> std::io::Result<Vec<QuarantineEntry>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| json::parse(l).ok())
        .filter_map(|v| QuarantineEntry::from_value(&v))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_bitset::BitSet;
    use gsb_graph::generators::{planted, Module};

    fn entry(k: u64) -> QuarantineEntry {
        QuarantineEntry {
            k,
            prefix: vec![1, 4],
            tails: vec![7, 9, 12],
            reason: "no heartbeat for 2s".to_string(),
        }
    }

    #[test]
    fn sidecar_round_trips_and_appends() {
        let dir = std::env::temp_dir().join(format!("gsb-quarantine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_entries(&path).unwrap(), vec![], "missing file = empty");
        append_entries(&path, &[entry(3)]).unwrap();
        append_entries(&path, &[entry(4), entry(5)]).unwrap();
        let got = load_entries(&path).unwrap();
        assert_eq!(got, vec![entry(3), entry(4), entry(5)]);
        // A torn final line (crash mid-append) is skipped, not fatal.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"k\": 9, \"pref");
        std::fs::write(&path, text).unwrap();
        assert_eq!(load_entries(&path).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn to_sublist_recomputes_the_common_neighborhood() {
        let g = planted(16, 0.2, &[Module::clique(6)], 5);
        // Find a real edge to use as a prefix.
        let (a, b) = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .find(|&(a, b)| a < b && g.has_edge(a, b))
            .expect("graph has an edge");
        let e = QuarantineEntry {
            k: 2,
            prefix: vec![a as Vertex, b as Vertex],
            tails: vec![b as Vertex],
            reason: "test".into(),
        };
        let sl: SubList<BitSet> = e.to_sublist(&g);
        assert_eq!(sl.cn.to_bitset(), g.common_neighbors(&[a, b]));
        assert_eq!(sl.tails, vec![b as Vertex]);
    }
}
