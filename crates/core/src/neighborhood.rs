//! Affected-neighborhood subproblems for dynamic clique maintenance.
//!
//! Das et al. (*Shared-Memory Parallel Maximal Clique Enumeration from
//! Static and Dynamic Graphs*) observe that after an edge edit the
//! maximal-clique set changes only inside the edited edge's
//! neighborhood: adding `{u, v}` creates exactly the cliques
//! `{u, v} ∪ M` for each maximal clique `M` of the subgraph induced by
//! `N(u) ∩ N(v)`. This module builds that induced subproblem and runs
//! the same generic [`CliqueEnumerator`] kernel on it, mapping vertex
//! ids back to the host graph — the delta path reuses the exact code
//! paths (and ordering contract) of a full enumeration, just on a
//! graph that is usually a few dozen vertices instead of genome-scale.

use crate::enumerator::{CliqueEnumerator, EnumConfig};
use crate::sink::CollectSink;
use crate::{Clique, Vertex};
use gsb_bitset::BitSet;
use gsb_graph::BitGraph;

/// All maximal cliques (of every size, including isolated-vertex
/// singletons) of the subgraph of `g` induced by `keep`, expressed in
/// `g`'s vertex ids and each sorted ascending. Emission order is the
/// kernel's canonical (size, then lexicographic) order.
pub fn maximal_cliques_induced(g: &BitGraph, keep: &BitSet) -> Vec<Clique> {
    let (sub, map) = g.induced(keep);
    if sub.n() == 0 {
        return Vec::new();
    }
    let config = EnumConfig {
        min_k: 1,
        max_k: None,
        record_costs: false,
    };
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(config).enumerate(&sub, &mut sink);
    // `induced` assigns new labels in ascending old-id order, so the
    // mapped lists stay sorted without a re-sort.
    for c in &mut sink.cliques {
        for v in c.iter_mut() {
            *v = map[*v as usize] as Vertex;
        }
    }
    sink.cliques
}

/// The maximal cliques created by adding edge `{u, v}` to `g`, where
/// `g` already contains the edge: `{u, v} ∪ M` for each maximal `M` of
/// the common neighborhood, or `{u, v}` alone when that neighborhood is
/// empty. Every returned clique is sorted ascending.
pub fn cliques_created_by_edge(g: &BitGraph, u: usize, v: usize) -> Vec<Clique> {
    debug_assert!(g.has_edge(u, v));
    let cn = g.common_neighbors(&[u, v]);
    if cn.none() {
        return vec![sorted_pair(u, v)];
    }
    let mut out = maximal_cliques_induced(g, &cn);
    for m in &mut out {
        m.push(u as Vertex);
        m.push(v as Vertex);
        m.sort_unstable();
    }
    out
}

fn sorted_pair(u: usize, v: usize) -> Clique {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    vec![a as Vertex, b as Vertex]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_maximal(g: &BitGraph) -> Vec<Clique> {
        // brute force over all subsets (test graphs are tiny)
        let n = g.n();
        let mut out = Vec::new();
        for mask in 1u32..(1 << n) {
            let vs: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
            if g.is_clique(&vs) && g.is_maximal_clique(&vs) {
                out.push(vs.iter().map(|&v| v as Vertex).collect());
            }
        }
        out.sort_by(|a: &Clique, b: &Clique| a.len().cmp(&b.len()).then(a.cmp(b)));
        out
    }

    #[test]
    fn induced_matches_naive() {
        let g = BitGraph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
            ],
        );
        let mut keep = BitSet::new(8);
        for v in [0, 1, 2, 3, 4, 5] {
            keep.insert(v);
        }
        let got = maximal_cliques_induced(&g, &keep);
        let (sub, map) = g.induced(&keep);
        let want: Vec<Clique> = naive_maximal(&sub)
            .into_iter()
            .map(|c| c.iter().map(|&v| map[v as usize] as Vertex).collect())
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_by(|a, b| a.len().cmp(&b.len()).then(a.cmp(b)));
        assert_eq!(got_sorted, want);
        // isolated vertices of the induced subgraph appear as singletons
        let mut keep = BitSet::new(8);
        keep.insert(7);
        assert_eq!(maximal_cliques_induced(&g, &keep), vec![vec![7]]);
    }

    #[test]
    fn edge_addition_cliques() {
        // triangle 0-1-2 plus pendant 3 on vertex 2
        let mut g = BitGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
        // adding {1, 3}: common neighborhood {2} → new clique {1, 2, 3}
        g.add_edge(1, 3);
        assert_eq!(cliques_created_by_edge(&g, 1, 3), vec![vec![1, 2, 3]]);
        // adding an edge between two isolated-from-each-other vertices
        let mut h = BitGraph::new(3);
        h.add_edge(0, 2);
        assert_eq!(cliques_created_by_edge(&h, 2, 0), vec![vec![0, 2]]);
    }
}
