//! Vertex-ordering strategies for enumeration.
//!
//! The Clique Enumerator's canonical generation follows vertex index
//! order, so relabeling changes the *shape* of the level structure —
//! how many sub-lists exist, how long their tail lists are, and how
//! balanced the expansion costs come out — without changing the answer.
//! Degeneracy order (smallest-last) is the classic choice: it keeps
//! tail lists short for the hub vertices that dominate correlation
//! graphs. The `ablation_order` bench measures the effect; the tests
//! pin the invariance.

use crate::enumerator::{CliqueEnumerator, EnumConfig, EnumStats};
use crate::sink::{CliqueSink, FnSink};
use crate::Vertex;
use gsb_graph::reduce::degeneracy_order;
use gsb_graph::BitGraph;
use rand_shim::shuffle_with_seed;

/// How vertices are (re)ordered before enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Use the graph's native labels.
    Natural,
    /// Reverse degeneracy (smallest-last) order: hubs get the highest
    /// indices, so they appear as tails, not prefixes.
    Degeneracy,
    /// Descending degree: hubs first.
    DegreeDescending,
    /// A seeded random permutation (baseline for the ablation).
    Random(u64),
}

/// Compute the permutation `perm[new] = old` for an ordering.
pub fn permutation(g: &BitGraph, ordering: Ordering) -> Vec<usize> {
    let n = g.n();
    match ordering {
        Ordering::Natural => (0..n).collect(),
        Ordering::Degeneracy => {
            // degeneracy_order removes minimum-degree vertices first;
            // keep that removal order as the new index order so dense
            // cores land at high indices.
            let (order, _) = degeneracy_order(g);
            order
        }
        Ordering::DegreeDescending => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
            order
        }
        Ordering::Random(seed) => {
            let mut order: Vec<usize> = (0..n).collect();
            shuffle_with_seed(&mut order, seed);
            order
        }
    }
}

/// Enumerate maximal cliques under a vertex ordering: relabel, run, and
/// map every reported clique back to original labels (re-sorted
/// ascending). The clique *set* is identical for every ordering; the
/// level structure and run time are not.
pub fn enumerate_ordered(
    g: &BitGraph,
    ordering: Ordering,
    config: EnumConfig,
    sink: &mut impl CliqueSink,
) -> EnumStats {
    let perm = permutation(g, ordering);
    let relabeled = g.relabeled(&perm);
    let enumerator = CliqueEnumerator::new(config);
    let mut mapped = FnSink(|clique: &[Vertex]| {
        let mut original: Vec<Vertex> =
            clique.iter().map(|&v| perm[v as usize] as Vertex).collect();
        original.sort_unstable();
        sink.maximal(&original);
    });
    enumerator.enumerate(&relabeled, &mut mapped)
}

/// Minimal xorshift-based in-place shuffle so orderings stay
/// dependency-free in this crate (rand is a dev-dependency only).
mod rand_shim {
    pub fn shuffle_with_seed<T>(items: &mut [T], seed: u64) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..items.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use gsb_graph::generators::{planted, Module};

    fn run(g: &BitGraph, ordering: Ordering) -> Vec<Vec<Vertex>> {
        let mut sink = CollectSink::default();
        enumerate_ordered(g, ordering, EnumConfig::default(), &mut sink);
        let mut v = sink.cliques;
        v.sort();
        v
    }

    #[test]
    fn all_orderings_agree() {
        let g = planted(40, 0.08, &[Module::clique(8), Module::clique(6)], 13);
        let natural = run(&g, Ordering::Natural);
        assert!(!natural.is_empty());
        for ordering in [
            Ordering::Degeneracy,
            Ordering::DegreeDescending,
            Ordering::Random(1),
            Ordering::Random(999),
        ] {
            assert_eq!(run(&g, ordering), natural, "{ordering:?}");
        }
    }

    #[test]
    fn natural_matches_plain_enumerator() {
        let g = planted(30, 0.1, &[Module::clique(7)], 5);
        let mut plain = CollectSink::default();
        CliqueEnumerator::default().enumerate(&g, &mut plain);
        let mut plain_sorted = plain.cliques;
        plain_sorted.sort();
        assert_eq!(run(&g, Ordering::Natural), plain_sorted);
    }

    #[test]
    fn permutations_are_permutations() {
        let g = planted(25, 0.15, &[Module::clique(6)], 2);
        for ordering in [
            Ordering::Natural,
            Ordering::Degeneracy,
            Ordering::DegreeDescending,
            Ordering::Random(7),
        ] {
            let p = permutation(&g, ordering);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..g.n()).collect::<Vec<_>>(), "{ordering:?}");
        }
    }

    #[test]
    fn ordering_preserves_size_order_contract() {
        let g = planted(35, 0.08, &[Module::clique(8), Module::clique(5)], 8);
        let mut sink = CollectSink::default();
        enumerate_ordered(&g, Ordering::Degeneracy, EnumConfig::default(), &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let mut g = BitGraph::new(5);
        g.add_edge(0, 4);
        g.add_edge(1, 4);
        g.add_edge(2, 4);
        let p = permutation(&g, Ordering::DegreeDescending);
        assert_eq!(p[0], 4);
    }
}
