//! The Clique Enumerator (§2.3), generic over bitmap representation
//! and level storage.
//!
//! Levelwise maximal-clique enumeration in non-decreasing size order:
//! take the candidate k-clique sub-lists, expand each into (k+1)-clique
//! sub-lists, decide maximality of every generated (k+1)-clique with one
//! bitwise AND plus an any-bit test, keep only candidates, repeat until
//! nothing is generated.
//!
//! One expansion kernel (`expand_sublist`) serves every
//! configuration: the common-neighbor bitmaps are any
//! [`NeighborSet`] (dense, WAH-compressed, or adaptive hybrid) and the
//! level lives in any [`LevelBackend`] (resident vector or budgeted
//! spill store). `CliqueEnumerator` with no type arguments is the
//! dense, in-memory enumerator it always was.
//!
//! ## Why every maximal clique is found exactly once
//!
//! Order vertices by index. Any clique `{v_1 < … < v_m}` has one
//! *canonical generation path*: it is produced from the sub-list whose
//! prefix is `{v_1, …, v_{m-2}}` by pairing tails `v_{m-1}` and `v_m`.
//! Induction over m shows the path survives the two pruning rules:
//!
//! * *candidates only* — each proper prefix `P_j = {v_1..v_j}` of a
//!   maximal clique `M` is non-maximal (the next vertex of `M` is a
//!   common neighbor), so the generation test `CN(P_j) ≠ ∅` holds and
//!   `P_j` is kept as a tail;
//! * *sub-lists of size > 1 only* — the sub-list holding `P_j` also
//!   holds `{v_1..v_{j-1}, v_{j+1}}` (also a clique, also non-maximal,
//!   tail index above `v_{j-1}`), so it has at least two members.
//!
//! Conversely a clique generated as maximal has an empty common-neighbor
//! bitmap, which *is* maximality; and the canonical path is unique, so
//! there are no duplicates. These properties are cross-checked against
//! Bron–Kerbosch — for all three representations — in the test suites.

use crate::backend::{InMemoryLevel, LevelBackend, SpilledLevel};
use crate::memory::LevelMemory;
use crate::sink::CliqueSink;
use crate::store::{SpillConfig, StoreError};
use crate::sublist::{Level, SubList};
use crate::{kclique, Vertex};
use gsb_bitset::{BitSet, NeighborSet};
use gsb_graph::BitGraph;
use std::marker::PhantomData;
use std::time::Instant;

/// Configuration for an enumeration run.
#[derive(Clone, Copy, Debug)]
pub struct EnumConfig {
    /// Smallest maximal-clique size to report (the paper's `Init_K`).
    /// With `min_k > 3` the run is seeded by the k-clique enumerator.
    pub min_k: usize,
    /// Largest clique size to explore; `None` runs to the maximum
    /// clique. Maximal cliques larger than `max_k` are not reported.
    pub max_k: Option<usize>,
    /// Record per-sub-list expansion costs in deterministic work units
    /// (feeds the virtual-processor scaling simulation).
    pub record_costs: bool,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            min_k: 3,
            max_k: None,
            record_costs: false,
        }
    }
}

/// Per-level run report.
#[derive(Clone, Debug)]
pub struct LevelReport {
    /// Clique size of the candidates expanded at this level.
    pub k: usize,
    /// Number of sub-lists expanded (`N[k]`).
    pub sublists: usize,
    /// Number of candidate cliques expanded (`M[k]`).
    pub candidates: usize,
    /// Maximal (k+1)-cliques emitted while expanding this level.
    pub maximal_found: usize,
    /// Wall time of the level (ns).
    pub ns: u64,
    /// Memory accounting for this level's candidates. For a spilling
    /// backend the heap figure is what the level *would* hold fully
    /// resident; the formula bytes are representation-independent.
    pub memory: LevelMemory,
    /// Bitmap AND operations performed (one per prefix extension, one
    /// per surviving pair's maximality probe, one per kept sub-list's
    /// common-neighbor clone).
    pub and_ops: u64,
    /// Any-bit (`BitOneExists`) maximality tests performed — one per
    /// adjacent tail pair, each deciding candidate vs. maximal.
    pub maximality_tests: u64,
    /// Sub-lists of this level that lived on disk rather than in memory
    /// (0 for the in-memory backend).
    pub spilled: usize,
    /// Bytes streamed back from spill files to expand this level.
    pub bytes_read: u64,
}

/// Full run statistics.
#[derive(Clone, Debug, Default)]
pub struct EnumStats {
    /// One report per expanded level, in order.
    pub levels: Vec<LevelReport>,
    /// Total maximal cliques reported (all sizes, including the seeds).
    pub total_maximal: usize,
    /// Wall time of the whole run (ns).
    pub wall_ns: u64,
    /// When configured: per-level, per-sub-list expansion costs in
    /// deterministic work units (word operations + pair iterations).
    /// Convert to nanoseconds with [`EnumStats::ns_per_unit`].
    pub costs: Option<Vec<Vec<u64>>>,
}

impl EnumStats {
    /// Measured nanoseconds per recorded work unit (wall time of the
    /// levels divided by total units), for converting the deterministic
    /// per-sub-list costs into time.
    pub fn ns_per_unit(&self) -> f64 {
        let total_units: u64 = self.costs.iter().flatten().flat_map(|l| l.iter()).sum();
        if total_units == 0 {
            return 0.0;
        }
        let level_ns: u64 = self.levels.iter().map(|l| l.ns).sum();
        level_ns as f64 / total_units as f64
    }

    /// Per-level, per-sub-list costs in nanoseconds (units × ns/unit).
    pub fn costs_ns(&self) -> Option<Vec<Vec<u64>>> {
        let scale = self.ns_per_unit();
        self.costs.as_ref().map(|levels| {
            levels
                .iter()
                .map(|l| l.iter().map(|&u| (u as f64 * scale) as u64).collect())
                .collect()
        })
    }

    /// Peak of the paper's memory formula across adjacent level pairs.
    pub fn peak_formula_bytes(&self) -> usize {
        let singles = self.levels.iter().map(|l| l.memory.formula_bytes);
        let pairs = self
            .levels
            .windows(2)
            .map(|w| w[0].memory.with_next(&w[1].memory));
        singles.chain(pairs).max().unwrap_or(0)
    }

    /// Total bytes streamed back from spill files across all levels
    /// (0 for a purely in-memory run).
    pub fn total_bytes_read(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes_read).sum()
    }
}

/// The Clique Enumerator, generic over the common-neighbor bitmap
/// representation `S` and the level storage backend `B`. The default
/// parameters are the dense in-memory enumerator:
///
/// ```
/// use gsb_core::{CliqueEnumerator, EnumConfig, CollectSink};
/// use gsb_graph::BitGraph;
/// // K4 plus a pendant triangle
/// let g = BitGraph::from_edges(5, [
///     (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (2, 4),
/// ]);
/// let mut sink = CollectSink::default();
/// CliqueEnumerator::new(EnumConfig { min_k: 3, ..Default::default() })
///     .enumerate(&g, &mut sink);
/// // non-decreasing size order: the triangle before the K4
/// assert_eq!(sink.cliques, vec![vec![2, 3, 4], vec![0, 1, 2, 3]]);
/// ```
///
/// Other combinations are constructed with
/// [`with_backend`](Self::with_backend), e.g. a WAH-compressed
/// out-of-core run:
///
/// ```
/// use gsb_core::{CliqueEnumerator, EnumConfig, CollectSink, SpillConfig};
/// use gsb_core::backend::SpilledLevel;
/// use gsb_bitset::WahBitSet;
/// use gsb_graph::BitGraph;
/// let g = BitGraph::complete(5);
/// let mut sink = CollectSink::default();
/// let stats = CliqueEnumerator::<WahBitSet, SpilledLevel<WahBitSet>>::with_backend(
///     EnumConfig::default(),
///     SpillConfig::in_temp(0),
/// )
/// .try_enumerate(&g, &mut sink)
/// .unwrap();
/// assert_eq!(stats.total_maximal, 1);
/// ```
pub struct CliqueEnumerator<S: NeighborSet = BitSet, B: LevelBackend<S> = InMemoryLevel<S>> {
    /// Run configuration.
    pub config: EnumConfig,
    /// Backend configuration (`()` in memory, [`SpillConfig`] when
    /// spilling).
    pub backend: B::Config,
    _repr: PhantomData<fn() -> S>,
}

impl<S: NeighborSet, B: LevelBackend<S>> Clone for CliqueEnumerator<S, B> {
    fn clone(&self) -> Self {
        CliqueEnumerator {
            config: self.config,
            backend: self.backend.clone(),
            _repr: PhantomData,
        }
    }
}

impl<S: NeighborSet, B: LevelBackend<S>> std::fmt::Debug for CliqueEnumerator<S, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CliqueEnumerator")
            .field("config", &self.config)
            .field("backend", &self.backend)
            .field("repr", &S::KIND_NAME)
            .finish()
    }
}

impl Default for CliqueEnumerator {
    fn default() -> Self {
        CliqueEnumerator::new(EnumConfig::default())
    }
}

impl CliqueEnumerator {
    /// Dense in-memory enumerator with the given configuration.
    pub fn new(config: EnumConfig) -> Self {
        CliqueEnumerator {
            config,
            backend: (),
            _repr: PhantomData,
        }
    }

    /// Enumerate like [`enumerate`](Self::enumerate), but hold each
    /// level in a budgeted spill store: sub-lists beyond
    /// `spill.budget_bytes` of the paper's formula bytes go to disk and
    /// are streamed back for the next level. Output (as a set, and in
    /// non-decreasing size order) is identical to the in-core run.
    pub fn enumerate_spilled(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
        spill: &SpillConfig,
    ) -> Result<EnumStats, StoreError> {
        CliqueEnumerator::<BitSet, SpilledLevel<BitSet>>::with_backend(self.config, spill.clone())
            .try_enumerate(g, sink)
    }

    /// Continue an enumeration out of core from an already-built level
    /// (a checkpoint, or the resident level of an in-core run that hit
    /// its memory budget). Emits cliques of size `> level.k` only; the
    /// caller is responsible for everything emitted before the handoff.
    pub fn enumerate_spilled_from_level(
        &self,
        g: &BitGraph,
        level: Level,
        sink: &mut impl CliqueSink,
        spill: &SpillConfig,
    ) -> Result<EnumStats, StoreError> {
        CliqueEnumerator::<BitSet, SpilledLevel<BitSet>>::with_backend(self.config, spill.clone())
            .try_enumerate_from_level(g, level, sink)
    }
}

impl<S: NeighborSet, B: LevelBackend<S>> CliqueEnumerator<S, B> {
    /// Enumerator over an explicit representation/backend pair.
    pub fn with_backend(config: EnumConfig, backend: B::Config) -> Self {
        CliqueEnumerator {
            config,
            backend,
            _repr: PhantomData,
        }
    }

    /// Enumerate maximal cliques of `g` into `sink`, in non-decreasing
    /// size order. Errors can only arise from a spilling backend's I/O.
    pub fn try_enumerate(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
    ) -> Result<EnumStats, StoreError> {
        let start = Instant::now();
        let mut stats = EnumStats {
            costs: self.config.record_costs.then(Vec::new),
            ..Default::default()
        };
        let level = self.init_level(g, sink, &mut stats);
        self.run_from_level(g, level, sink, &mut stats)?;
        stats.wall_ns = start.elapsed().as_nanos() as u64;
        Ok(stats)
    }

    /// Resume (or start) from an explicit level — e.g. one restored
    /// from a checkpoint, or produced by
    /// [`seed_level`](crate::kclique::seed_level) — and run to
    /// completion under this configuration's `max_k`.
    pub fn try_enumerate_from_level(
        &self,
        g: &BitGraph,
        level: Level<S>,
        sink: &mut impl CliqueSink,
    ) -> Result<EnumStats, StoreError> {
        let start = Instant::now();
        let mut stats = EnumStats {
            costs: self.config.record_costs.then(Vec::new),
            ..Default::default()
        };
        self.run_from_level(g, level, sink, &mut stats)?;
        stats.wall_ns = start.elapsed().as_nanos() as u64;
        Ok(stats)
    }

    /// Build the initial level: from the edge list for `min_k <= 3`
    /// ("takes as input a list of all edges (2-cliques) in non-repeating
    /// canonical order"), else seeded by the k-clique enumerator at
    /// `min_k`. Maximal cliques smaller than the first expandable level
    /// are reported here. Public so external drivers (tests, custom
    /// harnesses) can run the level loop by hand with
    /// [`step`](CliqueEnumerator::step).
    pub fn init_level(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
        stats: &mut EnumStats,
    ) -> Level<S> {
        let min_k = self.config.min_k.max(1);
        let within_max = |s: usize| self.config.max_k.is_none_or(|mx| s <= mx);
        if min_k > 3 {
            let (level, maximal) = kclique::seed_level(g, min_k);
            if within_max(min_k) {
                for c in &maximal {
                    sink.maximal(c);
                }
                stats.total_maximal += maximal.len();
            }
            return level;
        }
        let n = g.n();
        // Size-1 and size-2 maximal cliques are invisible to the level
        // loop (it generates sizes >= 3); report them here when asked.
        if min_k <= 1 && within_max(1) {
            for v in 0..n {
                if g.degree(v) == 0 {
                    sink.maximal(&[v as Vertex]);
                    stats.total_maximal += 1;
                }
            }
        }
        if min_k <= 2 && within_max(2) {
            for (u, v) in g.edges() {
                if !g.neighbors(u).intersects(g.neighbors(v)) {
                    sink.maximal(&[u as Vertex, v as Vertex]);
                    stats.total_maximal += 1;
                }
            }
        }
        let sublists = (0..n)
            .filter_map(|a| {
                let tails: Vec<Vertex> = g
                    .neighbors(a)
                    .iter_ones()
                    .filter(|&b| b > a)
                    .map(|b| b as Vertex)
                    .collect();
                // A single tail can pair with nothing; "only the first
                // (n-2) vertices are possible to generate 2-clique
                // sub-lists containing more than one clique".
                (tails.len() > 1).then(|| SubList {
                    prefix: vec![a as Vertex],
                    cn: S::from_bitset(g.neighbors(a)),
                    tails,
                })
            })
            .collect();
        Level { k: 2, sublists }
    }

    /// The level loop: move `start` into a fresh backend, then expand
    /// level into level until nothing is generated (or `max_k` is
    /// reached), draining each level through the single generic kernel.
    fn run_from_level(
        &self,
        g: &BitGraph,
        start: Level<S>,
        sink: &mut impl CliqueSink,
        stats: &mut EnumStats,
    ) -> Result<(), StoreError> {
        let n = g.n();
        let rows = neighbor_rows::<S>(g);
        let mut memory = LevelMemory::account(&start, n);
        let mut k = start.k;
        let mut cur = B::open(&self.backend, n);
        cur.reserve(start.sublists.len());
        for sl in start.sublists {
            cur.push(sl)?;
        }
        let mut buf = S::empty(n);
        loop {
            if cur.is_empty() {
                break;
            }
            if let Some(mx) = self.config.max_k {
                if k >= mx {
                    break;
                }
            }
            let level_start = Instant::now();
            let spilled = cur.spilled_len();
            let mut next = B::open(&self.backend, n);
            // The paper's own bound N[k+1] <= M[k] - 2N[k] sizes the
            // output exactly: no mid-level reallocation can then be
            // charged to whichever sub-list happened to trigger it.
            next.reserve(memory.n_cliques.saturating_sub(2 * memory.n_sublists));
            let mut next_mem = LevelMemory::default();
            let mut maximal_found = 0usize;
            let mut and_ops = 0u64;
            let mut maximality_tests = 0u64;
            let record = stats.costs.is_some();
            let mut level_costs = Vec::new();
            if record {
                level_costs.reserve(memory.n_sublists);
            }
            let mut push_error: Option<StoreError> = None;
            let drain = cur.drain(|sl| {
                if push_error.is_some() {
                    return;
                }
                let out = expand_sublist(g, &rows, &sl, &mut buf, sink, |child| {
                    if push_error.is_some() {
                        return;
                    }
                    next_mem.n_sublists += 1;
                    next_mem.n_cliques += child.len();
                    next_mem.formula_bytes += child.formula_bytes(n);
                    next_mem.heap_bytes += child.heap_bytes() + std::mem::size_of::<SubList<S>>();
                    if let Err(e) = next.push(child) {
                        push_error = Some(e);
                    }
                });
                maximal_found += out.maximal;
                and_ops += out.and_ops;
                maximality_tests += out.tests;
                if record {
                    level_costs.push(out.units);
                }
            })?;
            if let Some(e) = push_error {
                return Err(e);
            }
            next.shrink();
            if let Some(costs) = stats.costs.as_mut() {
                costs.push(level_costs);
            }
            stats.total_maximal += maximal_found;
            stats.levels.push(LevelReport {
                k,
                sublists: memory.n_sublists,
                candidates: memory.n_cliques,
                maximal_found,
                ns: level_start.elapsed().as_nanos() as u64,
                memory,
                and_ops,
                maximality_tests,
                spilled,
                bytes_read: drain.bytes_read,
            });
            memory = next_mem;
            k += 1;
            cur = next;
        }
        Ok(())
    }
}

impl<S: NeighborSet> CliqueEnumerator<S, InMemoryLevel<S>> {
    /// Enumerate maximal cliques of `g` into `sink`, in non-decreasing
    /// size order. Infallible: the in-memory backend performs no I/O.
    pub fn enumerate(&self, g: &BitGraph, sink: &mut impl CliqueSink) -> EnumStats {
        self.try_enumerate(g, sink)
            .expect("in-memory backend cannot fail")
    }

    /// Resume (or start) from an explicit level and run to completion.
    /// Infallible in-memory variant of
    /// [`try_enumerate_from_level`](Self::try_enumerate_from_level).
    pub fn enumerate_from_level(
        &self,
        g: &BitGraph,
        level: Level<S>,
        sink: &mut impl CliqueSink,
    ) -> EnumStats {
        self.try_enumerate_from_level(g, level, sink)
            .expect("in-memory backend cannot fail")
    }

    /// Expand one level into the next (the paper's `GenerateKCliques`
    /// over the whole `L_k`), reporting maximal (k+1)-cliques to the
    /// sink. This is the natural checkpoint granularity: persist the
    /// returned level with [`crate::store::write_level`] and resume
    /// with [`Self::enumerate_from_level`].
    pub fn step(
        &self,
        g: &BitGraph,
        level: &Level<S>,
        sink: &mut impl CliqueSink,
    ) -> (Level<S>, LevelReport) {
        self.step_with_rows(g, &neighbor_rows::<S>(g), level, sink)
    }

    /// [`step`](Self::step) with the per-vertex neighbor rows already
    /// converted to `S` — callers stepping many levels (the pipeline)
    /// build the rows once instead of once per level.
    pub(crate) fn step_with_rows(
        &self,
        g: &BitGraph,
        rows: &[S],
        level: &Level<S>,
        sink: &mut impl CliqueSink,
    ) -> (Level<S>, LevelReport) {
        let level_start = Instant::now();
        let memory = LevelMemory::account(level, g.n());
        let mut next = Level {
            k: level.k + 1,
            sublists: Vec::with_capacity(memory.n_cliques.saturating_sub(2 * memory.n_sublists)),
        };
        let mut buf = S::empty(g.n());
        let mut maximal_found = 0usize;
        let mut and_ops = 0u64;
        let mut maximality_tests = 0u64;
        for sl in &level.sublists {
            let out = expand_sublist(g, rows, sl, &mut buf, sink, |child| {
                next.sublists.push(child);
            });
            maximal_found += out.maximal;
            and_ops += out.and_ops;
            maximality_tests += out.tests;
        }
        next.sublists.shrink_to_fit();
        let report = LevelReport {
            k: level.k,
            sublists: memory.n_sublists,
            candidates: memory.n_cliques,
            maximal_found,
            ns: level_start.elapsed().as_nanos() as u64,
            memory,
            and_ops,
            maximality_tests,
            spilled: 0,
            bytes_read: 0,
        };
        (next, report)
    }
}

/// Per-vertex neighbor rows in representation `S`, built once per run:
/// the kernel ANDs candidate bitmaps against these instead of the
/// graph's dense rows, so compressed runs stay compressed end to end.
pub(crate) fn neighbor_rows<S: NeighborSet>(g: &BitGraph) -> Vec<S> {
    (0..g.n()).map(|v| S::from_bitset(g.neighbors(v))).collect()
}

/// What [`expand_sublist`] did: emissions plus the operation counts the
/// telemetry layer exports per level.
pub(crate) struct ExpandOut {
    /// Maximal (k+1)-cliques emitted.
    pub maximal: usize,
    /// Deterministic work units (u64-word operations plus pair
    /// iterations — the portable cost measure the scaling simulation
    /// replays). Counted against the dense word width for every
    /// representation, so costs are comparable across backends.
    pub units: u64,
    /// Bitmap AND operations (prefix extensions, maximality probes,
    /// kept common-neighbor clones).
    pub and_ops: u64,
    /// Any-bit maximality tests (one per adjacent tail pair).
    pub tests: u64,
}

/// Expand one k-clique sub-list into (k+1)-clique sub-lists — the
/// paper's `GenerateKCliques` inner loops (Fig. 3), and the *only*
/// expansion kernel in the crate: sequential, parallel, in-memory and
/// spilled runs all route through here. `rows` are the per-vertex
/// neighbor bitmaps in representation `S` (see [`neighbor_rows`]);
/// `buf` is a scratch bitmap reused across calls; every generated
/// sub-list is handed to `out`.
pub(crate) fn expand_sublist<S: NeighborSet>(
    g: &BitGraph,
    rows: &[S],
    sl: &SubList<S>,
    buf: &mut S,
    sink: &mut impl CliqueSink,
    mut out: impl FnMut(SubList<S>),
) -> ExpandOut {
    let mut maximal = 0usize;
    let tails = &sl.tails;
    if tails.len() < 2 {
        return ExpandOut {
            maximal: 0,
            units: 1,
            and_ops: 0,
            tests: 0,
        };
    }
    let words = gsb_bitset::words_for(g.n()) as u64;
    let mut units = 0u64;
    let mut and_ops = 0u64;
    let mut tests = 0u64;
    let mut clique: Vec<Vertex> = Vec::with_capacity(sl.prefix.len() + 2);
    for i in 0..tails.len() - 1 {
        let v = tails[i];
        // CN(prefix ∪ {v}) = CN(prefix) ∧ N(v)
        S::and_into(&sl.cn, &rows[v as usize], buf);
        units += words;
        and_ops += 1;
        let mut new_tails: Vec<Vertex> = Vec::new();
        for &u in &tails[i + 1..] {
            units += 1;
            if !g.has_edge(v as usize, u as usize) {
                continue;
            }
            // CN(prefix ∪ {v, u}) = CN(prefix ∪ {v}) ∧ N(u):
            // any bit set ⇒ candidate, none ⇒ maximal (BitOneExists).
            units += words;
            and_ops += 1;
            tests += 1;
            if buf.intersects(&rows[u as usize]) {
                new_tails.push(u);
            } else {
                clique.clear();
                clique.extend_from_slice(&sl.prefix);
                clique.push(v);
                clique.push(u);
                sink.maximal(&clique);
                maximal += 1;
            }
        }
        if new_tails.len() > 1 {
            let mut prefix = Vec::with_capacity(sl.prefix.len() + 1);
            prefix.extend_from_slice(&sl.prefix);
            prefix.push(v);
            units += words; // CN clone for the kept sub-list
            and_ops += 1;
            out(SubList {
                prefix,
                cn: buf.store_clone(),
                tails: new_tails,
            });
        }
    }
    ExpandOut {
        maximal,
        units: units.max(1),
        and_ops,
        tests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use crate::sink::CollectSink;
    use gsb_bitset::{HybridSet, WahBitSet};
    use gsb_graph::generators::{gnp, planted, Module};

    fn enumerate_sorted(g: &BitGraph, config: EnumConfig) -> Vec<Vec<Vertex>> {
        let mut sink = CollectSink::default();
        CliqueEnumerator::new(config).enumerate(g, &mut sink);
        let mut cliques = sink.cliques;
        cliques.sort();
        cliques
    }

    fn enumerate_sorted_as<S: NeighborSet>(g: &BitGraph, config: EnumConfig) -> Vec<Vec<Vertex>> {
        let mut sink = CollectSink::default();
        CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(config, ()).enumerate(g, &mut sink);
        let mut cliques = sink.cliques;
        cliques.sort();
        cliques
    }

    fn bk_at_least(g: &BitGraph, min_k: usize) -> Vec<Vec<Vertex>> {
        base_bk_sorted(g)
            .into_iter()
            .filter(|c| c.len() >= min_k)
            .collect()
    }

    #[test]
    fn figure4_worked_example() {
        // The paper's Fig. 4 graph: two maximal 3-cliques, one maximal
        // 4-clique, one maximal 5-clique. Reconstruction: K5 on
        // {0,1,2,3,4}; K4 {0,1,2,5} sharing a triangle; triangles
        // {0,5,6} and {1,5,6}... build instead a graph with exactly that
        // clique profile.
        let mut g = BitGraph::new(8);
        for u in 0..5usize {
            for v in u + 1..5 {
                g.add_edge(u, v);
            }
        }
        for &(u, v) in &[(5, 6), (5, 7), (6, 7), (4, 5), (4, 6), (4, 7)] {
            g.add_edge(u, v); // K4 on {4,5,6,7}
        }
        g.add_edge(0, 5);
        g.add_edge(1, 5); // triangles {0,1,5}? 0-1 edge exists → {0,1,5}
        g.add_edge(2, 6); // triangle {2,6,?}: 2-6, need shared... leave as edge
        let got = enumerate_sorted(
            &g,
            EnumConfig {
                min_k: 3,
                ..Default::default()
            },
        );
        let expect = bk_at_least(&g, 3);
        assert_eq!(got, expect);
        // sanity: the K5, the K4, and the clique bridging them are found
        assert!(got.contains(&vec![0, 1, 2, 3, 4]));
        assert!(got.contains(&vec![4, 5, 6, 7]));
        assert!(got.contains(&vec![0, 1, 4, 5]));
    }

    #[test]
    fn matches_bk_on_random_graphs() {
        for seed in 0..10 {
            let g = gnp(26, 0.4, seed);
            let got = enumerate_sorted(&g, EnumConfig::default());
            assert_eq!(got, bk_at_least(&g, 3), "seed {seed}");
        }
    }

    #[test]
    fn all_representations_agree_with_bk() {
        for seed in 0..5 {
            let g = gnp(24, 0.4, seed);
            let expect = bk_at_least(&g, 3);
            let config = EnumConfig::default();
            assert_eq!(
                enumerate_sorted_as::<BitSet>(&g, config),
                expect,
                "dense seed {seed}"
            );
            assert_eq!(
                enumerate_sorted_as::<WahBitSet>(&g, config),
                expect,
                "wah seed {seed}"
            );
            assert_eq!(
                enumerate_sorted_as::<HybridSet>(&g, config),
                expect,
                "hybrid seed {seed}"
            );
        }
    }

    #[test]
    fn matches_bk_on_dense_overlapping_cliques() {
        for seed in 0..5 {
            let g = planted(
                40,
                0.1,
                &[Module::clique(9), Module::clique(8), Module::clique(7)],
                seed,
            );
            let got = enumerate_sorted(&g, EnumConfig::default());
            assert_eq!(got, bk_at_least(&g, 3), "seed {seed}");
        }
    }

    #[test]
    fn min_k_1_reports_everything() {
        let g = BitGraph::from_edges(5, [(0, 1), (2, 3)]);
        let got = enumerate_sorted(
            &g,
            EnumConfig {
                min_k: 1,
                ..Default::default()
            },
        );
        assert_eq!(got, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn seeded_matches_full_run_filtered() {
        for seed in [3u64, 17, 99] {
            let g = planted(36, 0.12, &[Module::clique(10), Module::clique(8)], seed);
            let full = bk_at_least(&g, 6);
            let seeded = enumerate_sorted(
                &g,
                EnumConfig {
                    min_k: 6,
                    ..Default::default()
                },
            );
            assert_eq!(seeded, full, "seed {seed}");
        }
    }

    #[test]
    fn max_k_truncates() {
        let g = planted(30, 0.1, &[Module::clique(9)], 5);
        let got = enumerate_sorted(
            &g,
            EnumConfig {
                min_k: 3,
                max_k: Some(5),
                record_costs: false,
            },
        );
        let expect: Vec<Vec<Vertex>> = bk_at_least(&g, 3)
            .into_iter()
            .filter(|c| c.len() <= 5)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn non_decreasing_order() {
        let g = planted(40, 0.1, &[Module::clique(8), Module::clique(6)], 2);
        let mut sink = CollectSink::default();
        CliqueEnumerator::default().enumerate(&g, &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn stats_track_levels_and_memory() {
        let g = planted(40, 0.08, &[Module::clique(8)], 8);
        let mut sink = CountSinkShim::default();
        let stats = CliqueEnumerator::new(EnumConfig {
            record_costs: true,
            ..Default::default()
        })
        .enumerate(&g, &mut sink);
        assert_eq!(stats.total_maximal, sink.0.count);
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.levels[0].k, 2);
        assert!(stats.levels.windows(2).all(|w| w[1].k == w[0].k + 1));
        assert!(stats.peak_formula_bytes() > 0);
        assert_eq!(stats.total_bytes_read(), 0);
        let costs = stats.costs.expect("recorded");
        assert_eq!(costs.len(), stats.levels.len());
        for (lvl, c) in stats.levels.iter().zip(&costs) {
            assert_eq!(lvl.sublists, c.len());
        }
    }

    #[derive(Default)]
    struct CountSinkShim(crate::sink::CountSink);
    impl CliqueSink for CountSinkShim {
        fn maximal(&mut self, c: &[Vertex]) {
            self.0.maximal(c);
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let got = enumerate_sorted(&BitGraph::new(0), EnumConfig::default());
        assert!(got.is_empty());
        let got = enumerate_sorted(
            &BitGraph::new(2),
            EnumConfig {
                min_k: 1,
                ..Default::default()
            },
        );
        assert_eq!(got, vec![vec![0], vec![1]]);
        let got = enumerate_sorted(
            &BitGraph::complete(2),
            EnumConfig {
                min_k: 2,
                ..Default::default()
            },
        );
        assert_eq!(got, vec![vec![0, 1]]);
    }
}
