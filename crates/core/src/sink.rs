//! Output sinks for clique enumeration.
//!
//! Genome-scale runs can produce more maximal cliques than fit anywhere
//! (the paper's motivating 3^(n/3) bound); sinks let callers decide what
//! to retain — everything, counts, or a size histogram — without the
//! enumerators allocating on their behalf.

use crate::{Clique, Vertex};

/// Receives maximal cliques as they are discovered. The enumerators
/// guarantee calls arrive in non-decreasing clique size.
pub trait CliqueSink {
    /// One maximal clique, vertices sorted ascending.
    fn maximal(&mut self, clique: &[Vertex]);

    /// Called by checkpointing drivers right before a checkpoint is
    /// persisted: a durable sink must make everything received so far
    /// durable too, or a crash after the checkpoint would lose cliques
    /// the resumed run will never re-emit. In-memory sinks (the
    /// default) have nothing to do.
    fn flush_barrier(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Retains every maximal clique.
#[derive(Default, Debug)]
pub struct CollectSink {
    /// The collected cliques, in arrival order.
    pub cliques: Vec<Clique>,
}

impl CliqueSink for CollectSink {
    fn maximal(&mut self, clique: &[Vertex]) {
        self.cliques.push(clique.to_vec());
    }
}

/// Counts maximal cliques without storing them.
#[derive(Default, Debug)]
pub struct CountSink {
    /// Number of maximal cliques seen.
    pub count: usize,
}

impl CliqueSink for CountSink {
    fn maximal(&mut self, _clique: &[Vertex]) {
        self.count += 1;
    }
}

/// Histogram of maximal clique sizes.
#[derive(Default, Debug)]
pub struct HistogramSink {
    /// `sizes[s]` = number of maximal cliques of size `s`.
    pub sizes: Vec<usize>,
}

impl HistogramSink {
    /// Total cliques across all sizes.
    pub fn total(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Largest size with a nonzero count.
    pub fn max_size(&self) -> usize {
        self.sizes.iter().rposition(|&c| c > 0).unwrap_or(0)
    }
}

impl CliqueSink for HistogramSink {
    fn maximal(&mut self, clique: &[Vertex]) {
        let s = clique.len();
        if self.sizes.len() <= s {
            self.sizes.resize(s + 1, 0);
        }
        self.sizes[s] += 1;
    }
}

impl<S: CliqueSink + ?Sized> CliqueSink for &mut S {
    fn maximal(&mut self, clique: &[Vertex]) {
        (**self).maximal(clique);
    }

    fn flush_barrier(&mut self) -> std::io::Result<()> {
        (**self).flush_barrier()
    }
}

/// Streams cliques to any writer as `size\tv1 v2 …` lines — the
/// terabyte-scale answer to "where do 3^(n/3) cliques go": not in RAM.
pub struct WriterSink<W: std::io::Write> {
    writer: std::io::BufWriter<W>,
    /// Cliques written so far.
    pub written: usize,
    /// First I/O error encountered (subsequent cliques are dropped;
    /// check after the run).
    pub error: Option<std::io::Error>,
}

impl<W: std::io::Write> WriterSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        WriterSink {
            writer: std::io::BufWriter::new(writer),
            written: 0,
            error: None,
        }
    }

    /// Flush and unwrap, surfacing any deferred error.
    pub fn finish(mut self) -> std::io::Result<usize> {
        use std::io::Write as _;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.written)
    }
}

impl<W: std::io::Write> CliqueSink for WriterSink<W> {
    fn maximal(&mut self, clique: &[Vertex]) {
        use std::io::Write as _;
        if self.error.is_some() {
            return;
        }
        let mut line = String::with_capacity(clique.len() * 7 + 8);
        line.push_str(&clique.len().to_string());
        line.push('\t');
        for (i, v) in clique.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&v.to_string());
        }
        line.push('\n');
        if let Err(e) = self.writer.write_all(line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.written += 1;
    }

    fn flush_barrier(&mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        if let Some(e) = self.error.take() {
            self.error = Some(std::io::Error::new(e.kind(), e.to_string()));
            return Err(e);
        }
        self.writer.flush()?;
        self.writer.get_mut().flush()
    }
}

/// Sequences level-tagged cliques for the work-stealing scheduler:
/// cliques are *staged* under their level as workers finish tasks in
/// steal order, and a level is *released* — sorted into the canonical
/// within-level order and forwarded to the inner sink — only once its
/// steal-scope epoch is quiescent. This preserves the paper's
/// size-order output guarantee (and byte-identity with the sequential
/// enumerator) without any barrier inside the level.
pub struct SequencingSink<'a, K: CliqueSink + ?Sized> {
    inner: &'a mut K,
    staged: std::collections::BTreeMap<usize, Vec<Clique>>,
}

impl<'a, K: CliqueSink + ?Sized> SequencingSink<'a, K> {
    /// Wrap an inner sink for the duration of one or more epochs.
    pub fn new(inner: &'a mut K) -> Self {
        SequencingSink {
            inner,
            staged: std::collections::BTreeMap::new(),
        }
    }

    /// Stage one maximal clique found while expanding `level`.
    pub fn stage(&mut self, level: usize, clique: Clique) {
        self.staged.entry(level).or_default().push(clique);
    }

    /// Cliques currently staged (all levels).
    pub fn staged_len(&self) -> usize {
        self.staged.values().map(Vec::len).sum()
    }

    /// Release `level`: sort its staged cliques into canonical order,
    /// forward them to the inner sink, and return how many were
    /// released. Releasing a level with nothing staged is a no-op.
    pub fn release(&mut self, level: usize) -> usize {
        let Some(mut cliques) = self.staged.remove(&level) else {
            return 0;
        };
        cliques.sort();
        for c in &cliques {
            self.inner.maximal(c);
        }
        cliques.len()
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(&[Vertex])>(pub F);

impl<F: FnMut(&[Vertex])> CliqueSink for FnSink<F> {
    fn maximal(&mut self, clique: &[Vertex]) {
        (self.0)(clique);
    }
}

/// Fans every clique out to two sinks, `.0` before `.1` — for runs that
/// want both a durable artifact and a live view (index + text file,
/// writer + histogram). `flush_barrier` uses the same order and stops
/// at the first failure: at a checkpoint barrier `.0` is durable before
/// `.1` is asked to be, so callers should put the sink whose durability
/// the checkpoint depends on first.
#[derive(Default, Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: CliqueSink, B: CliqueSink> CliqueSink for TeeSink<A, B> {
    fn maximal(&mut self, clique: &[Vertex]) {
        self.0.maximal(clique);
        self.1.maximal(clique);
    }

    fn flush_barrier(&mut self) -> std::io::Result<()> {
        self.0.flush_barrier()?;
        self.1.flush_barrier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_and_count() {
        let mut c = CollectSink::default();
        c.maximal(&[1, 2]);
        c.maximal(&[3]);
        assert_eq!(c.cliques, vec![vec![1, 2], vec![3]]);
        let mut n = CountSink::default();
        n.maximal(&[1]);
        n.maximal(&[2, 3, 4]);
        assert_eq!(n.count, 2);
    }

    #[test]
    fn histogram() {
        let mut h = HistogramSink::default();
        h.maximal(&[0, 1, 2]);
        h.maximal(&[5, 6, 7]);
        h.maximal(&[9]);
        assert_eq!(h.sizes[3], 2);
        assert_eq!(h.sizes[1], 1);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_size(), 3);
        assert_eq!(HistogramSink::default().max_size(), 0);
    }

    #[test]
    fn writer_sink_streams_lines() {
        let mut buf = Vec::new();
        {
            let mut sink = WriterSink::new(&mut buf);
            sink.maximal(&[3, 5, 8]);
            sink.maximal(&[1]);
            assert_eq!(sink.finish().unwrap(), 2);
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "3\t3 5 8\n1\t1\n");
    }

    #[test]
    fn writer_sink_defers_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = WriterSink::new(Broken);
        // BufWriter absorbs small writes; force a flush through finish
        for _ in 0..10_000 {
            sink.maximal(&[1, 2, 3, 4, 5, 6, 7, 8]);
        }
        assert!(sink.finish().is_err());
    }

    #[test]
    fn flush_barrier_pushes_buffered_lines_down() {
        use std::cell::RefCell;
        use std::rc::Rc;
        // default impl is a no-op
        assert!(CollectSink::default().flush_barrier().is_ok());
        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let mut sink = WriterSink::new(shared.clone());
        sink.maximal(&[1, 2, 3]);
        assert!(
            shared.0.borrow().is_empty(),
            "one short line should still sit in the BufWriter"
        );
        sink.flush_barrier().unwrap();
        assert_eq!(&*shared.0.borrow(), b"3\t1 2 3\n");
    }

    #[test]
    fn sequencing_sink_releases_levels_sorted() {
        let mut collect = CollectSink::default();
        {
            let mut seq = SequencingSink::new(&mut collect);
            // staged out of order, across two levels
            seq.stage(4, vec![2, 3, 5, 9]);
            seq.stage(3, vec![7, 8, 9]);
            seq.stage(3, vec![1, 2, 3]);
            assert_eq!(seq.staged_len(), 3);
            assert_eq!(seq.release(3), 2, "level 3 released alone");
            assert_eq!(seq.staged_len(), 1);
            assert_eq!(seq.release(4), 1);
            assert_eq!(seq.release(5), 0, "empty level is a no-op");
        }
        assert_eq!(
            collect.cliques,
            vec![vec![1, 2, 3], vec![7, 8, 9], vec![2, 3, 5, 9]],
            "within-level sorted, levels in release order"
        );
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = Vec::new();
        {
            let mut sink = FnSink(|c: &[Vertex]| seen.push(c.len()));
            sink.maximal(&[1, 2, 3]);
        }
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn tee_fans_out_to_both_sinks() {
        let mut tee = TeeSink(CollectSink::default(), HistogramSink::default());
        tee.maximal(&[0, 1, 2]);
        tee.maximal(&[4, 5]);
        tee.maximal(&[6, 7, 8]);
        assert_eq!(tee.0.cliques.len(), 3);
        assert_eq!(tee.1.total(), 3);
        assert_eq!(tee.1.sizes[3], 2);
        assert_eq!(tee.1.max_size(), 3);
    }

    #[test]
    fn tee_composes_with_the_mut_forwarding_impl() {
        // The `&mut S` blanket impl lets a tee borrow sinks owned by the
        // caller — the enumerator wiring used by `gsb index --text-out`.
        let mut collect = CollectSink::default();
        let mut count = CountSink::default();
        {
            let mut tee = TeeSink(&mut collect, &mut count);
            tee.maximal(&[1, 2]);
            tee.maximal(&[3, 4, 5]);
            tee.flush_barrier().unwrap();
        }
        assert_eq!(collect.cliques, vec![vec![1, 2], vec![3, 4, 5]]);
        assert_eq!(count.count, 2);
    }

    #[test]
    fn tee_flush_barrier_order_is_first_then_second() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Probe {
            name: &'static str,
            log: Rc<RefCell<Vec<&'static str>>>,
            fail: bool,
        }
        impl CliqueSink for Probe {
            fn maximal(&mut self, _clique: &[Vertex]) {}
            fn flush_barrier(&mut self) -> std::io::Result<()> {
                self.log.borrow_mut().push(self.name);
                if self.fail {
                    Err(std::io::Error::other("barrier failed"))
                } else {
                    Ok(())
                }
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut tee = TeeSink(
            Probe {
                name: "first",
                log: Rc::clone(&log),
                fail: false,
            },
            Probe {
                name: "second",
                log: Rc::clone(&log),
                fail: false,
            },
        );
        tee.flush_barrier().unwrap();
        assert_eq!(&*log.borrow(), &["first", "second"]);

        // A failing first sink short-circuits: the second sink's
        // barrier must not run (its durability claim would be a lie).
        log.borrow_mut().clear();
        let mut tee = TeeSink(
            Probe {
                name: "first",
                log: Rc::clone(&log),
                fail: true,
            },
            Probe {
                name: "second",
                log: Rc::clone(&log),
                fail: false,
            },
        );
        assert!(tee.flush_barrier().is_err());
        assert_eq!(&*log.borrow(), &["first"]);
    }

    #[test]
    fn tee_writer_sink_flush_ordering_is_observable() {
        use std::cell::RefCell;
        use std::rc::Rc;
        #[derive(Clone, Default)]
        struct Shared(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (a, b) = (Shared::default(), Shared::default());
        let mut tee = TeeSink(WriterSink::new(a.clone()), WriterSink::new(b.clone()));
        tee.maximal(&[7, 8, 9]);
        // Both lines still sit in the BufWriters until the barrier.
        assert!(a.0.borrow().is_empty() && b.0.borrow().is_empty());
        tee.flush_barrier().unwrap();
        assert_eq!(&*a.0.borrow(), b"3\t7 8 9\n");
        assert_eq!(&*b.0.borrow(), b"3\t7 8 9\n");
    }
}
