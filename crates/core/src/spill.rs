//! Out-of-core Clique Enumerator: the levelwise loop over a budgeted
//! [`crate::store::LevelStore`] instead of an in-memory
//! vector.
//!
//! This is the configuration the paper's predecessor ran in (§1) — and
//! abandoned, because "intensive disk I/O access has been the major
//! bottleneck". It exists here so the comparison is measurable on the
//! same codebase: identical expansion kernel, only the level storage
//! differs. See the `ablation_spill` bench.

use crate::enumerator::{CliqueEnumerator, EnumStats};
use crate::sink::CliqueSink;
use crate::store::{LevelStore, SpillConfig};
use gsb_bitset::BitSet;
use gsb_graph::BitGraph;
use std::time::Instant;

/// Per-level report of an out-of-core run.
#[derive(Clone, Debug)]
pub struct SpillLevelReport {
    /// Clique size of the candidates expanded.
    pub k: usize,
    /// Sub-lists expanded.
    pub sublists: usize,
    /// How many of them had been spilled to disk.
    pub spilled: usize,
    /// Bytes streamed back from disk for this level.
    pub bytes_read: u64,
    /// Wall time (ns).
    pub ns: u64,
}

/// Statistics of an out-of-core run.
#[derive(Clone, Debug, Default)]
pub struct SpillStats {
    /// One report per expanded level.
    pub levels: Vec<SpillLevelReport>,
    /// Total maximal cliques reported.
    pub total_maximal: usize,
    /// Wall time (ns).
    pub wall_ns: u64,
}

impl SpillStats {
    /// Total bytes read back from spill files.
    pub fn total_bytes_read(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes_read).sum()
    }
}

impl CliqueEnumerator {
    /// Enumerate like [`enumerate`](Self::enumerate), but hold each
    /// level in a [`LevelStore`] bounded by `spill.budget_bytes` of the
    /// paper's formula bytes; overflow goes to disk and is streamed
    /// back for the next level. Output (as a set, and in
    /// non-decreasing size order) is identical to the in-core run.
    pub fn enumerate_spilled(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
        spill: &SpillConfig,
    ) -> std::io::Result<SpillStats> {
        let start = Instant::now();
        let mut stats = SpillStats::default();
        let mut enum_stats = EnumStats::default();
        let init = self.init_level(g, sink, &mut enum_stats);
        stats.total_maximal += enum_stats.total_maximal;
        let mut k = init.k;
        let mut current = LevelStore::new(spill, g.n());
        for sl in init.sublists {
            current.push(sl)?;
        }
        let mut buf = BitSet::new(g.n());
        loop {
            if current.is_empty() {
                break;
            }
            if let Some(mx) = self.config.max_k {
                if k >= mx {
                    break;
                }
            }
            let level_start = Instant::now();
            let sublists = current.len();
            let spilled = current.spilled_len();
            let mut next = LevelStore::new(spill, g.n());
            let mut maximal_found = 0usize;
            let mut io_error: Option<std::io::Error> = None;
            let mut scratch = Vec::new();
            let report = current.drain(|sl| {
                if io_error.is_some() {
                    return;
                }
                scratch.clear();
                let (found, _units) =
                    crate::enumerator::expand_sublist(g, &sl, &mut buf, sink, &mut scratch);
                maximal_found += found;
                for nsl in scratch.drain(..) {
                    if let Err(e) = next.push(nsl) {
                        io_error = Some(e);
                        return;
                    }
                }
            })?;
            if let Some(e) = io_error {
                return Err(e);
            }
            stats.total_maximal += maximal_found;
            stats.levels.push(SpillLevelReport {
                k,
                sublists,
                spilled,
                bytes_read: report.bytes_read,
                ns: level_start.elapsed().as_nanos() as u64,
            });
            current = next;
            k += 1;
        }
        stats.wall_ns = start.elapsed().as_nanos() as u64;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::EnumConfig;
    use gsb_graph::generators::{planted, Module};

    fn in_core(g: &BitGraph, config: EnumConfig) -> Vec<Vec<crate::Vertex>> {
        let mut sink = CollectSink::default();
        CliqueEnumerator::new(config).enumerate(g, &mut sink);
        let mut v = sink.cliques;
        v.sort();
        v
    }

    fn spilled(
        g: &BitGraph,
        config: EnumConfig,
        budget: usize,
    ) -> (Vec<Vec<crate::Vertex>>, SpillStats) {
        let mut sink = CollectSink::default();
        let stats = CliqueEnumerator::new(config)
            .enumerate_spilled(g, &mut sink, &SpillConfig::in_temp(budget))
            .expect("io ok");
        let mut v = sink.cliques;
        v.sort();
        (v, stats)
    }

    #[test]
    fn spilled_matches_in_core_across_budgets() {
        let g = planted(40, 0.08, &[Module::clique(9), Module::clique(7)], 6);
        let config = EnumConfig::default();
        let expect = in_core(&g, config);
        for budget in [0usize, 200, 5_000, usize::MAX] {
            let (got, stats) = spilled(&g, config, budget);
            assert_eq!(got, expect, "budget {budget}");
            if budget == 0 {
                assert!(stats.total_bytes_read() > 0, "nothing spilled at budget 0");
            }
            if budget == usize::MAX {
                assert_eq!(stats.total_bytes_read(), 0);
            }
            assert_eq!(stats.total_maximal, expect.len());
        }
    }

    #[test]
    fn spilled_respects_size_window() {
        let g = planted(32, 0.1, &[Module::clique(8)], 3);
        let config = EnumConfig {
            min_k: 4,
            max_k: Some(6),
            record_costs: false,
        };
        let expect = in_core(&g, config);
        let (got, _) = spilled(&g, config, 100);
        assert_eq!(got, expect);
        assert!(got.iter().all(|c| (4..=6).contains(&c.len())));
    }

    #[test]
    fn spill_reports_levels() {
        let g = planted(36, 0.08, &[Module::clique(8)], 11);
        let (_, stats) = spilled(&g, EnumConfig::default(), 0);
        assert!(!stats.levels.is_empty());
        for w in stats.levels.windows(2) {
            assert_eq!(w[1].k, w[0].k + 1);
        }
        // with budget 0 every stored sub-list was spilled
        for l in &stats.levels[1..] {
            assert_eq!(l.spilled, l.sublists);
        }
        assert!(stats.wall_ns > 0);
    }
}
