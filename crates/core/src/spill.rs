//! Out-of-core Clique Enumerator: the levelwise loop over a budgeted
//! [`crate::store::LevelStore`] instead of an in-memory
//! vector.
//!
//! This is the configuration the paper's predecessor ran in (§1) — and
//! abandoned, because "intensive disk I/O access has been the major
//! bottleneck". It exists here so the comparison is measurable on the
//! same codebase: identical expansion kernel, only the level storage
//! differs. See the `ablation_spill` bench.
//!
//! Besides the benchmark role, the spilled loop is the *degraded mode*
//! of the fault-tolerant pipeline: when a run's projected footprint
//! exceeds its memory budget, [`CliquePipeline`](crate::CliquePipeline)
//! hands the current level to
//! [`enumerate_spilled_from_level`](CliqueEnumerator::enumerate_spilled_from_level)
//! and finishes out of core instead of dying on allocation.

use crate::enumerator::{CliqueEnumerator, EnumStats};
use crate::sink::CliqueSink;
use crate::store::{LevelStore, SpillConfig, StoreError};
use crate::sublist::Level;
use gsb_bitset::BitSet;
use gsb_graph::BitGraph;
use std::time::Instant;

/// Per-level report of an out-of-core run.
#[derive(Clone, Debug)]
pub struct SpillLevelReport {
    /// Clique size of the candidates expanded.
    pub k: usize,
    /// Sub-lists expanded.
    pub sublists: usize,
    /// How many of them had been spilled to disk.
    pub spilled: usize,
    /// Bytes streamed back from disk for this level.
    pub bytes_read: u64,
    /// Wall time (ns).
    pub ns: u64,
    /// Maximal (k+1)-cliques emitted while expanding this level.
    pub maximal_found: usize,
}

/// Statistics of an out-of-core run.
#[derive(Clone, Debug, Default)]
pub struct SpillStats {
    /// One report per expanded level.
    pub levels: Vec<SpillLevelReport>,
    /// Total maximal cliques reported.
    pub total_maximal: usize,
    /// Wall time (ns).
    pub wall_ns: u64,
}

impl SpillStats {
    /// Total bytes read back from spill files.
    pub fn total_bytes_read(&self) -> u64 {
        self.levels.iter().map(|l| l.bytes_read).sum()
    }
}

impl CliqueEnumerator {
    /// Enumerate like [`enumerate`](Self::enumerate), but hold each
    /// level in a [`LevelStore`] bounded by `spill.budget_bytes` of the
    /// paper's formula bytes; overflow goes to disk and is streamed
    /// back for the next level. Output (as a set, and in
    /// non-decreasing size order) is identical to the in-core run.
    pub fn enumerate_spilled(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
        spill: &SpillConfig,
    ) -> Result<SpillStats, StoreError> {
        let start = Instant::now();
        let mut stats = SpillStats::default();
        let mut enum_stats = EnumStats::default();
        let init = self.init_level(g, sink, &mut enum_stats);
        stats.total_maximal += enum_stats.total_maximal;
        self.run_spilled_from(g, init, sink, spill, &mut stats)?;
        stats.wall_ns = start.elapsed().as_nanos() as u64;
        Ok(stats)
    }

    /// Continue an enumeration out of core from an already-built level
    /// (a checkpoint, or the resident level of an in-core run that hit
    /// its memory budget). Emits cliques of size `> level.k` only; the
    /// caller is responsible for everything emitted before the handoff.
    pub fn enumerate_spilled_from_level(
        &self,
        g: &BitGraph,
        level: Level,
        sink: &mut impl CliqueSink,
        spill: &SpillConfig,
    ) -> Result<SpillStats, StoreError> {
        let start = Instant::now();
        let mut stats = SpillStats::default();
        self.run_spilled_from(g, level, sink, spill, &mut stats)?;
        stats.wall_ns = start.elapsed().as_nanos() as u64;
        Ok(stats)
    }

    fn run_spilled_from(
        &self,
        g: &BitGraph,
        init: Level,
        sink: &mut impl CliqueSink,
        spill: &SpillConfig,
        stats: &mut SpillStats,
    ) -> Result<(), StoreError> {
        let mut k = init.k;
        let mut current = LevelStore::new(spill, g.n());
        for sl in init.sublists {
            current.push(sl)?;
        }
        let mut buf = BitSet::new(g.n());
        loop {
            if current.is_empty() {
                break;
            }
            if let Some(mx) = self.config.max_k {
                if k >= mx {
                    break;
                }
            }
            let level_start = Instant::now();
            let sublists = current.len();
            let spilled = current.spilled_len();
            let mut next = LevelStore::new(spill, g.n());
            let mut maximal_found = 0usize;
            let mut push_error: Option<StoreError> = None;
            let mut scratch = Vec::new();
            let report = current.drain(|sl| {
                if push_error.is_some() {
                    return;
                }
                scratch.clear();
                let expanded =
                    crate::enumerator::expand_sublist(g, &sl, &mut buf, sink, &mut scratch);
                maximal_found += expanded.maximal;
                for nsl in scratch.drain(..) {
                    if let Err(e) = next.push(nsl) {
                        push_error = Some(e);
                        return;
                    }
                }
            })?;
            if let Some(e) = push_error {
                return Err(e);
            }
            stats.total_maximal += maximal_found;
            stats.levels.push(SpillLevelReport {
                k,
                sublists,
                spilled,
                bytes_read: report.bytes_read,
                ns: level_start.elapsed().as_nanos() as u64,
                maximal_found,
            });
            current = next;
            k += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::EnumConfig;
    use gsb_graph::generators::{planted, Module};

    fn in_core(g: &BitGraph, config: EnumConfig) -> Vec<Vec<crate::Vertex>> {
        let mut sink = CollectSink::default();
        CliqueEnumerator::new(config).enumerate(g, &mut sink);
        let mut v = sink.cliques;
        v.sort();
        v
    }

    fn spilled(
        g: &BitGraph,
        config: EnumConfig,
        budget: usize,
    ) -> (Vec<Vec<crate::Vertex>>, SpillStats) {
        let mut sink = CollectSink::default();
        let stats = CliqueEnumerator::new(config)
            .enumerate_spilled(g, &mut sink, &SpillConfig::in_temp(budget))
            .expect("io ok");
        let mut v = sink.cliques;
        v.sort();
        (v, stats)
    }

    #[test]
    fn spilled_matches_in_core_across_budgets() {
        let g = planted(40, 0.08, &[Module::clique(9), Module::clique(7)], 6);
        let config = EnumConfig::default();
        let expect = in_core(&g, config);
        for budget in [0usize, 200, 5_000, usize::MAX] {
            let (got, stats) = spilled(&g, config, budget);
            assert_eq!(got, expect, "budget {budget}");
            if budget == 0 {
                assert!(stats.total_bytes_read() > 0, "nothing spilled at budget 0");
            }
            if budget == usize::MAX {
                assert_eq!(stats.total_bytes_read(), 0);
            }
            assert_eq!(stats.total_maximal, expect.len());
        }
    }

    #[test]
    fn spilled_respects_size_window() {
        let g = planted(32, 0.1, &[Module::clique(8)], 3);
        let config = EnumConfig {
            min_k: 4,
            max_k: Some(6),
            record_costs: false,
        };
        let expect = in_core(&g, config);
        let (got, _) = spilled(&g, config, 100);
        assert_eq!(got, expect);
        assert!(got.iter().all(|c| (4..=6).contains(&c.len())));
    }

    #[test]
    fn spill_reports_levels() {
        let g = planted(36, 0.08, &[Module::clique(8)], 11);
        let (_, stats) = spilled(&g, EnumConfig::default(), 0);
        assert!(!stats.levels.is_empty());
        for w in stats.levels.windows(2) {
            assert_eq!(w[1].k, w[0].k + 1);
        }
        // with budget 0 every stored sub-list was spilled
        for l in &stats.levels[1..] {
            assert_eq!(l.spilled, l.sublists);
        }
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn from_level_handoff_matches_full_run() {
        // Run in core up to the level-3 barrier, hand that level to the
        // spilled loop, and check the combined output equals one run.
        let g = planted(36, 0.1, &[Module::clique(8), Module::clique(6)], 21);
        let config = EnumConfig::default();
        let expect = in_core(&g, config);

        let enumerator = CliqueEnumerator::new(config);
        let mut sink = CollectSink::default();
        let mut enum_stats = EnumStats::default();
        let mut level = enumerator.init_level(&g, &mut sink, &mut enum_stats);
        while level.k < 3 && !level.sublists.is_empty() {
            let (next, _) = enumerator.step(&g, &level, &mut sink);
            level = next;
        }
        enumerator
            .enumerate_spilled_from_level(&g, level, &mut sink, &SpillConfig::in_temp(0))
            .expect("io ok");
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }
}
