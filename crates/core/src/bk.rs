//! Bron–Kerbosch maximal clique enumeration: Base and Improved variants.
//!
//! §2.2 of the paper: both algorithms do a depth-first traversal over
//! the sets COMPSUB (clique in progress), CANDIDATES (extenders still to
//! try), and NOT (extenders already tried higher up). Base BK takes
//! candidates in presentation order; Improved BK picks a pivot with the
//! most connections into CANDIDATES and only branches on candidates not
//! adjacent to it. Neither emits cliques in size order — that is the
//! Clique Enumerator's reason to exist — but they are the trusted
//! references the rest of the crate is validated against.

use crate::sink::CliqueSink;
use crate::Vertex;
use gsb_bitset::BitSet;
use gsb_graph::BitGraph;

/// Enumerate all maximal cliques with Base BK (candidate order =
/// ascending vertex index).
pub fn base_bk(g: &BitGraph, sink: &mut impl CliqueSink) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let mut compsub = Vec::new();
    let candidates = BitSet::full(n);
    let not = BitSet::new(n);
    extend_base(g, &mut compsub, candidates, not, sink);
}

fn extend_base(
    g: &BitGraph,
    compsub: &mut Vec<Vertex>,
    mut candidates: BitSet,
    mut not: BitSet,
    sink: &mut impl CliqueSink,
) {
    while let Some(v) = candidates.first_one() {
        candidates.remove(v);
        compsub.push(v as Vertex);
        let new_candidates = candidates.and(g.neighbors(v));
        let new_not = not.and(g.neighbors(v));
        if new_candidates.none() && new_not.none() {
            sink.maximal(compsub);
        } else {
            extend_base(g, compsub, new_candidates, new_not, sink);
        }
        compsub.pop();
        not.insert(v);
    }
}

/// Enumerate all maximal cliques with Improved BK (pivoting).
pub fn improved_bk(g: &BitGraph, sink: &mut impl CliqueSink) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let mut compsub = Vec::new();
    let candidates = BitSet::full(n);
    let not = BitSet::new(n);
    extend_improved(g, &mut compsub, candidates, not, sink);
}

fn extend_improved(
    g: &BitGraph,
    compsub: &mut Vec<Vertex>,
    mut candidates: BitSet,
    mut not: BitSet,
    sink: &mut impl CliqueSink,
) {
    if candidates.none() && not.none() {
        sink.maximal(compsub);
        return;
    }
    // Pivot: the vertex of CANDIDATES ∪ NOT with the most connections to
    // the remaining CANDIDATES; only candidates outside its neighborhood
    // can lead to cliques the pivot's branch would miss.
    let pivot = candidates
        .iter_ones()
        .chain(not.iter_ones())
        .max_by_key(|&p| (g.neighbors(p).count_and(&candidates), usize::MAX - p))
        .expect("candidates or not nonempty");
    let branch = candidates.and_not(g.neighbors(pivot));
    for v in branch.iter_ones() {
        candidates.remove(v);
        compsub.push(v as Vertex);
        let new_candidates = candidates.and(g.neighbors(v));
        let new_not = not.and(g.neighbors(v));
        extend_improved(g, compsub, new_candidates, new_not, sink);
        compsub.pop();
        not.insert(v);
    }
}

/// Collect all maximal cliques with Base BK, each sorted, the whole set
/// sorted lexicographically (canonical form for comparisons in tests).
pub fn base_bk_sorted(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let mut sink = crate::sink::CollectSink::default();
    base_bk(g, &mut sink);
    let mut cliques = sink.cliques;
    for c in &mut cliques {
        c.sort_unstable();
    }
    cliques.sort();
    cliques
}

/// Collect all maximal cliques with Improved BK, canonicalized.
pub fn improved_bk_sorted(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let mut sink = crate::sink::CollectSink::default();
    improved_bk(g, &mut sink);
    let mut cliques = sink.cliques;
    for c in &mut cliques {
        c.sort_unstable();
    }
    cliques.sort();
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::generators::gnp;

    #[test]
    fn k3_single_clique() {
        let g = BitGraph::complete(3);
        assert_eq!(base_bk_sorted(&g), vec![vec![0, 1, 2]]);
        assert_eq!(improved_bk_sorted(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn path_cliques_are_edges() {
        let g = BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let expect = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        assert_eq!(base_bk_sorted(&g), expect);
        assert_eq!(improved_bk_sorted(&g), expect);
    }

    #[test]
    fn isolated_vertices_are_maximal_1_cliques() {
        let g = BitGraph::from_edges(3, [(0, 1)]);
        assert_eq!(base_bk_sorted(&g), vec![vec![0, 1], vec![2]]);
        assert_eq!(improved_bk_sorted(&g), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn empty_graph() {
        let g = BitGraph::new(0);
        assert!(base_bk_sorted(&g).is_empty());
        assert!(improved_bk_sorted(&g).is_empty());
        // edgeless graph: every vertex is a maximal 1-clique
        let g = BitGraph::new(3);
        assert_eq!(base_bk_sorted(&g).len(), 3);
    }

    #[test]
    fn moon_moser_extremal_count() {
        // K_{3,3,3} complement-style Moon–Moser graph: 3^(n/3) maximal
        // cliques — the bound the paper cites [25]. n=9 → 27 cliques.
        let mut g = BitGraph::complete(9);
        for part in 0..3 {
            let a = 3 * part;
            g.remove_edge(a, a + 1);
            g.remove_edge(a, a + 2);
            g.remove_edge(a + 1, a + 2);
        }
        assert_eq!(base_bk_sorted(&g).len(), 27);
        assert_eq!(improved_bk_sorted(&g).len(), 27);
    }

    #[test]
    fn variants_agree_on_random_graphs() {
        for seed in 0..8 {
            let g = gnp(28, 0.35, seed);
            assert_eq!(base_bk_sorted(&g), improved_bk_sorted(&g), "seed {seed}");
        }
    }

    #[test]
    fn every_reported_clique_is_maximal() {
        let g = gnp(30, 0.4, 99);
        for c in base_bk_sorted(&g) {
            let vs: Vec<usize> = c.iter().map(|&v| v as usize).collect();
            assert!(g.is_maximal_clique(&vs), "{c:?} not maximal");
        }
    }
}
