//! The multithreaded Clique Enumerator (§2.3, "Parallelism for
//! shared-memory machines").
//!
//! Faithful to the paper's runtime: persistent worker threads expand
//! their *local* sub-lists independently (no communication inside a
//! level); a centralized task scheduler synchronizes levels, collects
//! results, and transfers sub-lists from heavy to light workers when the
//! spread exceeds the threshold policy — transfers move owned structures
//! between queues, i.e. addresses, not data, exactly as on the Altix.
//!
//! Determinism: within a level the set of maximal cliques is
//! independent of the partition; results are sorted per level before
//! delivery, so output order is identical to the sequential enumerator
//! up to within-level ordering.
//!
//! ## Fault tolerance
//!
//! [`enumerate_resilient`](ParallelEnumerator::enumerate_resilient) is
//! the crash-aware driver: a round whose worker panics is discarded
//! wholesale (no partial emissions), dead threads are respawned, and
//! the level is retried once from its snapshot before the failure is
//! surfaced as a typed [`ParallelRunError`]. A per-level barrier hook
//! lets the pipeline write checkpoints and demand degradation to the
//! out-of-core path mid-flight, or halt for a graceful signal-driven
//! shutdown ([`BarrierControl::Halt`]).
//!
//! ## Supervision
//!
//! With a worker deadline configured
//! ([`ParallelConfig::worker_deadline`]) workers heartbeat once per
//! sub-list; a thread silent past the deadline is declared stuck and
//! abandoned, not waited on forever. With a quarantine sidecar
//! configured ([`ParallelEnumerator::quarantine_to`]) a level whose
//! retry also fails is *isolated* instead of aborted: the suspect
//! sub-lists are probed one per worker, the poison ones are recorded to
//! `quarantine.jsonl` and skipped, and the level continues — degraded
//! exact, never silently dropped (see [`crate::quarantine`]).

use crate::backend::InMemoryLevel;
use crate::enumerator::{EnumConfig, LevelReport};
use crate::memory::LevelMemory;
use crate::quarantine::QuarantineEntry;
use crate::sink::{CliqueSink, CollectSink};
use crate::store::StoreError;
use crate::sublist::{Level, SubList};
use crate::Clique;
use gsb_bitset::{BitSet, NeighborSet};
use gsb_graph::BitGraph;
use gsb_par::balance::{partition_greedy, rebalance, BalancePolicy};
use gsb_par::stats::{LevelStats, RunStats};
use gsb_par::{Heartbeat, RoundError, WorkerPool};
use parking_lot::Mutex;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How work is distributed across levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// The paper's centralized dynamic balancer: children stay on their
    /// parent's worker; after each level, transfer sub-lists when the
    /// load spread exceeds the policy threshold.
    Dynamic,
    /// No balancing after the initial partition (ablation A2).
    Static,
    /// Re-partition every level from scratch with LPT (upper reference
    /// for balance quality; ignores affinity).
    Repartition,
}

/// Configuration of a parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Size bounds and seeding, as for the sequential enumerator.
    pub enum_config: EnumConfig,
    /// Transfer threshold policy.
    pub policy: BalancePolicy,
    /// Distribution strategy.
    pub strategy: BalanceStrategy,
    /// Stuck-worker deadline: a worker whose per-sub-list heartbeats
    /// stop advancing for this long is declared dead and abandoned.
    /// `None` (the default) disables the watchdog — a wedged thread
    /// then blocks the level barrier indefinitely.
    pub worker_deadline: Option<Duration>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 4,
            enum_config: EnumConfig::default(),
            policy: BalancePolicy::default(),
            strategy: BalanceStrategy::Dynamic,
            worker_deadline: None,
        }
    }
}

/// Statistics of a parallel run.
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Per-level algorithmic reports (counts, memory).
    pub levels: Vec<LevelReport>,
    /// Per-level, per-worker timing (Fig. 8's raw data).
    pub run: RunStats,
    /// Total maximal cliques reported.
    pub total_maximal: usize,
    /// Levels whose first round failed (worker panic) and were retried
    /// successfully from their snapshot.
    pub retried_levels: Vec<usize>,
    /// Sub-lists isolated into the quarantine sidecar and skipped
    /// (degraded-exact mode): their descendant cliques are missing from
    /// the output but recorded, never silently dropped.
    pub quarantined: usize,
}

/// Verdict of the per-level barrier hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierControl {
    /// Expand this level as usual.
    Continue,
    /// Stop the in-core parallel run and hand the level back (the
    /// pipeline continues it out of core).
    Degrade,
    /// Stop the run entirely (graceful shutdown): the barrier has
    /// already persisted what it needs; nothing further is expanded.
    Halt,
}

/// How a resilient parallel run ended. Generic over the bitmap
/// representation the run enumerated with (dense by default).
pub enum ParallelOutcome<S: NeighborSet = BitSet> {
    /// Ran to completion.
    Complete(ParallelStats),
    /// The barrier hook demanded degradation; `level` is unexpanded and
    /// everything of size `< level.k + 1` was already emitted.
    Degraded {
        /// The snapshot to continue from.
        level: Level<S>,
        /// Statistics up to the handoff.
        stats: ParallelStats,
    },
    /// The barrier hook demanded a halt (graceful shutdown). The
    /// barrier persisted its final checkpoint before asking, so the
    /// outcome only carries the statistics.
    Interrupted {
        /// Statistics up to the halt.
        stats: ParallelStats,
    },
}

/// A resilient parallel run failed.
#[derive(Debug)]
pub enum ParallelRunError<S: NeighborSet = BitSet> {
    /// A level's round failed twice (original + one retry from the
    /// snapshot). `level` is the unexpanded snapshot, so the caller can
    /// persist a final checkpoint before aborting.
    Round {
        /// The level being expanded when the workers failed.
        k: usize,
        /// The worker failures of the retry round.
        error: RoundError,
        /// The unexpanded level snapshot.
        level: Level<S>,
    },
    /// The barrier hook (checkpoint write, budget check) failed.
    Store(StoreError),
}

impl<S: NeighborSet> fmt::Display for ParallelRunError<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelRunError::Round { k, error, .. } => {
                write!(f, "level {k} failed after retry: {error}")
            }
            ParallelRunError::Store(e) => write!(f, "barrier failed: {e}"),
        }
    }
}

impl<S: NeighborSet> std::error::Error for ParallelRunError<S> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelRunError::Round { error, .. } => Some(error),
            ParallelRunError::Store(e) => Some(e),
        }
    }
}

impl<S: NeighborSet> From<StoreError> for ParallelRunError<S> {
    fn from(e: StoreError) -> Self {
        ParallelRunError::Store(e)
    }
}

/// What one worker returns for one level.
struct WorkerOut<S: NeighborSet> {
    new_sublists: Vec<SubList<S>>,
    maximal: Vec<Clique>,
    tasks: usize,
    units: u64,
    and_ops: u64,
    tests: u64,
}

/// The per-round job: expand a batch of sub-lists locally, no
/// cross-talk. Built by a free function so a retry can recreate it
/// after the original closure was consumed by the failed round. The
/// per-vertex neighbor rows (already converted to `S`) are shared
/// across workers and rounds.
fn worker_job<S: NeighborSet>(
    graph: Arc<BitGraph>,
    rows: Arc<Vec<S>>,
) -> impl Fn(usize, Vec<SubList<S>>, &Heartbeat) -> WorkerOut<S> + Send + Sync {
    move |w, batch: Vec<SubList<S>>, hb: &Heartbeat| {
        if let Err(e) = crate::failpoint::inject("parallel.worker") {
            panic!("{e}");
        }
        let local_m: usize = batch.iter().map(SubList::len).sum();
        // paper's bound N[k+1] <= M[k] - 2N[k], per worker
        let mut new_sublists: Vec<SubList<S>> =
            Vec::with_capacity(local_m.saturating_sub(2 * batch.len()));
        let (mut units, mut and_ops, mut tests) = (0u64, 0u64, 0u64);
        let mut collect = CollectSink::default();
        let mut buf = S::empty(graph.n());
        for sl in &batch {
            // One beat per sub-list: the supervisor's stuck-worker
            // deadline measures *progress between sub-lists*, so a
            // worker grinding through a huge batch is alive while a
            // wedged one is not.
            hb.beat(w);
            // Per-sub-list failpoint, keyed by prefix, so tests can
            // poison exactly one sub-list. Gated: the tag string is
            // never built in production runs.
            #[cfg(feature = "failpoints")]
            {
                let tag = sl
                    .prefix
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("-");
                if let Err(e) = crate::failpoint::inject_tagged("parallel.sublist", &tag) {
                    panic!("{e}");
                }
            }
            let expanded =
                crate::enumerator::expand_sublist(&graph, &rows, sl, &mut buf, &mut collect, |c| {
                    new_sublists.push(c)
                });
            units += expanded.units;
            and_ops += expanded.and_ops;
            tests += expanded.tests;
        }
        WorkerOut {
            new_sublists,
            maximal: collect.cliques,
            tasks: batch.len(),
            units,
            and_ops,
            tests,
        }
    }
}

/// Partition sub-lists over `threads` queues with LPT on estimated cost.
fn partition_level<S: NeighborSet>(
    sublists: Vec<SubList<S>>,
    threads: usize,
) -> Vec<Vec<SubList<S>>> {
    let costs: Vec<u64> = sublists.iter().map(SubList::cost).collect();
    let parts = partition_greedy(&costs, threads);
    let mut queues: Vec<Vec<SubList<S>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut slots: Vec<Option<SubList<S>>> = sublists.into_iter().map(Some).collect();
    for (w, idxs) in parts.iter().enumerate() {
        for &i in idxs {
            queues[w].push(slots[i].take().expect("each task assigned once"));
        }
    }
    queues
}

/// The multithreaded Clique Enumerator.
pub struct ParallelEnumerator {
    /// Run configuration.
    pub config: ParallelConfig,
    // Mutex (not for sharing — the enumerator is used from one thread)
    // so respawning dead workers, which needs `&mut WorkerPool`, works
    // behind the long-standing `&self` entry points.
    pool: Mutex<WorkerPool>,
    /// Quarantine sidecar path; `None` keeps the historical behavior
    /// (a twice-failed level aborts the run).
    quarantine: Option<PathBuf>,
}

impl ParallelEnumerator {
    /// Build an enumerator (spawns the worker pool).
    pub fn new(config: ParallelConfig) -> Self {
        ParallelEnumerator {
            pool: Mutex::new(WorkerPool::new(config.threads)),
            config,
            quarantine: None,
        }
    }

    /// Enable the quarantine sidecar: when a level fails its retry, the
    /// poison sub-lists are isolated to `path` (JSON lines, appended)
    /// and skipped instead of aborting the run. See [`crate::quarantine`].
    pub fn quarantine_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.quarantine = Some(path.into());
        self
    }

    /// Enumerate maximal cliques of `g`, delivering them level by level
    /// (non-decreasing size) into `sink`.
    ///
    /// Panics if a worker round fails twice; use
    /// [`enumerate_resilient`](Self::enumerate_resilient) to handle
    /// failures as values.
    pub fn enumerate(&self, g: &Arc<BitGraph>, sink: &mut impl CliqueSink) -> ParallelStats {
        let outcome = self.enumerate_resilient(g, None::<Level>, sink, |_level, _mem, _sink| {
            Ok(BarrierControl::Continue)
        });
        match outcome {
            Ok(ParallelOutcome::Complete(stats)) => stats,
            Ok(ParallelOutcome::Degraded { .. }) | Ok(ParallelOutcome::Interrupted { .. }) => {
                unreachable!("no-op barrier never degrades or halts")
            }
            Err(e) => panic!("parallel enumeration failed: {e}"),
        }
    }

    /// Fault-tolerant enumeration.
    ///
    /// * `start`: `None` runs from scratch (seeding `min_k`-cliques and
    ///   emitting them as the sequential enumerator does); `Some(level)`
    ///   continues from a snapshot — e.g. a checkpoint — whose seeds
    ///   were already emitted by the original run.
    /// * `barrier` runs once per level *before* expansion, with the
    ///   level snapshot and its memory accounting; it may persist a
    ///   checkpoint (errors propagate) and may demand
    ///   [`BarrierControl::Degrade`], which stops the in-core run and
    ///   returns the unexpanded level for out-of-core continuation.
    ///
    /// A round that fails (worker panic) is discarded — partial results
    /// never reach `sink` — dead workers are respawned, and the level is
    /// retried once from its snapshot. A second failure aborts with
    /// [`ParallelRunError::Round`] carrying the snapshot, so the caller
    /// can write a final checkpoint.
    pub fn enumerate_resilient<S, K, B>(
        &self,
        g: &Arc<BitGraph>,
        start: Option<Level<S>>,
        sink: &mut K,
        barrier: B,
    ) -> Result<ParallelOutcome<S>, ParallelRunError<S>>
    where
        S: NeighborSet,
        K: CliqueSink,
        B: FnMut(&Level<S>, &LevelMemory, &mut K) -> Result<BarrierControl, StoreError>,
    {
        self.enumerate_observed(g, start, sink, barrier, |_report, _stats, _retried| {})
    }

    /// [`enumerate_resilient`](Self::enumerate_resilient) with a
    /// telemetry tap: `observe` runs right after each level completes
    /// (results collected, cliques emitted, balancer applied) with the
    /// level's algorithmic report, its per-worker timing, and whether
    /// the level's first round failed and was retried. This is how the
    /// pipeline exports one consistent record per level barrier without
    /// the workers ever touching a shared channel mid-level.
    pub fn enumerate_observed<S, K, B, O>(
        &self,
        g: &Arc<BitGraph>,
        start: Option<Level<S>>,
        sink: &mut K,
        mut barrier: B,
        mut observe: O,
    ) -> Result<ParallelOutcome<S>, ParallelRunError<S>>
    where
        S: NeighborSet,
        K: CliqueSink,
        B: FnMut(&Level<S>, &LevelMemory, &mut K) -> Result<BarrierControl, StoreError>,
        O: FnMut(&LevelReport, &LevelStats, bool),
    {
        let wall = Instant::now();
        let mut stats = ParallelStats::default();
        let threads = self.pool.lock().threads();
        let rows = Arc::new(crate::enumerator::neighbor_rows::<S>(g));

        let init = match start {
            Some(level) => level,
            None => {
                // Initialization is sequential and cheap relative to
                // expansion.
                let seq = crate::enumerator::CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(
                    self.config.enum_config,
                    (),
                );
                let mut init_stats = crate::enumerator::EnumStats::default();
                let init = seq.init_level(g, sink, &mut init_stats);
                stats.total_maximal += init_stats.total_maximal;
                init
            }
        };
        let mut k = init.k;

        // Initial distribution: LPT over estimated sub-list costs.
        let mut queues = partition_level(init.sublists, threads);

        loop {
            let total_tasks: usize = queues.iter().map(Vec::len).sum();
            if total_tasks == 0 {
                break;
            }
            if let Some(mx) = self.config.enum_config.max_k {
                if k >= mx {
                    break;
                }
            }
            // Snapshot this level before consuming it: the barrier hook
            // checkpoints it, the memory watchdog inspects it, and a
            // failed round retries from it.
            let level_view = Level {
                k,
                sublists: queues.iter().flatten().cloned().collect(),
            };
            let memory = LevelMemory::account(&level_view, g.n());
            match barrier(&level_view, &memory, sink)? {
                BarrierControl::Continue => {}
                BarrierControl::Degrade => {
                    stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                    return Ok(ParallelOutcome::Degraded {
                        level: level_view,
                        stats,
                    });
                }
                BarrierControl::Halt => {
                    stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                    return Ok(ParallelOutcome::Interrupted { stats });
                }
            }

            // One level-synchronous round: workers expand their local
            // sub-lists with no cross-talk.
            let deadline = self.config.worker_deadline;
            let batches: Vec<Vec<SubList<S>>> = std::mem::take(&mut queues);
            let first = self.pool.lock().run_round_supervised(
                batches,
                worker_job(Arc::clone(g), Arc::clone(&rows)),
                deadline,
            );
            let mut retried = false;
            let outputs = match first {
                Ok(outputs) => outputs,
                Err(round_error) => {
                    // The whole round is discarded; re-partition the
                    // snapshot and retry once on respawned workers.
                    let retry_batches = partition_level(level_view.sublists.clone(), threads);
                    // Bind before matching: a `self.pool.lock()` in the
                    // scrutinee would hold the guard across every arm,
                    // deadlocking the quarantine arm's own lock.
                    let retry = self.pool.lock().run_round_supervised(
                        retry_batches,
                        worker_job(Arc::clone(g), Arc::clone(&rows)),
                        deadline,
                    );
                    match retry {
                        Ok(outputs) => {
                            stats.retried_levels.push(k);
                            retried = true;
                            outputs
                        }
                        Err(error) if self.quarantine.is_some() => {
                            // Last resort before aborting: isolate the
                            // poison sub-lists, quarantine them, and
                            // keep the level going without them.
                            let _ = round_error; // superseded
                            match self.quarantine_level(g, &rows, &level_view, threads, &error) {
                                Ok((outputs, n_quarantined)) => {
                                    stats.retried_levels.push(k);
                                    stats.quarantined += n_quarantined;
                                    retried = true;
                                    outputs
                                }
                                Err(e) => {
                                    stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                                    return Err(e);
                                }
                            }
                        }
                        Err(error) => {
                            let _ = round_error; // superseded by the retry's error
                            stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                            return Err(ParallelRunError::Round {
                                k,
                                error,
                                level: level_view,
                            });
                        }
                    }
                }
            };
            drop(level_view);

            // Scheduler: collect results, report cliques in canonical
            // order, update stats.
            let mut per_worker_ns = Vec::with_capacity(threads);
            let mut per_worker_units = Vec::with_capacity(threads);
            let mut per_worker_tasks = Vec::with_capacity(threads);
            let mut and_ops = 0u64;
            let mut maximality_tests = 0u64;
            let mut maximal: Vec<Clique> = Vec::new();
            let mut new_queues: Vec<Vec<SubList<S>>> = Vec::with_capacity(threads);
            for (out, ns) in outputs {
                per_worker_ns.push(ns);
                per_worker_units.push(out.units);
                per_worker_tasks.push(out.tasks);
                and_ops += out.and_ops;
                maximality_tests += out.tests;
                maximal.extend(out.maximal);
                new_queues.push(out.new_sublists);
            }
            maximal.sort();
            let maximal_found = maximal.len();
            for c in &maximal {
                sink.maximal(c);
            }
            stats.total_maximal += maximal_found;

            // Load balancing decision (paper: after collecting results,
            // transfer from the heaviest to the lightest when the gap
            // exceeds the threshold).
            let transfers = match self.config.strategy {
                BalanceStrategy::Dynamic => {
                    let mut cost_queues: Vec<Vec<u64>> = new_queues
                        .iter()
                        .map(|q| q.iter().map(SubList::cost).collect())
                        .collect();
                    let moves = rebalance(&mut cost_queues, &self.config.policy);
                    for m in &moves {
                        let sl = new_queues[m.from].remove(m.task);
                        new_queues[m.to].push(sl);
                    }
                    moves.len()
                }
                BalanceStrategy::Static => 0,
                BalanceStrategy::Repartition => {
                    let flat: Vec<SubList<S>> = new_queues.drain(..).flatten().collect();
                    new_queues = partition_level(flat, threads);
                    0
                }
            };

            stats.levels.push(LevelReport {
                k,
                sublists: memory.n_sublists,
                candidates: memory.n_cliques,
                maximal_found,
                ns: *per_worker_ns.iter().max().unwrap_or(&0),
                memory,
                and_ops,
                maximality_tests,
                spilled: 0,
                bytes_read: 0,
            });
            stats.run.levels.push(LevelStats {
                level: k,
                per_worker_ns,
                per_worker_units,
                per_worker_tasks,
                transfers,
            });
            observe(
                stats.levels.last().expect("just pushed"),
                stats.run.levels.last().expect("just pushed"),
                retried,
            );
            queues = new_queues;
            k += 1;
        }
        stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
        Ok(ParallelOutcome::Complete(stats))
    }

    /// Isolate a level that failed its retry: rerun the batches of the
    /// workers that *didn't* fail (all-or-nothing still applies to
    /// them), then probe the failed workers' sub-lists one per worker
    /// so each failure pins down exactly one sub-list. Poison sub-lists
    /// go to the quarantine sidecar; everything else is folded back
    /// into the level's outputs. Returns the merged per-worker outputs
    /// and how many sub-lists were quarantined.
    #[allow(clippy::type_complexity)]
    fn quarantine_level<S: NeighborSet>(
        &self,
        g: &Arc<BitGraph>,
        rows: &Arc<Vec<S>>,
        level_view: &Level<S>,
        threads: usize,
        error: &RoundError,
    ) -> Result<(Vec<(WorkerOut<S>, u64)>, usize), ParallelRunError<S>> {
        let path = self.quarantine.as_ref().expect("caller checked");
        let deadline = self.config.worker_deadline;
        // The retry round's partition is deterministic (LPT over the
        // same snapshot), so recreating it maps each reported worker
        // failure back onto the exact batch that triggered it.
        let batches = partition_level(level_view.sublists.clone(), threads);
        let mut failed = vec![false; threads];
        for f in &error.failures {
            if let Some(slot) = failed.get_mut(f.worker) {
                *slot = true;
            }
        }
        let mut suspects: Vec<SubList<S>> = Vec::new();
        let mut clean_batches: Vec<Vec<SubList<S>>> = Vec::with_capacity(threads);
        for (w, batch) in batches.into_iter().enumerate() {
            if failed[w] {
                suspects.extend(batch);
                clean_batches.push(Vec::new());
            } else {
                clean_batches.push(batch);
            }
        }
        let mut outputs = self
            .pool
            .lock()
            .run_round_supervised(
                clean_batches,
                worker_job(Arc::clone(g), Arc::clone(rows)),
                deadline,
            )
            .map_err(|error| ParallelRunError::Round {
                k: level_view.k,
                error,
                level: level_view.clone(),
            })?;
        // Probe the suspects in waves of one sub-list per worker.
        let mut entries: Vec<QuarantineEntry> = Vec::new();
        for wave in suspects.chunks(threads) {
            let mut probe_batches: Vec<Vec<SubList<S>>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (j, sl) in wave.iter().enumerate() {
                probe_batches[j] = vec![sl.clone()];
            }
            let slots = self.pool.lock().run_round_isolated(
                probe_batches,
                worker_job(Arc::clone(g), Arc::clone(rows)),
                deadline,
            );
            for (j, slot) in slots.into_iter().enumerate() {
                let Some(suspect) = wave.get(j) else {
                    continue; // padding slot (empty batch)
                };
                match slot {
                    Ok((out, ns)) => {
                        let (acc, acc_ns) = &mut outputs[j];
                        acc.new_sublists.extend(out.new_sublists);
                        acc.maximal.extend(out.maximal);
                        acc.tasks += out.tasks;
                        acc.units += out.units;
                        acc.and_ops += out.and_ops;
                        acc.tests += out.tests;
                        *acc_ns += ns;
                    }
                    Err(failure) => entries.push(QuarantineEntry {
                        k: level_view.k as u64,
                        prefix: suspect.prefix.clone(),
                        tails: suspect.tails.clone(),
                        reason: failure.panic_message,
                    }),
                }
            }
        }
        let n_quarantined = entries.len();
        crate::quarantine::append_entries(path, &entries)
            .map_err(|e| ParallelRunError::Store(StoreError::Io(e)))?;
        Ok((outputs, n_quarantined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use crate::Vertex;
    use gsb_graph::generators::{gnp, planted, Module};

    fn parallel_sorted(g: &BitGraph, config: ParallelConfig) -> (Vec<Vec<Vertex>>, ParallelStats) {
        let g = Arc::new(g.clone());
        let mut sink = CollectSink::default();
        let stats = ParallelEnumerator::new(config).enumerate(&g, &mut sink);
        let mut cliques = sink.cliques;
        cliques.sort();
        (cliques, stats)
    }

    fn bk_at_least(g: &BitGraph, min_k: usize) -> Vec<Vec<Vertex>> {
        base_bk_sorted(g)
            .into_iter()
            .filter(|c| c.len() >= min_k)
            .collect()
    }

    #[test]
    fn matches_sequential_for_all_thread_counts() {
        let g = planted(36, 0.1, &[Module::clique(9), Module::clique(7)], 4);
        let expect = bk_at_least(&g, 3);
        for threads in [1, 2, 3, 4, 8] {
            let (got, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn all_strategies_agree() {
        let g = gnp(32, 0.35, 7);
        let expect = bk_at_least(&g, 3);
        for strategy in [
            BalanceStrategy::Dynamic,
            BalanceStrategy::Static,
            BalanceStrategy::Repartition,
        ] {
            let (got, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            );
            assert_eq!(got, expect, "{strategy:?}");
        }
    }

    #[test]
    fn seeded_parallel_matches() {
        let g = planted(32, 0.12, &[Module::clique(10)], 11);
        let expect = bk_at_least(&g, 6);
        let (got, _) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 3,
                enum_config: EnumConfig {
                    min_k: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn stats_populated() {
        let g = planted(30, 0.1, &[Module::clique(8)], 3);
        let (cliques, stats) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(stats.total_maximal, cliques.len());
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.run.levels.len(), stats.levels.len());
        for l in &stats.run.levels {
            assert_eq!(l.per_worker_ns.len(), 4);
        }
        assert!(stats.run.wall_ns > 0);
        assert!(stats.retried_levels.is_empty());
    }

    #[test]
    fn output_in_non_decreasing_size_order() {
        let g = planted(30, 0.1, &[Module::clique(8), Module::clique(5)], 6);
        let garc = Arc::new(g);
        let mut sink = CollectSink::default();
        ParallelEnumerator::new(ParallelConfig {
            threads: 4,
            ..Default::default()
        })
        .enumerate(&garc, &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_graph_no_hang() {
        let (got, stats) = parallel_sorted(
            &BitGraph::new(0),
            ParallelConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(got.is_empty());
        assert_eq!(stats.total_maximal, 0);
    }

    #[test]
    fn resilient_from_snapshot_matches_rest_of_run() {
        // Step sequentially to the level-3 barrier, then hand the level
        // to the resilient parallel driver as a resume snapshot.
        let g = planted(34, 0.1, &[Module::clique(8), Module::clique(6)], 9);
        let expect = bk_at_least(&g, 3);

        let seq = crate::enumerator::CliqueEnumerator::new(EnumConfig::default());
        let mut sink = CollectSink::default();
        let mut init_stats = crate::enumerator::EnumStats::default();
        let mut level = seq.init_level(&g, &mut sink, &mut init_stats);
        while level.k < 3 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut sink);
            level = next;
        }
        let garc = Arc::new(g.clone());
        let outcome = ParallelEnumerator::new(ParallelConfig {
            threads: 3,
            ..Default::default()
        })
        .enumerate_resilient(&garc, Some(level), &mut sink, |_l, _m, _s| {
            Ok(BarrierControl::Continue)
        })
        .expect("resilient run");
        assert!(matches!(outcome, ParallelOutcome::Complete(_)));
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn barrier_degrade_hands_back_unexpanded_level() {
        let g = planted(30, 0.1, &[Module::clique(8)], 5);
        let garc = Arc::new(g.clone());
        let mut sink = CollectSink::default();
        let enumerator = ParallelEnumerator::new(ParallelConfig {
            threads: 2,
            ..Default::default()
        });
        let outcome = enumerator
            .enumerate_resilient(&garc, None::<Level>, &mut sink, |level, _m, _s| {
                Ok(if level.k >= 4 {
                    BarrierControl::Degrade
                } else {
                    BarrierControl::Continue
                })
            })
            .expect("resilient run");
        let ParallelOutcome::Degraded { level, .. } = outcome else {
            panic!("expected degradation at k=4");
        };
        assert_eq!(level.k, 4);
        assert!(!level.sublists.is_empty());
        // continuing sequentially from the handoff completes the run
        let seq = crate::enumerator::CliqueEnumerator::new(EnumConfig::default());
        seq.enumerate_from_level(&g, level, &mut sink);
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, bk_at_least(&g, 3));
    }
}
