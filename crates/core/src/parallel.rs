//! The multithreaded Clique Enumerator (§2.3, "Parallelism for
//! shared-memory machines").
//!
//! Faithful to the paper's runtime: persistent worker threads expand
//! their *local* sub-lists independently (no communication inside a
//! level); a centralized task scheduler synchronizes levels, collects
//! results, and transfers sub-lists from heavy to light workers when the
//! spread exceeds the threshold policy — transfers move owned structures
//! between queues, i.e. addresses, not data, exactly as on the Altix.
//!
//! Determinism: within a level the set of maximal cliques is
//! independent of the partition; results are sorted per level before
//! delivery, so output order is identical to the sequential enumerator
//! up to within-level ordering.

use crate::enumerator::{EnumConfig, LevelReport};
use crate::memory::LevelMemory;
use crate::sink::{CliqueSink, CollectSink};
use crate::sublist::{Level, SubList};
use crate::Clique;
use gsb_bitset::BitSet;
use gsb_graph::BitGraph;
use gsb_par::balance::{partition_greedy, rebalance, BalancePolicy};
use gsb_par::stats::{LevelStats, RunStats};
use gsb_par::WorkerPool;
use std::sync::Arc;
use std::time::Instant;

/// How work is distributed across levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// The paper's centralized dynamic balancer: children stay on their
    /// parent's worker; after each level, transfer sub-lists when the
    /// load spread exceeds the policy threshold.
    Dynamic,
    /// No balancing after the initial partition (ablation A2).
    Static,
    /// Re-partition every level from scratch with LPT (upper reference
    /// for balance quality; ignores affinity).
    Repartition,
}

/// Configuration of a parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Size bounds and seeding, as for the sequential enumerator.
    pub enum_config: EnumConfig,
    /// Transfer threshold policy.
    pub policy: BalancePolicy,
    /// Distribution strategy.
    pub strategy: BalanceStrategy,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 4,
            enum_config: EnumConfig::default(),
            policy: BalancePolicy::default(),
            strategy: BalanceStrategy::Dynamic,
        }
    }
}

/// Statistics of a parallel run.
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Per-level algorithmic reports (counts, memory).
    pub levels: Vec<LevelReport>,
    /// Per-level, per-worker timing (Fig. 8's raw data).
    pub run: RunStats,
    /// Total maximal cliques reported.
    pub total_maximal: usize,
}

/// What one worker returns for one level.
struct WorkerOut {
    new_sublists: Vec<SubList>,
    maximal: Vec<Clique>,
    tasks: usize,
    units: u64,
}

/// The multithreaded Clique Enumerator.
pub struct ParallelEnumerator {
    /// Run configuration.
    pub config: ParallelConfig,
    pool: WorkerPool,
}

impl ParallelEnumerator {
    /// Build an enumerator (spawns the worker pool).
    pub fn new(config: ParallelConfig) -> Self {
        ParallelEnumerator {
            pool: WorkerPool::new(config.threads),
            config,
        }
    }

    /// Enumerate maximal cliques of `g`, delivering them level by level
    /// (non-decreasing size) into `sink`.
    pub fn enumerate(&self, g: &Arc<BitGraph>, sink: &mut impl CliqueSink) -> ParallelStats {
        let wall = Instant::now();
        let mut stats = ParallelStats::default();
        let threads = self.pool.threads();

        // Initialization is sequential and cheap relative to expansion.
        let seq = crate::enumerator::CliqueEnumerator::new(self.config.enum_config);
        let mut init_stats = crate::enumerator::EnumStats::default();
        let init = seq.init_level(g, sink, &mut init_stats);
        stats.total_maximal += init_stats.total_maximal;
        let mut k = init.k;

        // Initial distribution: LPT over estimated sub-list costs.
        let costs: Vec<u64> = init.sublists.iter().map(SubList::cost).collect();
        let parts = partition_greedy(&costs, threads);
        let mut queues: Vec<Vec<SubList>> = vec![Vec::new(); threads];
        let mut sublists: Vec<Option<SubList>> = init.sublists.into_iter().map(Some).collect();
        for (w, idxs) in parts.iter().enumerate() {
            for &i in idxs {
                queues[w].push(sublists[i].take().expect("each task assigned once"));
            }
        }

        loop {
            let total_tasks: usize = queues.iter().map(Vec::len).sum();
            if total_tasks == 0 {
                break;
            }
            if let Some(mx) = self.config.enum_config.max_k {
                if k >= mx {
                    break;
                }
            }
            // Account this level before consuming it.
            let level_view = Level {
                k,
                sublists: queues.iter().flatten().cloned().collect(),
            };
            let memory = LevelMemory::account(&level_view, g.n());
            drop(level_view);

            // One level-synchronous round: workers expand their local
            // sub-lists with no cross-talk.
            let batches: Vec<Vec<SubList>> = std::mem::take(&mut queues);
            let graph = Arc::clone(g);
            let outputs = self.pool.run_round(batches, move |_w, batch: Vec<SubList>| {
                let local_m: usize = batch.iter().map(SubList::len).sum();
                let mut out = WorkerOut {
                    // paper's bound N[k+1] <= M[k] - 2N[k], per worker
                    new_sublists: Vec::with_capacity(
                        local_m.saturating_sub(2 * batch.len()),
                    ),
                    maximal: Vec::new(),
                    tasks: batch.len(),
                    units: 0,
                };
                let mut collect = CollectSink::default();
                let mut buf = BitSet::new(graph.n());
                for sl in &batch {
                    let (_found, units) = crate::enumerator::expand_sublist(
                        &graph,
                        sl,
                        &mut buf,
                        &mut collect,
                        &mut out.new_sublists,
                    );
                    out.units += units;
                }
                out.maximal = collect.cliques;
                out
            });

            // Scheduler: collect results, report cliques in canonical
            // order, update stats.
            let mut per_worker_ns = Vec::with_capacity(threads);
            let mut per_worker_units = Vec::with_capacity(threads);
            let mut per_worker_tasks = Vec::with_capacity(threads);
            let mut maximal: Vec<Clique> = Vec::new();
            let mut new_queues: Vec<Vec<SubList>> = Vec::with_capacity(threads);
            for (out, ns) in outputs {
                per_worker_ns.push(ns);
                per_worker_units.push(out.units);
                per_worker_tasks.push(out.tasks);
                maximal.extend(out.maximal);
                new_queues.push(out.new_sublists);
            }
            maximal.sort();
            let maximal_found = maximal.len();
            for c in &maximal {
                sink.maximal(c);
            }
            stats.total_maximal += maximal_found;

            // Load balancing decision (paper: after collecting results,
            // transfer from the heaviest to the lightest when the gap
            // exceeds the threshold).
            let transfers = match self.config.strategy {
                BalanceStrategy::Dynamic => {
                    let mut cost_queues: Vec<Vec<u64>> = new_queues
                        .iter()
                        .map(|q| q.iter().map(SubList::cost).collect())
                        .collect();
                    let moves = rebalance(&mut cost_queues, &self.config.policy);
                    for m in &moves {
                        let sl = new_queues[m.from].remove(m.task);
                        new_queues[m.to].push(sl);
                    }
                    moves.len()
                }
                BalanceStrategy::Static => 0,
                BalanceStrategy::Repartition => {
                    let flat: Vec<SubList> = new_queues.drain(..).flatten().collect();
                    let costs: Vec<u64> = flat.iter().map(SubList::cost).collect();
                    let parts = partition_greedy(&costs, threads);
                    let mut slots: Vec<Option<SubList>> = flat.into_iter().map(Some).collect();
                    new_queues = parts
                        .iter()
                        .map(|idxs| {
                            idxs.iter()
                                .map(|&i| slots[i].take().expect("assigned once"))
                                .collect()
                        })
                        .collect();
                    0
                }
            };

            stats.levels.push(LevelReport {
                k,
                sublists: memory.n_sublists,
                candidates: memory.n_cliques,
                maximal_found,
                ns: *per_worker_ns.iter().max().unwrap_or(&0),
                memory,
            });
            stats.run.levels.push(LevelStats {
                level: k,
                per_worker_ns,
                per_worker_units,
                per_worker_tasks,
                transfers,
            });
            queues = new_queues;
            k += 1;
        }
        stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use crate::Vertex;
    use gsb_graph::generators::{gnp, planted, Module};

    fn parallel_sorted(g: &BitGraph, config: ParallelConfig) -> (Vec<Vec<Vertex>>, ParallelStats) {
        let g = Arc::new(g.clone());
        let mut sink = CollectSink::default();
        let stats = ParallelEnumerator::new(config).enumerate(&g, &mut sink);
        let mut cliques = sink.cliques;
        cliques.sort();
        (cliques, stats)
    }

    fn bk_at_least(g: &BitGraph, min_k: usize) -> Vec<Vec<Vertex>> {
        base_bk_sorted(g)
            .into_iter()
            .filter(|c| c.len() >= min_k)
            .collect()
    }

    #[test]
    fn matches_sequential_for_all_thread_counts() {
        let g = planted(36, 0.1, &[Module::clique(9), Module::clique(7)], 4);
        let expect = bk_at_least(&g, 3);
        for threads in [1, 2, 3, 4, 8] {
            let (got, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn all_strategies_agree() {
        let g = gnp(32, 0.35, 7);
        let expect = bk_at_least(&g, 3);
        for strategy in [
            BalanceStrategy::Dynamic,
            BalanceStrategy::Static,
            BalanceStrategy::Repartition,
        ] {
            let (got, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            );
            assert_eq!(got, expect, "{strategy:?}");
        }
    }

    #[test]
    fn seeded_parallel_matches() {
        let g = planted(32, 0.12, &[Module::clique(10)], 11);
        let expect = bk_at_least(&g, 6);
        let (got, _) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 3,
                enum_config: EnumConfig {
                    min_k: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn stats_populated() {
        let g = planted(30, 0.1, &[Module::clique(8)], 3);
        let (cliques, stats) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(stats.total_maximal, cliques.len());
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.run.levels.len(), stats.levels.len());
        for l in &stats.run.levels {
            assert_eq!(l.per_worker_ns.len(), 4);
        }
        assert!(stats.run.wall_ns > 0);
    }

    #[test]
    fn output_in_non_decreasing_size_order() {
        let g = planted(30, 0.1, &[Module::clique(8), Module::clique(5)], 6);
        let garc = Arc::new(g);
        let mut sink = CollectSink::default();
        ParallelEnumerator::new(ParallelConfig {
            threads: 4,
            ..Default::default()
        })
        .enumerate(&garc, &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_graph_no_hang() {
        let (got, stats) = parallel_sorted(
            &BitGraph::new(0),
            ParallelConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(got.is_empty());
        assert_eq!(stats.total_maximal, 0);
    }
}
