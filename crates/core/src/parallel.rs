//! The multithreaded Clique Enumerator (§2.3, "Parallelism for
//! shared-memory machines") — under either of two schedulers.
//!
//! [`Scheduler::Barrier`] is faithful to the paper's runtime:
//! persistent worker threads expand their *local* sub-lists
//! independently (no communication inside a level); a centralized task
//! scheduler synchronizes levels, collects results, and transfers
//! sub-lists from heavy to light workers when the spread exceeds the
//! threshold policy — transfers move owned structures between queues,
//! i.e. addresses, not data, exactly as on the Altix.
//!
//! [`Scheduler::Steal`] (the default) replaces the level barrier with a
//! *steal-scope epoch*: every sub-list is its own task on its owner's
//! deque, idle workers steal (owner-LIFO / thief-FIFO), and the level
//! ends at quiescence — which is where the barrier hooks (checkpoint,
//! degradation, halt) re-attach with unchanged semantics. Children stay
//! on the worker that produced them as the next epoch's seed queues, so
//! the paper's task-affinity property survives; the centralized
//! balancer is retired on this path because stealing balances online.
//!
//! Determinism: within a level the set of maximal cliques is
//! independent of the partition *and* of the steal schedule; results
//! are staged per level and released sorted (see
//! [`crate::sink::SequencingSink`]), so output is byte-identical to the
//! sequential enumerator under both schedulers.
//!
//! ## Fault tolerance
//!
//! [`enumerate_resilient`](ParallelEnumerator::enumerate_resilient) is
//! the crash-aware driver: a round whose worker panics is discarded
//! wholesale (no partial emissions), dead threads are respawned, and
//! the level is retried once from its snapshot before the failure is
//! surfaced as a typed [`ParallelRunError`]. A per-level barrier hook
//! lets the pipeline write checkpoints and demand degradation to the
//! out-of-core path mid-flight, or halt for a graceful signal-driven
//! shutdown ([`BarrierControl::Halt`]).
//!
//! ## Supervision
//!
//! With a worker deadline configured
//! ([`ParallelConfig::worker_deadline`]) workers heartbeat once per
//! sub-list; a thread silent past the deadline is declared stuck and
//! abandoned, not waited on forever. With a quarantine sidecar
//! configured ([`ParallelEnumerator::quarantine_to`]) a level whose
//! retry also fails is *isolated* instead of aborted: the suspect
//! sub-lists are probed one per worker, the poison ones are recorded to
//! `quarantine.jsonl` and skipped, and the level continues — degraded
//! exact, never silently dropped (see [`crate::quarantine`]).

use crate::backend::InMemoryLevel;
use crate::enumerator::{EnumConfig, LevelReport};
use crate::memory::LevelMemory;
use crate::quarantine::QuarantineEntry;
use crate::sink::{CliqueSink, CollectSink, SequencingSink};
use crate::store::StoreError;
use crate::sublist::{Level, SubList};
use crate::Clique;
use gsb_bitset::{BitSet, NeighborSet};
use gsb_graph::BitGraph;
use gsb_par::balance::{partition_greedy, rebalance, BalancePolicy};
use gsb_par::pool::EpochOut;
use gsb_par::stats::{LevelStats, RunStats};
use gsb_par::{Heartbeat, RoundError, WorkerFailure, WorkerPool};
use parking_lot::Mutex;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How work is distributed across levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// The paper's centralized dynamic balancer: children stay on their
    /// parent's worker; after each level, transfer sub-lists when the
    /// load spread exceeds the policy threshold.
    Dynamic,
    /// No balancing after the initial partition (ablation A2).
    Static,
    /// Re-partition every level from scratch with LPT (upper reference
    /// for balance quality; ignores affinity).
    Repartition,
}

/// Which runtime drives each level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// The paper's level-synchronous rounds: pre-partitioned batches,
    /// a barrier per level, and the centralized spread balancer. Kept
    /// as the differential oracle for the steal scheduler.
    Barrier,
    /// Work-stealing steal-scope epochs: per-worker deques of
    /// individual sub-lists, idle workers steal, and the level's
    /// barrier hooks run at epoch quiescence. Balances online, so no
    /// centralized balancer runs between levels.
    #[default]
    Steal,
}

impl fmt::Display for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scheduler::Barrier => "barrier",
            Scheduler::Steal => "steal",
        })
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "barrier" => Ok(Scheduler::Barrier),
            "steal" => Ok(Scheduler::Steal),
            other => Err(format!(
                "unknown scheduler '{other}' (expected 'barrier' or 'steal')"
            )),
        }
    }
}

/// Configuration of a parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Size bounds and seeding, as for the sequential enumerator.
    pub enum_config: EnumConfig,
    /// Transfer threshold policy (barrier scheduler only).
    pub policy: BalancePolicy,
    /// Distribution strategy (barrier scheduler only; the steal
    /// scheduler always keeps children on their parent's worker and
    /// lets stealing correct any imbalance online).
    pub strategy: BalanceStrategy,
    /// Which runtime drives each level.
    pub scheduler: Scheduler,
    /// Stuck-worker deadline: a worker whose per-sub-list heartbeats
    /// stop advancing for this long is declared dead and abandoned.
    /// `None` (the default) disables the watchdog — a wedged thread
    /// then blocks the level barrier indefinitely.
    pub worker_deadline: Option<Duration>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 4,
            enum_config: EnumConfig::default(),
            policy: BalancePolicy::default(),
            strategy: BalanceStrategy::Dynamic,
            scheduler: Scheduler::default(),
            worker_deadline: None,
        }
    }
}

/// Statistics of a parallel run.
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Per-level algorithmic reports (counts, memory).
    pub levels: Vec<LevelReport>,
    /// Per-level, per-worker timing (Fig. 8's raw data).
    pub run: RunStats,
    /// Total maximal cliques reported.
    pub total_maximal: usize,
    /// Levels whose first round failed (worker panic) and were retried
    /// successfully from their snapshot.
    pub retried_levels: Vec<usize>,
    /// Individual tasks that panicked once and succeeded on the steal
    /// scheduler's inline retry (always 0 under the barrier scheduler,
    /// which can only retry whole levels).
    pub retried_tasks: u64,
    /// Sub-lists isolated into the quarantine sidecar and skipped
    /// (degraded-exact mode): their descendant cliques are missing from
    /// the output but recorded, never silently dropped.
    pub quarantined: usize,
}

/// Verdict of the per-level barrier hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierControl {
    /// Expand this level as usual.
    Continue,
    /// Stop the in-core parallel run and hand the level back (the
    /// pipeline continues it out of core).
    Degrade,
    /// Stop the run entirely (graceful shutdown): the barrier has
    /// already persisted what it needs; nothing further is expanded.
    Halt,
}

/// How a resilient parallel run ended. Generic over the bitmap
/// representation the run enumerated with (dense by default).
pub enum ParallelOutcome<S: NeighborSet = BitSet> {
    /// Ran to completion.
    Complete(ParallelStats),
    /// The barrier hook demanded degradation; `level` is unexpanded and
    /// everything of size `< level.k + 1` was already emitted.
    Degraded {
        /// The snapshot to continue from.
        level: Level<S>,
        /// Statistics up to the handoff.
        stats: ParallelStats,
    },
    /// The barrier hook demanded a halt (graceful shutdown). The
    /// barrier persisted its final checkpoint before asking, so the
    /// outcome only carries the statistics.
    Interrupted {
        /// Statistics up to the halt.
        stats: ParallelStats,
    },
}

/// A resilient parallel run failed.
#[derive(Debug)]
pub enum ParallelRunError<S: NeighborSet = BitSet> {
    /// A level's round failed twice (original + one retry from the
    /// snapshot). `level` is the unexpanded snapshot, so the caller can
    /// persist a final checkpoint before aborting.
    Round {
        /// The level being expanded when the workers failed.
        k: usize,
        /// The worker failures of the retry round.
        error: RoundError,
        /// The unexpanded level snapshot.
        level: Level<S>,
    },
    /// The barrier hook (checkpoint write, budget check) failed.
    Store(StoreError),
}

impl<S: NeighborSet> fmt::Display for ParallelRunError<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelRunError::Round { k, error, .. } => {
                write!(f, "level {k} failed after retry: {error}")
            }
            ParallelRunError::Store(e) => write!(f, "barrier failed: {e}"),
        }
    }
}

impl<S: NeighborSet> std::error::Error for ParallelRunError<S> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelRunError::Round { error, .. } => Some(error),
            ParallelRunError::Store(e) => Some(e),
        }
    }
}

impl<S: NeighborSet> From<StoreError> for ParallelRunError<S> {
    fn from(e: StoreError) -> Self {
        ParallelRunError::Store(e)
    }
}

/// What one worker returns for one level.
struct WorkerOut<S: NeighborSet> {
    new_sublists: Vec<SubList<S>>,
    maximal: Vec<Clique>,
    tasks: usize,
    units: u64,
    and_ops: u64,
    tests: u64,
}

/// The per-round job: expand a batch of sub-lists locally, no
/// cross-talk. Built by a free function so a retry can recreate it
/// after the original closure was consumed by the failed round. The
/// per-vertex neighbor rows (already converted to `S`) are shared
/// across workers and rounds.
fn worker_job<S: NeighborSet>(
    graph: Arc<BitGraph>,
    rows: Arc<Vec<S>>,
) -> impl Fn(usize, Vec<SubList<S>>, &Heartbeat) -> WorkerOut<S> + Send + Sync {
    move |w, batch: Vec<SubList<S>>, hb: &Heartbeat| {
        if let Err(e) = crate::failpoint::inject("parallel.worker") {
            panic!("{e}");
        }
        let local_m: usize = batch.iter().map(SubList::len).sum();
        // paper's bound N[k+1] <= M[k] - 2N[k], per worker
        let mut new_sublists: Vec<SubList<S>> =
            Vec::with_capacity(local_m.saturating_sub(2 * batch.len()));
        let (mut units, mut and_ops, mut tests) = (0u64, 0u64, 0u64);
        let mut collect = CollectSink::default();
        let mut buf = S::empty(graph.n());
        for sl in &batch {
            // One beat per sub-list: the supervisor's stuck-worker
            // deadline measures *progress between sub-lists*, so a
            // worker grinding through a huge batch is alive while a
            // wedged one is not.
            hb.beat(w);
            // Per-sub-list failpoint, keyed by prefix, so tests can
            // poison exactly one sub-list. Gated: the tag string is
            // never built in production runs.
            #[cfg(feature = "failpoints")]
            {
                let tag = sl
                    .prefix
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("-");
                if let Err(e) = crate::failpoint::inject_tagged("parallel.sublist", &tag) {
                    panic!("{e}");
                }
            }
            let expanded =
                crate::enumerator::expand_sublist(&graph, &rows, sl, &mut buf, &mut collect, |c| {
                    new_sublists.push(c)
                });
            units += expanded.units;
            and_ops += expanded.and_ops;
            tests += expanded.tests;
        }
        WorkerOut {
            new_sublists,
            maximal: collect.cliques,
            tasks: batch.len(),
            units,
            and_ops,
            tests,
        }
    }
}

/// What one steal-scheduler task (a single sub-list) produces.
struct TaskOut<S: NeighborSet> {
    new_sublists: Vec<SubList<S>>,
    maximal: Vec<Clique>,
    units: u64,
    and_ops: u64,
    tests: u64,
}

/// The per-task job of the work-stealing scheduler: expand exactly one
/// sub-list. The pool heartbeats before each task, so the stuck-worker
/// deadline measures progress *between sub-lists*, same as the barrier
/// path's per-sub-list beat.
fn steal_task_job<S: NeighborSet>(
    graph: Arc<BitGraph>,
    rows: Arc<Vec<S>>,
) -> impl Fn(usize, &SubList<S>, &Heartbeat) -> TaskOut<S> + Send + Sync {
    move |_w, sl: &SubList<S>, _hb: &Heartbeat| {
        if let Err(e) = crate::failpoint::inject("parallel.worker") {
            panic!("{e}");
        }
        // Per-sub-list failpoint, keyed by prefix, so tests can poison
        // exactly one sub-list. Gated: the tag string is never built in
        // production runs.
        #[cfg(feature = "failpoints")]
        {
            let tag = sl
                .prefix
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("-");
            if let Err(e) = crate::failpoint::inject_tagged("parallel.sublist", &tag) {
                panic!("{e}");
            }
        }
        let mut new_sublists: Vec<SubList<S>> = Vec::new();
        let mut collect = CollectSink::default();
        let mut buf = S::empty(graph.n());
        let expanded =
            crate::enumerator::expand_sublist(&graph, &rows, sl, &mut buf, &mut collect, |c| {
                new_sublists.push(c)
            });
        TaskOut {
            new_sublists,
            maximal: collect.cliques,
            units: expanded.units,
            and_ops: expanded.and_ops,
            tests: expanded.tests,
        }
    }
}

/// Everything one level expansion produced, whichever scheduler ran it.
struct LevelExpansion<S: NeighborSet> {
    /// Next level's per-worker seed queues (children keep their
    /// producer's affinity; the barrier path additionally applies its
    /// balance strategy).
    new_queues: Vec<Vec<SubList<S>>>,
    /// Maximal cliques of the level, unsorted.
    maximal: Vec<Clique>,
    and_ops: u64,
    maximality_tests: u64,
    /// Per-worker timing with the unified moved-work count filled in.
    timing: LevelStats,
    /// Whether the whole level was discarded and re-run from its
    /// snapshot (counts toward [`ParallelStats::retried_levels`]).
    retried_level: bool,
    /// Whether anything was retried at all (level or single task) —
    /// the telemetry `retried` flag.
    retried: bool,
    /// Tasks that succeeded on an inline retry (steal scheduler only).
    retried_tasks: u64,
    /// Sub-lists isolated to the quarantine sidecar this level.
    quarantined: usize,
}

/// Partition sub-lists over `threads` queues with LPT on estimated cost.
fn partition_level<S: NeighborSet>(
    sublists: Vec<SubList<S>>,
    threads: usize,
) -> Vec<Vec<SubList<S>>> {
    let costs: Vec<u64> = sublists.iter().map(SubList::cost).collect();
    let parts = partition_greedy(&costs, threads);
    let mut queues: Vec<Vec<SubList<S>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut slots: Vec<Option<SubList<S>>> = sublists.into_iter().map(Some).collect();
    for (w, idxs) in parts.iter().enumerate() {
        for &i in idxs {
            queues[w].push(slots[i].take().expect("each task assigned once"));
        }
    }
    queues
}

/// The multithreaded Clique Enumerator.
pub struct ParallelEnumerator {
    /// Run configuration.
    pub config: ParallelConfig,
    // Mutex (not for sharing — the enumerator is used from one thread)
    // so respawning dead workers, which needs `&mut WorkerPool`, works
    // behind the long-standing `&self` entry points.
    pool: Mutex<WorkerPool>,
    /// Quarantine sidecar path; `None` keeps the historical behavior
    /// (a twice-failed level aborts the run).
    quarantine: Option<PathBuf>,
}

impl ParallelEnumerator {
    /// Build an enumerator (spawns the worker pool).
    pub fn new(config: ParallelConfig) -> Self {
        ParallelEnumerator {
            pool: Mutex::new(WorkerPool::new(config.threads)),
            config,
            quarantine: None,
        }
    }

    /// Enable the quarantine sidecar: when a level fails its retry, the
    /// poison sub-lists are isolated to `path` (JSON lines, appended)
    /// and skipped instead of aborting the run. See [`crate::quarantine`].
    pub fn quarantine_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.quarantine = Some(path.into());
        self
    }

    /// Enumerate maximal cliques of `g`, delivering them level by level
    /// (non-decreasing size) into `sink`.
    ///
    /// Panics if a worker round fails twice; use
    /// [`enumerate_resilient`](Self::enumerate_resilient) to handle
    /// failures as values.
    pub fn enumerate(&self, g: &Arc<BitGraph>, sink: &mut impl CliqueSink) -> ParallelStats {
        let outcome = self.enumerate_resilient(g, None::<Level>, sink, |_level, _mem, _sink| {
            Ok(BarrierControl::Continue)
        });
        match outcome {
            Ok(ParallelOutcome::Complete(stats)) => stats,
            Ok(ParallelOutcome::Degraded { .. }) | Ok(ParallelOutcome::Interrupted { .. }) => {
                unreachable!("no-op barrier never degrades or halts")
            }
            Err(e) => panic!("parallel enumeration failed: {e}"),
        }
    }

    /// Fault-tolerant enumeration.
    ///
    /// * `start`: `None` runs from scratch (seeding `min_k`-cliques and
    ///   emitting them as the sequential enumerator does); `Some(level)`
    ///   continues from a snapshot — e.g. a checkpoint — whose seeds
    ///   were already emitted by the original run.
    /// * `barrier` runs once per level *before* expansion, with the
    ///   level snapshot and its memory accounting; it may persist a
    ///   checkpoint (errors propagate) and may demand
    ///   [`BarrierControl::Degrade`], which stops the in-core run and
    ///   returns the unexpanded level for out-of-core continuation.
    ///
    /// A round that fails (worker panic) is discarded — partial results
    /// never reach `sink` — dead workers are respawned, and the level is
    /// retried once from its snapshot. A second failure aborts with
    /// [`ParallelRunError::Round`] carrying the snapshot, so the caller
    /// can write a final checkpoint.
    pub fn enumerate_resilient<S, K, B>(
        &self,
        g: &Arc<BitGraph>,
        start: Option<Level<S>>,
        sink: &mut K,
        barrier: B,
    ) -> Result<ParallelOutcome<S>, ParallelRunError<S>>
    where
        S: NeighborSet,
        K: CliqueSink,
        B: FnMut(&Level<S>, &LevelMemory, &mut K) -> Result<BarrierControl, StoreError>,
    {
        self.enumerate_observed(g, start, sink, barrier, |_report, _stats, _retried| {})
    }

    /// [`enumerate_resilient`](Self::enumerate_resilient) with a
    /// telemetry tap: `observe` runs right after each level completes
    /// (results collected, cliques emitted, balancer applied) with the
    /// level's algorithmic report, its per-worker timing, and whether
    /// the level's first round failed and was retried. This is how the
    /// pipeline exports one consistent record per level barrier without
    /// the workers ever touching a shared channel mid-level.
    pub fn enumerate_observed<S, K, B, O>(
        &self,
        g: &Arc<BitGraph>,
        start: Option<Level<S>>,
        sink: &mut K,
        mut barrier: B,
        mut observe: O,
    ) -> Result<ParallelOutcome<S>, ParallelRunError<S>>
    where
        S: NeighborSet,
        K: CliqueSink,
        B: FnMut(&Level<S>, &LevelMemory, &mut K) -> Result<BarrierControl, StoreError>,
        O: FnMut(&LevelReport, &LevelStats, bool),
    {
        let wall = Instant::now();
        let mut stats = ParallelStats::default();
        let threads = self.pool.lock().threads();
        let rows = Arc::new(crate::enumerator::neighbor_rows::<S>(g));

        let init = match start {
            Some(level) => level,
            None => {
                // Initialization is sequential and cheap relative to
                // expansion.
                let seq = crate::enumerator::CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(
                    self.config.enum_config,
                    (),
                );
                let mut init_stats = crate::enumerator::EnumStats::default();
                let init = seq.init_level(g, sink, &mut init_stats);
                stats.total_maximal += init_stats.total_maximal;
                init
            }
        };
        let mut k = init.k;

        // Initial distribution: LPT over estimated sub-list costs.
        let mut queues = partition_level(init.sublists, threads);

        loop {
            let total_tasks: usize = queues.iter().map(Vec::len).sum();
            if total_tasks == 0 {
                break;
            }
            if let Some(mx) = self.config.enum_config.max_k {
                if k >= mx {
                    break;
                }
            }
            // Snapshot this level before consuming it: the barrier hook
            // checkpoints it, the memory watchdog inspects it, and a
            // failed round retries from it.
            let level_view = Level {
                k,
                sublists: queues.iter().flatten().cloned().collect(),
            };
            let memory = LevelMemory::account(&level_view, g.n());
            match barrier(&level_view, &memory, sink)? {
                BarrierControl::Continue => {}
                BarrierControl::Degrade => {
                    stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                    return Ok(ParallelOutcome::Degraded {
                        level: level_view,
                        stats,
                    });
                }
                BarrierControl::Halt => {
                    stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                    return Ok(ParallelOutcome::Interrupted { stats });
                }
            }

            // Expand the level: a level-synchronous round under the
            // barrier scheduler, a steal-scope epoch under the steal
            // scheduler. Either way the sink sees nothing until the
            // level is fully collected.
            let batches: Vec<Vec<SubList<S>>> = std::mem::take(&mut queues);
            let expanded = match self.config.scheduler {
                Scheduler::Barrier => {
                    self.expand_level_barrier(g, &rows, &level_view, batches, threads)
                }
                Scheduler::Steal => {
                    self.expand_level_steal(g, &rows, &level_view, batches, threads)
                }
            };
            let expansion = match expanded {
                Ok(expansion) => expansion,
                Err(e) => {
                    stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
                    return Err(e);
                }
            };
            drop(level_view);
            if expansion.retried_level {
                stats.retried_levels.push(k);
            }
            stats.retried_tasks += expansion.retried_tasks;
            stats.quarantined += expansion.quarantined;

            // Release the level's cliques in canonical (sequential)
            // order: stage level-tagged, sort, forward — the sequencing
            // discipline that preserves the paper's size-order output
            // guarantee regardless of the completion order inside the
            // level.
            let mut seq = SequencingSink::new(&mut *sink);
            for c in expansion.maximal {
                seq.stage(k, c);
            }
            let maximal_found = seq.release(k);
            stats.total_maximal += maximal_found;

            stats.levels.push(LevelReport {
                k,
                sublists: memory.n_sublists,
                candidates: memory.n_cliques,
                maximal_found,
                ns: *expansion.timing.per_worker_ns.iter().max().unwrap_or(&0),
                memory,
                and_ops: expansion.and_ops,
                maximality_tests: expansion.maximality_tests,
                spilled: 0,
                bytes_read: 0,
            });
            stats.run.levels.push(expansion.timing);
            observe(
                stats.levels.last().expect("just pushed"),
                stats.run.levels.last().expect("just pushed"),
                expansion.retried,
            );
            queues = expansion.new_queues;
            k += 1;
        }
        stats.run.wall_ns = wall.elapsed().as_nanos() as u64;
        Ok(ParallelOutcome::Complete(stats))
    }

    /// Expand one level as a level-synchronous round (the paper's §2.3
    /// runtime): pre-partitioned batches, all-or-nothing collection, a
    /// whole-level retry on failure, and the centralized balance
    /// strategy applied to the children.
    fn expand_level_barrier<S: NeighborSet>(
        &self,
        g: &Arc<BitGraph>,
        rows: &Arc<Vec<S>>,
        level_view: &Level<S>,
        batches: Vec<Vec<SubList<S>>>,
        threads: usize,
    ) -> Result<LevelExpansion<S>, ParallelRunError<S>> {
        let deadline = self.config.worker_deadline;
        let first = self.pool.lock().run_round_supervised(
            batches,
            worker_job(Arc::clone(g), Arc::clone(rows)),
            deadline,
        );
        let mut retried_level = false;
        let mut quarantined = 0usize;
        let outputs = match first {
            Ok(outputs) => outputs,
            Err(round_error) => {
                // The whole round is discarded; re-partition the
                // snapshot and retry once on respawned workers.
                let retry_batches = partition_level(level_view.sublists.clone(), threads);
                // Bind before matching: a `self.pool.lock()` in the
                // scrutinee would hold the guard across every arm,
                // deadlocking the quarantine arm's own lock.
                let retry = self.pool.lock().run_round_supervised(
                    retry_batches,
                    worker_job(Arc::clone(g), Arc::clone(rows)),
                    deadline,
                );
                match retry {
                    Ok(outputs) => {
                        retried_level = true;
                        outputs
                    }
                    Err(error) if self.quarantine.is_some() => {
                        // Last resort before aborting: isolate the
                        // poison sub-lists, quarantine them, and
                        // keep the level going without them.
                        let _ = round_error; // superseded
                        let (outputs, n_quarantined) =
                            self.quarantine_level(g, rows, level_view, threads, &error)?;
                        retried_level = true;
                        quarantined = n_quarantined;
                        outputs
                    }
                    Err(error) => {
                        let _ = round_error; // superseded by the retry's error
                        return Err(ParallelRunError::Round {
                            k: level_view.k,
                            error,
                            level: level_view.clone(),
                        });
                    }
                }
            }
        };

        let mut timing = LevelStats {
            level: level_view.k,
            ..Default::default()
        };
        let mut and_ops = 0u64;
        let mut maximality_tests = 0u64;
        let mut maximal: Vec<Clique> = Vec::new();
        let mut new_queues: Vec<Vec<SubList<S>>> = Vec::with_capacity(threads);
        for (out, ns) in outputs {
            timing.per_worker_ns.push(ns);
            timing.per_worker_units.push(out.units);
            timing.per_worker_tasks.push(out.tasks);
            and_ops += out.and_ops;
            maximality_tests += out.tests;
            maximal.extend(out.maximal);
            new_queues.push(out.new_sublists);
        }

        // Load balancing decision (paper: after collecting results,
        // transfer from the heaviest to the lightest when the gap
        // exceeds the threshold).
        timing.transfers = match self.config.strategy {
            BalanceStrategy::Dynamic => {
                rebalance(&mut new_queues, SubList::cost, &self.config.policy)
            }
            BalanceStrategy::Static => 0,
            BalanceStrategy::Repartition => {
                let flat: Vec<SubList<S>> = new_queues.drain(..).flatten().collect();
                new_queues = partition_level(flat, threads);
                0
            }
        };

        Ok(LevelExpansion {
            new_queues,
            maximal,
            and_ops,
            maximality_tests,
            timing,
            retried_level,
            retried: retried_level,
            retried_tasks: 0,
            quarantined,
        })
    }

    /// Expand one level as a steal-scope epoch: each sub-list is its
    /// own task, idle workers steal, and children stay on the worker
    /// that produced them as the next epoch's seed queues. A task that
    /// panics is retried inline once by the pool; a deterministic
    /// double-panic convicts just that sub-list — quarantined and
    /// skipped when the sidecar is configured, otherwise surfaced as a
    /// level failure (the barrier path's abort semantics). Only
    /// supervision failures (stuck worker, dead thread) discard the
    /// epoch wholesale, which then gets the same one-retry-per-level
    /// treatment as a barrier round.
    fn expand_level_steal<S: NeighborSet>(
        &self,
        g: &Arc<BitGraph>,
        rows: &Arc<Vec<S>>,
        level_view: &Level<S>,
        queues: Vec<Vec<SubList<S>>>,
        threads: usize,
    ) -> Result<LevelExpansion<S>, ParallelRunError<S>> {
        let deadline = self.config.worker_deadline;
        let first = self.pool.lock().run_epoch(
            queues,
            steal_task_job(Arc::clone(g), Arc::clone(rows)),
            deadline,
        );
        let mut retried_level = false;
        let out = match first {
            Ok(out) => out,
            Err(round_error) => {
                // Supervision failure: the epoch was frozen and its
                // results discarded. Re-seed from the snapshot and
                // retry once on respawned workers.
                let retry_queues = partition_level(level_view.sublists.clone(), threads);
                let retry = self.pool.lock().run_epoch(
                    retry_queues,
                    steal_task_job(Arc::clone(g), Arc::clone(rows)),
                    deadline,
                );
                match retry {
                    Ok(out) => {
                        retried_level = true;
                        out
                    }
                    Err(_) if self.quarantine.is_some() => {
                        // A steal schedule doesn't map failures onto
                        // deterministic batches, so isolation falls
                        // back to the barrier machinery for this one
                        // level: its deterministic retry + probe
                        // rounds pin the poison sub-list(s) exactly.
                        let batches = partition_level(level_view.sublists.clone(), threads);
                        let _ = round_error; // superseded
                        return self.expand_level_barrier(g, rows, level_view, batches, threads);
                    }
                    Err(error) => {
                        let _ = round_error; // superseded by the retry's error
                        return Err(ParallelRunError::Round {
                            k: level_view.k,
                            error,
                            level: level_view.clone(),
                        });
                    }
                }
            }
        };

        // Convicted tasks: quarantine them (degraded-exact, recorded)
        // or fail the level exactly as a twice-failed barrier round
        // would — the sink has seen nothing of this level either way.
        let mut quarantined = 0usize;
        if !out.poisoned.is_empty() {
            match &self.quarantine {
                Some(path) => {
                    let entries: Vec<QuarantineEntry> = out
                        .poisoned
                        .iter()
                        .map(|p| QuarantineEntry {
                            k: level_view.k as u64,
                            prefix: p.task.prefix.clone(),
                            tails: p.task.tails.clone(),
                            reason: p.panic_message.clone(),
                        })
                        .collect();
                    crate::quarantine::append_entries(path, &entries)
                        .map_err(|e| ParallelRunError::Store(StoreError::Io(e)))?;
                    quarantined = entries.len();
                }
                None => {
                    let error = RoundError {
                        failures: out
                            .poisoned
                            .iter()
                            .map(|p| WorkerFailure {
                                worker: p.worker,
                                deadline: false,
                                panic_message: p.panic_message.clone(),
                            })
                            .collect(),
                    };
                    return Err(ParallelRunError::Round {
                        k: level_view.k,
                        error,
                        level: level_view.clone(),
                    });
                }
            }
        }

        let EpochOut {
            results,
            steal_stats,
            poisoned: _,
            retried_tasks,
        } = out;
        let mut timing = LevelStats {
            level: level_view.k,
            ..Default::default()
        };
        let mut and_ops = 0u64;
        let mut maximality_tests = 0u64;
        let mut maximal: Vec<Clique> = Vec::new();
        let mut new_queues: Vec<Vec<SubList<S>>> = Vec::with_capacity(threads);
        for (task_outs, ss) in results.into_iter().zip(&steal_stats) {
            let mut children: Vec<SubList<S>> = Vec::new();
            let mut units = 0u64;
            for t in task_outs {
                children.extend(t.new_sublists);
                maximal.extend(t.maximal);
                units += t.units;
                and_ops += t.and_ops;
                maximality_tests += t.tests;
            }
            new_queues.push(children);
            timing.per_worker_ns.push(ss.busy_ns);
            timing.per_worker_units.push(units);
            timing.per_worker_tasks.push(ss.tasks as usize);
            timing.per_worker_steals.push(ss.steals);
            timing.per_worker_idle_ns.push(ss.idle_ns);
            timing.failed_steals += ss.failed_steals;
        }
        // Unified moved-work count: a successful steal is the steal
        // scheduler's "transfer".
        timing.transfers = timing.per_worker_steals.iter().sum::<u64>() as usize;

        Ok(LevelExpansion {
            new_queues,
            maximal,
            and_ops,
            maximality_tests,
            timing,
            retried_level,
            retried: retried_level || retried_tasks > 0 || quarantined > 0,
            retried_tasks,
            quarantined,
        })
    }

    /// Isolate a level that failed its retry: rerun the batches of the
    /// workers that *didn't* fail (all-or-nothing still applies to
    /// them), then probe the failed workers' sub-lists one per worker
    /// so each failure pins down exactly one sub-list. Poison sub-lists
    /// go to the quarantine sidecar; everything else is folded back
    /// into the level's outputs. Returns the merged per-worker outputs
    /// and how many sub-lists were quarantined.
    #[allow(clippy::type_complexity)]
    fn quarantine_level<S: NeighborSet>(
        &self,
        g: &Arc<BitGraph>,
        rows: &Arc<Vec<S>>,
        level_view: &Level<S>,
        threads: usize,
        error: &RoundError,
    ) -> Result<(Vec<(WorkerOut<S>, u64)>, usize), ParallelRunError<S>> {
        let path = self.quarantine.as_ref().expect("caller checked");
        let deadline = self.config.worker_deadline;
        // The retry round's partition is deterministic (LPT over the
        // same snapshot), so recreating it maps each reported worker
        // failure back onto the exact batch that triggered it.
        let batches = partition_level(level_view.sublists.clone(), threads);
        let mut failed = vec![false; threads];
        for f in &error.failures {
            if let Some(slot) = failed.get_mut(f.worker) {
                *slot = true;
            }
        }
        let mut suspects: Vec<SubList<S>> = Vec::new();
        let mut clean_batches: Vec<Vec<SubList<S>>> = Vec::with_capacity(threads);
        for (w, batch) in batches.into_iter().enumerate() {
            if failed[w] {
                suspects.extend(batch);
                clean_batches.push(Vec::new());
            } else {
                clean_batches.push(batch);
            }
        }
        let mut outputs = self
            .pool
            .lock()
            .run_round_supervised(
                clean_batches,
                worker_job(Arc::clone(g), Arc::clone(rows)),
                deadline,
            )
            .map_err(|error| ParallelRunError::Round {
                k: level_view.k,
                error,
                level: level_view.clone(),
            })?;
        // Probe the suspects in waves of one sub-list per worker.
        let mut entries: Vec<QuarantineEntry> = Vec::new();
        for wave in suspects.chunks(threads) {
            let mut probe_batches: Vec<Vec<SubList<S>>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (j, sl) in wave.iter().enumerate() {
                probe_batches[j] = vec![sl.clone()];
            }
            let slots = self.pool.lock().run_round_isolated(
                probe_batches,
                worker_job(Arc::clone(g), Arc::clone(rows)),
                deadline,
            );
            for (j, slot) in slots.into_iter().enumerate() {
                let Some(suspect) = wave.get(j) else {
                    continue; // padding slot (empty batch)
                };
                match slot {
                    Ok((out, ns)) => {
                        let (acc, acc_ns) = &mut outputs[j];
                        acc.new_sublists.extend(out.new_sublists);
                        acc.maximal.extend(out.maximal);
                        acc.tasks += out.tasks;
                        acc.units += out.units;
                        acc.and_ops += out.and_ops;
                        acc.tests += out.tests;
                        *acc_ns += ns;
                    }
                    Err(failure) => entries.push(QuarantineEntry {
                        k: level_view.k as u64,
                        prefix: suspect.prefix.clone(),
                        tails: suspect.tails.clone(),
                        reason: failure.panic_message,
                    }),
                }
            }
        }
        let n_quarantined = entries.len();
        crate::quarantine::append_entries(path, &entries)
            .map_err(|e| ParallelRunError::Store(StoreError::Io(e)))?;
        Ok((outputs, n_quarantined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use crate::Vertex;
    use gsb_graph::generators::{gnp, planted, Module};

    fn parallel_sorted(g: &BitGraph, config: ParallelConfig) -> (Vec<Vec<Vertex>>, ParallelStats) {
        let g = Arc::new(g.clone());
        let mut sink = CollectSink::default();
        let stats = ParallelEnumerator::new(config).enumerate(&g, &mut sink);
        let mut cliques = sink.cliques;
        cliques.sort();
        (cliques, stats)
    }

    fn bk_at_least(g: &BitGraph, min_k: usize) -> Vec<Vec<Vertex>> {
        base_bk_sorted(g)
            .into_iter()
            .filter(|c| c.len() >= min_k)
            .collect()
    }

    #[test]
    fn matches_sequential_for_all_thread_counts() {
        let g = planted(36, 0.1, &[Module::clique(9), Module::clique(7)], 4);
        let expect = bk_at_least(&g, 3);
        for threads in [1, 2, 3, 4, 8] {
            let (got, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn all_strategies_agree() {
        // Balance strategies only exist on the barrier path; pin it.
        let g = gnp(32, 0.35, 7);
        let expect = bk_at_least(&g, 3);
        for strategy in [
            BalanceStrategy::Dynamic,
            BalanceStrategy::Static,
            BalanceStrategy::Repartition,
        ] {
            let (got, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads: 4,
                    strategy,
                    scheduler: Scheduler::Barrier,
                    ..Default::default()
                },
            );
            assert_eq!(got, expect, "{strategy:?}");
        }
    }

    #[test]
    fn schedulers_agree_with_each_other_and_sequential() {
        let g = planted(40, 0.1, &[Module::clique(9), Module::clique(6)], 12);
        let expect = bk_at_least(&g, 3);
        for threads in [1, 4] {
            let (barrier, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads,
                    scheduler: Scheduler::Barrier,
                    ..Default::default()
                },
            );
            let (steal, _) = parallel_sorted(
                &g,
                ParallelConfig {
                    threads,
                    scheduler: Scheduler::Steal,
                    ..Default::default()
                },
            );
            assert_eq!(barrier, expect, "barrier threads={threads}");
            assert_eq!(steal, expect, "steal threads={threads}");
        }
    }

    #[test]
    fn steal_levels_report_steal_counters() {
        // A graph with a planted heavy module skews per-task costs, so
        // at least one level must record a successful steal — and every
        // level's steal vectors must be worker-shaped.
        let g = planted(60, 0.08, &[Module::clique(12)], 21);
        let (_, stats) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 4,
                scheduler: Scheduler::Steal,
                ..Default::default()
            },
        );
        for l in &stats.run.levels {
            assert_eq!(l.per_worker_steals.len(), 4);
            assert_eq!(l.per_worker_idle_ns.len(), 4);
            assert_eq!(
                l.transfers,
                l.per_worker_steals.iter().sum::<u64>() as usize,
                "unified moved-work count"
            );
        }
        assert!(
            stats.run.total_transfers() > 0,
            "skewed levels should trigger at least one steal"
        );
    }

    #[test]
    fn scheduler_parses_and_displays() {
        assert_eq!("steal".parse::<Scheduler>().unwrap(), Scheduler::Steal);
        assert_eq!("barrier".parse::<Scheduler>().unwrap(), Scheduler::Barrier);
        assert!("both".parse::<Scheduler>().is_err());
        assert_eq!(Scheduler::Steal.to_string(), "steal");
        assert_eq!(Scheduler::Barrier.to_string(), "barrier");
        assert_eq!(Scheduler::default(), Scheduler::Steal);
    }

    #[test]
    fn seeded_parallel_matches() {
        let g = planted(32, 0.12, &[Module::clique(10)], 11);
        let expect = bk_at_least(&g, 6);
        let (got, _) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 3,
                enum_config: EnumConfig {
                    min_k: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn stats_populated() {
        let g = planted(30, 0.1, &[Module::clique(8)], 3);
        let (cliques, stats) = parallel_sorted(
            &g,
            ParallelConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(stats.total_maximal, cliques.len());
        assert!(!stats.levels.is_empty());
        assert_eq!(stats.run.levels.len(), stats.levels.len());
        for l in &stats.run.levels {
            assert_eq!(l.per_worker_ns.len(), 4);
        }
        assert!(stats.run.wall_ns > 0);
        assert!(stats.retried_levels.is_empty());
    }

    #[test]
    fn output_in_non_decreasing_size_order() {
        let g = planted(30, 0.1, &[Module::clique(8), Module::clique(5)], 6);
        let garc = Arc::new(g);
        let mut sink = CollectSink::default();
        ParallelEnumerator::new(ParallelConfig {
            threads: 4,
            ..Default::default()
        })
        .enumerate(&garc, &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_graph_no_hang() {
        let (got, stats) = parallel_sorted(
            &BitGraph::new(0),
            ParallelConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(got.is_empty());
        assert_eq!(stats.total_maximal, 0);
    }

    #[test]
    fn resilient_from_snapshot_matches_rest_of_run() {
        // Step sequentially to the level-3 barrier, then hand the level
        // to the resilient parallel driver as a resume snapshot.
        let g = planted(34, 0.1, &[Module::clique(8), Module::clique(6)], 9);
        let expect = bk_at_least(&g, 3);

        let seq = crate::enumerator::CliqueEnumerator::new(EnumConfig::default());
        let mut sink = CollectSink::default();
        let mut init_stats = crate::enumerator::EnumStats::default();
        let mut level = seq.init_level(&g, &mut sink, &mut init_stats);
        while level.k < 3 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut sink);
            level = next;
        }
        let garc = Arc::new(g.clone());
        let outcome = ParallelEnumerator::new(ParallelConfig {
            threads: 3,
            ..Default::default()
        })
        .enumerate_resilient(&garc, Some(level), &mut sink, |_l, _m, _s| {
            Ok(BarrierControl::Continue)
        })
        .expect("resilient run");
        assert!(matches!(outcome, ParallelOutcome::Complete(_)));
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn barrier_degrade_hands_back_unexpanded_level() {
        let g = planted(30, 0.1, &[Module::clique(8)], 5);
        let garc = Arc::new(g.clone());
        let mut sink = CollectSink::default();
        let enumerator = ParallelEnumerator::new(ParallelConfig {
            threads: 2,
            ..Default::default()
        });
        let outcome = enumerator
            .enumerate_resilient(&garc, None::<Level>, &mut sink, |level, _m, _s| {
                Ok(if level.k >= 4 {
                    BarrierControl::Degrade
                } else {
                    BarrierControl::Continue
                })
            })
            .expect("resilient run");
        let ParallelOutcome::Degraded { level, .. } = outcome else {
            panic!("expected degradation at k=4");
        };
        assert_eq!(level.k, 4);
        assert!(!level.sublists.is_empty());
        // continuing sequentially from the handoff completes the run
        let seq = crate::enumerator::CliqueEnumerator::new(EnumConfig::default());
        seq.enumerate_from_level(&g, level, &mut sink);
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, bk_at_least(&g, 3));
    }
}
