//! The k-clique sub-list: the paper's central data structure.
//!
//! "The k-cliques generated from a same (k−1)-clique naturally form a
//! sub-list consisting of the (k−1)-clique with a list of common
//! neighbors of this (k−1)-clique" (§2.3). Storing the shared prefix and
//! its common-neighbor bitmap once per sub-list — instead of once per
//! clique — is what cuts both the memory footprint and the repeated
//! bitwise work.
//!
//! The common-neighbor bitmap is generic over
//! [`NeighborSet`]: the same sub-list works
//! dense, WAH-compressed, or adaptively hybrid. The default parameter
//! keeps every pre-trait use (`SubList`, `Level`) meaning the dense
//! representation.

use crate::{Clique, Vertex};
use gsb_bitset::{BitSet, NeighborSet};

/// A group of k-cliques sharing their first (k−1) vertices.
///
/// Structural invariants (checked by [`SubList::validate`]):
/// * `prefix` is strictly ascending;
/// * `tails` is strictly ascending and every tail exceeds the last
///   prefix vertex ("only the common neighbors whose indices \[are\]
///   higher than the index of the (k−1)-th vertex need to be kept");
/// * `cn` is the common-neighbor bitmap of `prefix` over all `n`
///   vertices of the host graph.
#[derive(Clone, Debug)]
pub struct SubList<S = BitSet> {
    /// The shared (k−1)-clique, ascending.
    pub prefix: Vec<Vertex>,
    /// Common neighbors of `prefix` (bitmap over the whole graph).
    pub cn: S,
    /// The k-th vertex of each member clique, ascending.
    pub tails: Vec<Vertex>,
}

impl<S> SubList<S> {
    /// Clique size k of the member cliques.
    pub fn k(&self) -> usize {
        self.prefix.len() + 1
    }

    /// Number of member cliques.
    pub fn len(&self) -> usize {
        self.tails.len()
    }

    /// True when the sub-list holds no cliques.
    pub fn is_empty(&self) -> bool {
        self.tails.is_empty()
    }

    /// Materialize the i-th member clique.
    pub fn clique(&self, i: usize) -> Clique {
        let mut c = self.prefix.clone();
        c.push(self.tails[i]);
        c
    }

    /// Iterate all member cliques (allocates one Vec per clique; for
    /// hot paths use `prefix`/`tails` directly).
    pub fn cliques(&self) -> impl Iterator<Item = Clique> + '_ {
        (0..self.len()).map(|i| self.clique(i))
    }

    /// Estimated expansion cost for load balancing: the pair loop is
    /// quadratic in the tail count.
    pub fn cost(&self) -> u64 {
        let t = self.tails.len() as u64;
        t * t
    }

    /// Bytes of the paper's space formula attributable to this sub-list:
    /// `|tails|·c + (k−1)·c + ⌈n/8⌉ + sizeof(ptr)`. Deliberately
    /// representation-independent — it is the paper's dense cost model,
    /// used for spill budgets and the projection bound.
    pub fn formula_bytes(&self, n: usize) -> usize {
        let c = std::mem::size_of::<Vertex>();
        self.tails.len() * c + self.prefix.len() * c + n.div_ceil(8) + std::mem::size_of::<usize>()
    }
}

impl<S: NeighborSet> SubList<S> {
    /// Actual heap bytes held (representation-dependent: a compressed
    /// `cn` shrinks this, never `formula_bytes`).
    pub fn heap_bytes(&self) -> usize {
        self.prefix.capacity() * std::mem::size_of::<Vertex>()
            + self.tails.capacity() * std::mem::size_of::<Vertex>()
            + self.cn.heap_bytes()
    }

    /// Convert the common-neighbor bitmap to another representation.
    pub fn convert<T: NeighborSet>(&self) -> SubList<T> {
        SubList {
            prefix: self.prefix.clone(),
            cn: T::from_bitset(&self.cn.to_bitset()),
            tails: self.tails.clone(),
        }
    }

    /// Assert the structural invariants (test support).
    pub fn validate(&self, g: &gsb_graph::BitGraph) {
        assert!(
            self.prefix.windows(2).all(|w| w[0] < w[1]),
            "prefix not ascending"
        );
        assert!(
            self.tails.windows(2).all(|w| w[0] < w[1]),
            "tails not ascending"
        );
        if let (Some(&last), Some(&first)) = (self.prefix.last(), self.tails.first()) {
            assert!(first > last, "tail {first} not above prefix end {last}");
        }
        let members: Vec<usize> = self.prefix.iter().map(|&v| v as usize).collect();
        assert!(g.is_clique(&members), "prefix is not a clique");
        let expect = g.common_neighbors(&members);
        assert_eq!(self.cn.to_bitset(), expect, "stale common-neighbor bitmap");
        for &t in &self.tails {
            assert!(
                self.cn.contains(t as usize),
                "tail {t} is not a common neighbor of the prefix"
            );
        }
    }
}

/// All candidate sub-lists of one level (the paper's `L_k`).
#[derive(Clone, Debug)]
pub struct Level<S = BitSet> {
    /// Clique size k of member cliques.
    pub k: usize,
    /// The sub-lists.
    pub sublists: Vec<SubList<S>>,
}

impl<S> Default for Level<S> {
    fn default() -> Self {
        Level {
            k: 0,
            sublists: Vec::new(),
        }
    }
}

impl<S> Level<S> {
    /// The paper's `N[k]`: number of candidate sub-lists.
    pub fn n_sublists(&self) -> usize {
        self.sublists.len()
    }

    /// The paper's `M[k]`: total number of candidate cliques.
    pub fn n_cliques(&self) -> usize {
        self.sublists.iter().map(SubList::len).sum()
    }

    /// True when the level holds no work.
    pub fn is_empty(&self) -> bool {
        self.sublists.is_empty()
    }
}

impl<S: NeighborSet> Level<S> {
    /// Convert every sub-list to another representation.
    pub fn convert<T: NeighborSet>(&self) -> Level<T> {
        Level {
            k: self.k,
            sublists: self.sublists.iter().map(SubList::convert).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::BitGraph;

    fn k4_sublist() -> (BitGraph, SubList) {
        let g = BitGraph::complete(4);
        let cn = g.common_neighbors(&[0, 1]);
        (
            g,
            SubList {
                prefix: vec![0, 1],
                cn,
                tails: vec![2, 3],
            },
        )
    }

    #[test]
    fn accessors() {
        let (g, sl) = k4_sublist();
        assert_eq!(sl.k(), 3);
        assert_eq!(sl.len(), 2);
        assert_eq!(sl.clique(0), vec![0, 1, 2]);
        assert_eq!(sl.clique(1), vec![0, 1, 3]);
        assert_eq!(sl.cliques().count(), 2);
        assert_eq!(sl.cost(), 4);
        sl.validate(&g);
    }

    #[test]
    fn formula_bytes_matches_paper_terms() {
        let (g, sl) = k4_sublist();
        // M-term: 2 tails * 4B; N-term: (k-1)=2 prefix * 4B + ceil(4/8)=1
        // + 8B pointer
        assert_eq!(sl.formula_bytes(g.n()), 2 * 4 + 2 * 4 + 1 + 8);
    }

    #[test]
    fn level_counts() {
        let (_, sl) = k4_sublist();
        let level = Level {
            k: 3,
            sublists: vec![sl.clone(), sl],
        };
        assert_eq!(level.n_sublists(), 2);
        assert_eq!(level.n_cliques(), 4);
        assert!(!level.is_empty());
        assert!(Level::<gsb_bitset::BitSet>::default().is_empty());
    }

    #[test]
    fn conversion_roundtrips_across_representations() {
        let (g, sl) = k4_sublist();
        let wah: SubList<gsb_bitset::WahBitSet> = sl.convert();
        wah.validate(&g);
        let hybrid: SubList<gsb_bitset::HybridSet> = wah.convert();
        hybrid.validate(&g);
        let back: SubList = hybrid.convert();
        back.validate(&g);
        assert_eq!(back.cn, sl.cn);
        assert_eq!(back.tails, sl.tails);
    }

    #[test]
    #[should_panic(expected = "stale common-neighbor bitmap")]
    fn validate_catches_bad_cn() {
        let (g, mut sl) = k4_sublist();
        sl.cn = gsb_bitset::BitSet::new(4);
        sl.validate(&g);
    }
}
