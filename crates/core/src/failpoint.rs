//! Deterministic fault injection for crash-safety testing.
//!
//! Long genome-scale runs fail in ways unit tests never exercise: a
//! worker thread panics three hours in, a spill write hits a full disk,
//! the process is killed at a level barrier. This module plants named
//! *failpoints* at those sites — spill writes (`spill.write`),
//! checkpoint writes (`checkpoint.write`), worker jobs
//! (`parallel.worker`), the allocation-budget check (`memory.budget`),
//! and the level barrier itself (`pipeline.barrier`) — so the recovery
//! paths can be driven deterministically.
//!
//! Without the `failpoints` cargo feature every call compiles to a
//! no-op; the feature is for the test suite only and must never be
//! enabled in production builds. Actions are keyed on a per-site hit
//! counter, so "pass twice, then fail" scenarios (crash at the third
//! barrier) are reproducible without wall-clock or randomness.

/// What a triggered failpoint does, over a site's 0-based hit counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic on hits `skip .. skip + times`.
    Panic {
        /// Hits that pass through before the action triggers.
        skip: u32,
        /// How many hits trigger once armed (`u32::MAX` = forever).
        times: u32,
    },
    /// Return an injected `std::io::Error` on hits `skip .. skip + times`.
    Error {
        /// Hits that pass through before the action triggers.
        skip: u32,
        /// How many hits trigger once armed (`u32::MAX` = forever).
        times: u32,
    },
}

impl FailAction {
    /// Panic on the first hit only (a transient fault: retry succeeds).
    pub fn panic_once() -> Self {
        FailAction::Panic { skip: 0, times: 1 }
    }

    /// Panic on every hit (a persistent fault: retries fail too).
    pub fn panic_always() -> Self {
        FailAction::Panic {
            skip: 0,
            times: u32::MAX,
        }
    }

    /// Pass `n` hits, then panic forever — "crash at the (n+1)-th site
    /// visit", e.g. the process dying at a specific level barrier.
    pub fn panic_after(n: u32) -> Self {
        FailAction::Panic {
            skip: n,
            times: u32::MAX,
        }
    }

    /// Injected I/O error on the first hit only.
    pub fn error_once() -> Self {
        FailAction::Error { skip: 0, times: 1 }
    }

    /// Injected I/O error on every hit (e.g. a full disk).
    pub fn error_always() -> Self {
        FailAction::Error {
            skip: 0,
            times: u32::MAX,
        }
    }
}

#[cfg(feature = "failpoints")]
mod active {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct Site {
        action: FailAction,
        hits: u32,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn configure(site: &str, action: FailAction) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .insert(site.to_string(), Site { action, hits: 0 });
    }

    pub fn clear(site: &str) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .remove(site);
    }

    pub fn reset_all() {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .clear();
    }

    pub fn hits(site: &str) -> u32 {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .get(site)
            .map_or(0, |s| s.hits)
    }

    pub fn inject(site: &str) -> std::io::Result<()> {
        // Decide while holding the lock, act after releasing it, so a
        // panicking failpoint does not poison the registry.
        let fire = {
            let mut map = registry().lock().expect("failpoint registry poisoned");
            match map.get_mut(site) {
                None => None,
                Some(s) => {
                    let hit = s.hits;
                    s.hits = s.hits.saturating_add(1);
                    let (skip, times, is_panic) = match s.action {
                        FailAction::Panic { skip, times } => (skip, times, true),
                        FailAction::Error { skip, times } => (skip, times, false),
                    };
                    let armed = hit >= skip && (hit - skip) < times;
                    armed.then_some(is_panic)
                }
            }
        };
        match fire {
            None => Ok(()),
            Some(true) => panic!("failpoint {site:?} triggered (injected panic)"),
            Some(false) => Err(std::io::Error::other(format!(
                "failpoint {site:?} triggered (injected I/O error)"
            ))),
        }
    }
}

/// Arm a failpoint. No-op without the `failpoints` feature.
pub fn configure(site: &str, action: FailAction) {
    #[cfg(feature = "failpoints")]
    active::configure(site, action);
    #[cfg(not(feature = "failpoints"))]
    let _ = (site, action);
}

/// Disarm one failpoint. No-op without the `failpoints` feature.
pub fn clear(site: &str) {
    #[cfg(feature = "failpoints")]
    active::clear(site);
    #[cfg(not(feature = "failpoints"))]
    let _ = site;
}

/// Disarm every failpoint. No-op without the `failpoints` feature.
pub fn reset_all() {
    #[cfg(feature = "failpoints")]
    active::reset_all();
}

/// How many times an armed site has been hit (0 when disarmed or the
/// feature is off) — for asserting that a recovery path actually
/// exercised the site.
pub fn hits(site: &str) -> u32 {
    #[cfg(feature = "failpoints")]
    return active::hits(site);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        0
    }
}

/// Evaluate the failpoint at `site`: panics or returns an injected
/// error when armed, otherwise `Ok(())`. Compiles to a no-op without
/// the `failpoints` feature.
#[inline]
pub fn inject(site: &str) -> std::io::Result<()> {
    #[cfg(feature = "failpoints")]
    return active::inject(site);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(())
    }
}

/// RAII failpoint arming: configures on construction, disarms on drop
/// (including unwinds), so a failing test cannot leave a global
/// failpoint armed for its neighbors.
pub struct FailGuard {
    site: &'static str,
}

impl FailGuard {
    /// Arm `site` with `action` until the guard drops.
    pub fn new(site: &'static str, action: FailAction) -> Self {
        configure(site, action);
        FailGuard { site }
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        clear(self.site);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_pass() {
        assert!(inject("no.such.site").is_ok());
        assert_eq!(hits("no.such.site"), 0);
    }

    #[test]
    fn error_after_skip_counts_hits() {
        let _g = FailGuard::new("fp.test.skip", FailAction::Error { skip: 2, times: 1 });
        assert!(inject("fp.test.skip").is_ok());
        assert!(inject("fp.test.skip").is_ok());
        assert!(inject("fp.test.skip").is_err());
        assert!(inject("fp.test.skip").is_ok()); // times exhausted
        assert_eq!(hits("fp.test.skip"), 4);
    }

    #[test]
    fn panic_action_panics_and_guard_disarms() {
        {
            let _g = FailGuard::new("fp.test.panic", FailAction::panic_once());
            let err = std::panic::catch_unwind(|| {
                let _ = inject("fp.test.panic");
            });
            assert!(err.is_err());
            // countdown exhausted: second hit passes
            assert!(inject("fp.test.panic").is_ok());
        }
        // guard dropped: site disarmed, counter gone
        assert_eq!(hits("fp.test.panic"), 0);
    }
}
