//! Deterministic fault injection for crash-safety testing.
//!
//! Long genome-scale runs fail in ways unit tests never exercise: a
//! worker thread panics three hours in, a spill write hits a full disk,
//! the process is killed at a level barrier. This module plants named
//! *failpoints* at those sites — spill writes (`spill.write`),
//! checkpoint writes (`checkpoint.write`), worker jobs
//! (`parallel.worker`), the allocation-budget check (`memory.budget`),
//! and the level barrier itself (`pipeline.barrier`) — so the recovery
//! paths can be driven deterministically.
//!
//! Without the `failpoints` cargo feature every call compiles to a
//! no-op; the feature is for the test suite only and must never be
//! enabled in production builds. Actions are keyed on a per-site hit
//! counter, so "pass twice, then fail" scenarios (crash at the third
//! barrier) are reproducible without wall-clock or randomness.
//!
//! Beyond single armed sites, [`chaos_schedule`] derives a whole fault
//! *schedule* — an action (or none) per site, with randomized skip
//! counts, repeat counts, and delays — deterministically from one seed.
//! `tests/chaos.rs` sweeps hundreds of such seeds and requires every
//! run to converge to byte-identical output.
//!
//! Sites can additionally be armed for a single *tag* (e.g. one
//! specific sub-list prefix) via [`configure_tagged`]; only
//! [`inject_tagged`] calls carrying the matching tag fire, which is how
//! the quarantine tests poison exactly one sub-list.

/// What a triggered failpoint does, over a site's 0-based hit counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic on hits `skip .. skip + times`.
    Panic {
        /// Hits that pass through before the action triggers.
        skip: u32,
        /// How many hits trigger once armed (`u32::MAX` = forever).
        times: u32,
    },
    /// Return an injected `std::io::Error` on hits `skip .. skip + times`.
    Error {
        /// Hits that pass through before the action triggers.
        skip: u32,
        /// How many hits trigger once armed (`u32::MAX` = forever).
        times: u32,
    },
    /// Sleep `ms` milliseconds on hits `skip .. skip + times` — a stall,
    /// not a failure; exercises heartbeat deadlines and retry timing.
    Delay {
        /// Hits that pass through before the action triggers.
        skip: u32,
        /// How many hits trigger once armed (`u32::MAX` = forever).
        times: u32,
        /// How long the triggered hit sleeps, in milliseconds.
        ms: u64,
    },
}

impl FailAction {
    /// Panic on the first hit only (a transient fault: retry succeeds).
    pub fn panic_once() -> Self {
        FailAction::Panic { skip: 0, times: 1 }
    }

    /// Panic on every hit (a persistent fault: retries fail too).
    pub fn panic_always() -> Self {
        FailAction::Panic {
            skip: 0,
            times: u32::MAX,
        }
    }

    /// Pass `n` hits, then panic forever — "crash at the (n+1)-th site
    /// visit", e.g. the process dying at a specific level barrier.
    pub fn panic_after(n: u32) -> Self {
        FailAction::Panic {
            skip: n,
            times: u32::MAX,
        }
    }

    /// Injected I/O error on the first hit only.
    pub fn error_once() -> Self {
        FailAction::Error { skip: 0, times: 1 }
    }

    /// Injected I/O error on every hit (e.g. a full disk).
    pub fn error_always() -> Self {
        FailAction::Error {
            skip: 0,
            times: u32::MAX,
        }
    }

    /// Sleep `ms` milliseconds on the first hit only.
    pub fn delay_once(ms: u64) -> Self {
        FailAction::Delay {
            skip: 0,
            times: 1,
            ms,
        }
    }
}

/// The failpoint sites a chaos schedule may arm — every named site the
/// production code evaluates on its fault paths.
pub const CHAOS_SITES: &[&str] = &[
    "spill.write",
    "checkpoint.write",
    "checkpoint.meta",
    "parallel.worker",
    "pipeline.barrier",
    "memory.budget",
];

/// The failpoint sites on the index *serving* path — the read/serve
/// I/O sites the server chaos harness arms. Unlike [`CHAOS_SITES`],
/// these never draw `Panic`: an injected panic in a request worker
/// would be indistinguishable from the serving-path panic bugs the
/// harness exists to rule out, so server schedules stick to injected
/// I/O errors and stalls (client misbehavior and on-disk corruption
/// are driven separately, through the socket and the files).
pub const SERVER_CHAOS_SITES: &[&str] = &[
    "index.block_read",
    "index.postings_read",
    "serve.accept",
    "serve.respond",
];

/// Derive a serving-side fault schedule deterministically from `seed`:
/// for each site in [`SERVER_CHAOS_SITES`], draw nothing (about half
/// the time), an injected I/O error, or a short stall, with randomized
/// skip (0..8) and bounded repeat count (1..=3) so every schedule
/// exhausts itself and the server converges back to healthy serving.
pub fn server_chaos_schedule(seed: u64) -> Vec<(&'static str, FailAction)> {
    let mut rng = crate::supervise::SplitMix64::new(seed ^ 0x5E1F_5E1F_5E1F_5E1F);
    let mut schedule = Vec::new();
    for &site in SERVER_CHAOS_SITES {
        let skip = rng.below(8) as u32;
        let times = 1 + rng.below(3) as u32;
        let action = match rng.below(6) {
            0..=2 => None, // half the sites stay clean
            3 | 4 => Some(FailAction::Error { skip, times }),
            _ => Some(FailAction::Delay {
                skip,
                times,
                ms: 1 + rng.below(15),
            }),
        };
        if let Some(action) = action {
            schedule.push((site, action));
        }
    }
    schedule
}

/// Derive a randomized fault schedule deterministically from `seed`:
/// for each site in [`CHAOS_SITES`], draw either nothing (about half
/// the time) or a [`FailAction`] with randomized skip (0..6), repeat
/// count (1..=2), and — for delays — duration (1..=10 ms). Repeat
/// counts are bounded so every schedule eventually exhausts itself and
/// a crash/resume loop converges; schedules never use `times:
/// u32::MAX`.
pub fn chaos_schedule(seed: u64) -> Vec<(&'static str, FailAction)> {
    let mut rng = crate::supervise::SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let mut schedule = Vec::new();
    for &site in CHAOS_SITES {
        let skip = rng.below(6) as u32;
        let times = 1 + rng.below(2) as u32;
        let action = match rng.below(6) {
            0 | 1 => None, // ~1/3 of sites stay clean
            2 => Some(FailAction::Panic { skip, times }),
            3 => Some(FailAction::Error { skip, times }),
            _ => Some(FailAction::Delay {
                skip,
                times,
                ms: 1 + rng.below(10),
            }),
        };
        if let Some(action) = action {
            schedule.push((site, action));
        }
    }
    schedule
}

#[cfg(feature = "failpoints")]
mod active {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct Site {
        action: FailAction,
        hits: u32,
        /// When set, only `inject_tagged` calls carrying this exact tag
        /// fire (and count hits); untagged injections pass through.
        tag: Option<String>,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub fn configure(site: &str, action: FailAction) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .insert(
                site.to_string(),
                Site {
                    action,
                    hits: 0,
                    tag: None,
                },
            );
    }

    pub fn configure_tagged(site: &str, tag: &str, action: FailAction) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .insert(
                site.to_string(),
                Site {
                    action,
                    hits: 0,
                    tag: Some(tag.to_string()),
                },
            );
    }

    pub fn clear(site: &str) {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .remove(site);
    }

    pub fn reset_all() {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .clear();
    }

    pub fn hits(site: &str) -> u32 {
        registry()
            .lock()
            .expect("failpoint registry poisoned")
            .get(site)
            .map_or(0, |s| s.hits)
    }

    enum Fire {
        Panic,
        Error,
        Delay(u64),
    }

    pub fn inject(site: &str) -> std::io::Result<()> {
        fire(site, None)
    }

    pub fn inject_tagged(site: &str, tag: &str) -> std::io::Result<()> {
        fire(site, Some(tag))
    }

    fn fire(site: &str, tag: Option<&str>) -> std::io::Result<()> {
        // Decide while holding the lock, act after releasing it, so a
        // panicking (or sleeping) failpoint does not hold or poison the
        // registry.
        let fire = {
            let mut map = registry().lock().expect("failpoint registry poisoned");
            match map.get_mut(site) {
                None => None,
                Some(s) => {
                    // A tag-filtered site ignores (and does not count)
                    // injections for other tags or untagged injections;
                    // an unfiltered site matches every injection.
                    let tag_matches = match (&s.tag, tag) {
                        (None, _) => true,
                        (Some(want), Some(got)) => want == got,
                        (Some(_), None) => false,
                    };
                    if !tag_matches {
                        None
                    } else {
                        let hit = s.hits;
                        s.hits = s.hits.saturating_add(1);
                        let (skip, times, kind) = match s.action {
                            FailAction::Panic { skip, times } => (skip, times, Fire::Panic),
                            FailAction::Error { skip, times } => (skip, times, Fire::Error),
                            FailAction::Delay { skip, times, ms } => (skip, times, Fire::Delay(ms)),
                        };
                        let armed = hit >= skip && (hit - skip) < times;
                        armed.then_some(kind)
                    }
                }
            }
        };
        match fire {
            None => Ok(()),
            Some(Fire::Panic) => panic!("failpoint {site:?} triggered (injected panic)"),
            Some(Fire::Error) => Err(std::io::Error::other(format!(
                "failpoint {site:?} triggered (injected I/O error)"
            ))),
            Some(Fire::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
        }
    }
}

/// Arm a failpoint. No-op without the `failpoints` feature.
pub fn configure(site: &str, action: FailAction) {
    #[cfg(feature = "failpoints")]
    active::configure(site, action);
    #[cfg(not(feature = "failpoints"))]
    let _ = (site, action);
}

/// Arm a failpoint for one specific tag: only [`inject_tagged`] calls
/// carrying exactly `tag` fire (untagged injections pass through). This
/// is how tests poison a single sub-list prefix without touching its
/// siblings. No-op without the `failpoints` feature.
pub fn configure_tagged(site: &str, tag: &str, action: FailAction) {
    #[cfg(feature = "failpoints")]
    active::configure_tagged(site, tag, action);
    #[cfg(not(feature = "failpoints"))]
    let _ = (site, tag, action);
}

/// Disarm one failpoint. No-op without the `failpoints` feature.
pub fn clear(site: &str) {
    #[cfg(feature = "failpoints")]
    active::clear(site);
    #[cfg(not(feature = "failpoints"))]
    let _ = site;
}

/// Disarm every failpoint. No-op without the `failpoints` feature.
pub fn reset_all() {
    #[cfg(feature = "failpoints")]
    active::reset_all();
}

/// How many times an armed site has been hit (0 when disarmed or the
/// feature is off) — for asserting that a recovery path actually
/// exercised the site.
pub fn hits(site: &str) -> u32 {
    #[cfg(feature = "failpoints")]
    return active::hits(site);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        0
    }
}

/// Evaluate the failpoint at `site`: panics or returns an injected
/// error when armed, otherwise `Ok(())`. Compiles to a no-op without
/// the `failpoints` feature.
#[inline]
pub fn inject(site: &str) -> std::io::Result<()> {
    #[cfg(feature = "failpoints")]
    return active::inject(site);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        Ok(())
    }
}

/// Evaluate the failpoint at `site` on behalf of work unit `tag`:
/// fires when the site is armed untagged, or armed for exactly this
/// tag. Compiles to a no-op without the `failpoints` feature.
#[inline]
pub fn inject_tagged(site: &str, tag: &str) -> std::io::Result<()> {
    #[cfg(feature = "failpoints")]
    return active::inject_tagged(site, tag);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (site, tag);
        Ok(())
    }
}

/// RAII failpoint arming: configures on construction, disarms on drop
/// (including unwinds), so a failing test cannot leave a global
/// failpoint armed for its neighbors.
pub struct FailGuard {
    site: &'static str,
}

impl FailGuard {
    /// Arm `site` with `action` until the guard drops.
    pub fn new(site: &'static str, action: FailAction) -> Self {
        configure(site, action);
        FailGuard { site }
    }

    /// Arm `site` for one specific `tag` (see [`configure_tagged`])
    /// until the guard drops.
    pub fn tagged(site: &'static str, tag: &str, action: FailAction) -> Self {
        configure_tagged(site, tag, action);
        FailGuard { site }
    }
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        clear(self.site);
    }
}

#[cfg(test)]
mod schedule_tests {
    use super::*;

    #[test]
    fn chaos_schedules_are_deterministic_and_bounded() {
        for seed in 0..64u64 {
            let a = chaos_schedule(seed);
            let b = chaos_schedule(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            for (site, action) in &a {
                assert!(CHAOS_SITES.contains(site));
                let times = match action {
                    FailAction::Panic { times, .. }
                    | FailAction::Error { times, .. }
                    | FailAction::Delay { times, .. } => *times,
                };
                assert!(
                    (1..=2).contains(&times),
                    "seed {seed}: unbounded action {action:?}"
                );
            }
        }
        // The space of schedules is actually explored.
        assert_ne!(chaos_schedule(1), chaos_schedule(2));
    }

    #[test]
    fn server_chaos_schedules_are_deterministic_and_never_panic() {
        for seed in 0..128u64 {
            let a = server_chaos_schedule(seed);
            let b = server_chaos_schedule(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            for (site, action) in &a {
                assert!(SERVER_CHAOS_SITES.contains(site));
                match action {
                    FailAction::Panic { .. } => {
                        panic!("seed {seed}: server schedule drew a panic at {site}")
                    }
                    FailAction::Error { times, .. } | FailAction::Delay { times, .. } => {
                        assert!(
                            (1..=3).contains(times),
                            "seed {seed}: unbounded action {action:?}"
                        );
                    }
                }
            }
        }
        assert_ne!(server_chaos_schedule(3), server_chaos_schedule(4));
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_pass() {
        assert!(inject("no.such.site").is_ok());
        assert_eq!(hits("no.such.site"), 0);
    }

    #[test]
    fn error_after_skip_counts_hits() {
        let _g = FailGuard::new("fp.test.skip", FailAction::Error { skip: 2, times: 1 });
        assert!(inject("fp.test.skip").is_ok());
        assert!(inject("fp.test.skip").is_ok());
        assert!(inject("fp.test.skip").is_err());
        assert!(inject("fp.test.skip").is_ok()); // times exhausted
        assert_eq!(hits("fp.test.skip"), 4);
    }

    #[test]
    fn tagged_sites_fire_only_for_their_tag() {
        let _g = FailGuard::tagged("fp.test.tag", "1-2-3", FailAction::error_always());
        assert!(inject("fp.test.tag").is_ok(), "untagged must pass");
        assert!(inject_tagged("fp.test.tag", "9-9").is_ok(), "other tag");
        assert!(inject_tagged("fp.test.tag", "1-2-3").is_err());
        // Non-matching injections did not consume hits.
        assert_eq!(hits("fp.test.tag"), 1);
    }

    #[test]
    fn untagged_sites_match_tagged_injections() {
        let _g = FailGuard::new("fp.test.untag", FailAction::error_once());
        assert!(inject_tagged("fp.test.untag", "anything").is_err());
    }

    #[test]
    fn delay_action_sleeps_then_passes() {
        let _g = FailGuard::new("fp.test.delay", FailAction::delay_once(20));
        let t0 = std::time::Instant::now();
        assert!(inject("fp.test.delay").is_ok());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        let t1 = std::time::Instant::now();
        assert!(inject("fp.test.delay").is_ok());
        assert!(t1.elapsed() < std::time::Duration::from_millis(15));
    }

    #[test]
    fn panic_action_panics_and_guard_disarms() {
        {
            let _g = FailGuard::new("fp.test.panic", FailAction::panic_once());
            let err = std::panic::catch_unwind(|| {
                let _ = inject("fp.test.panic");
            });
            assert!(err.is_err());
            // countdown exhausted: second hit passes
            assert!(inject("fp.test.panic").is_ok());
        }
        // guard dropped: site disarmed, counter gone
        assert_eq!(hits("fp.test.panic"), 0);
    }
}
