//! The Kose RAM baseline (Table 1's comparator).
//!
//! In-core implementation of the Kose et al. (Bioinformatics 2001)
//! levelwise procedure exactly as the paper characterizes it (§2.3):
//! take all edges in canonical order, generate all (k+1)-cliques from
//! all k-cliques, then "check for all k-cliques to see if they are
//! components of a (k+1)-clique after it is generated", declare
//! unmarked k-cliques maximal, and repeat. Its two costs — storing
//! *every* k-clique and deciding maximality by *subset containment*
//! searches — are precisely what the Clique Enumerator removes; keeping
//! them here is the point of the baseline.

use crate::sink::CliqueSink;
use crate::{Clique, Vertex};
use gsb_graph::BitGraph;
use std::collections::{HashMap, HashSet};

/// How the containment search ("check for all k-cliques to see if they
/// are components of a (k+1)-clique") locates k-subcliques.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KoseSearch {
    /// Binary search over the canonical sorted k-clique list — the
    /// faithful reading of the original list-searching algorithm.
    #[default]
    SortedList,
    /// Hash-set lookups — a deliberately *generous* baseline upgrade;
    /// speedups measured against it lower-bound the paper's factor.
    HashSet,
}

/// Enumerate all maximal cliques in non-decreasing size order with the
/// Kose RAM algorithm (default containment search: sorted-list binary
/// search). `min_k` filters the reported sizes (size-1 and size-2
/// maximal cliques are handled like every other level).
pub fn kose_ram(g: &BitGraph, min_k: usize, sink: &mut impl CliqueSink) -> KoseStats {
    kose_ram_with(g, min_k, KoseSearch::default(), sink)
}

/// [`kose_ram`] with an explicit containment-search mode.
pub fn kose_ram_with(
    g: &BitGraph,
    min_k: usize,
    search: KoseSearch,
    sink: &mut impl CliqueSink,
) -> KoseStats {
    let mut stats = KoseStats::default();
    let n = g.n();
    // level 1: all vertices
    let mut current: Vec<Clique> = (0..n).map(|v| vec![v as Vertex]).collect();
    let mut k = 1usize;
    while !current.is_empty() {
        stats.stored_cliques.push(current.len());
        // Generate all (k+1)-cliques by canonical prefix join: two
        // k-cliques sharing their first k-1 vertices, adjacent tails.
        let mut next: Vec<Clique> = Vec::new();
        let mut group_start = 0usize;
        while group_start < current.len() {
            let prefix = &current[group_start][..k - 1];
            let mut group_end = group_start + 1;
            while group_end < current.len() && &current[group_end][..k - 1] == prefix {
                group_end += 1;
            }
            for i in group_start..group_end {
                for j in i + 1..group_end {
                    let u = current[i][k - 1];
                    let v = current[j][k - 1];
                    if g.has_edge(u as usize, v as usize) {
                        let mut c = current[i].clone();
                        c.push(v);
                        next.push(c);
                    }
                }
            }
            group_start = group_end;
        }
        // Maximality: a k-clique is maximal iff it is a component of no
        // (k+1)-clique — the containment search the paper criticizes.
        let mut is_contained = vec![false; current.len()];
        let index: HashMap<&[Vertex], usize> = match search {
            KoseSearch::HashSet => current
                .iter()
                .enumerate()
                .map(|(i, c)| (c.as_slice(), i))
                .collect(),
            KoseSearch::SortedList => HashMap::new(),
        };
        let mut sub = Vec::with_capacity(k);
        for big in &next {
            for skip in 0..=k {
                sub.clear();
                sub.extend(
                    big.iter()
                        .enumerate()
                        .filter_map(|(i, &v)| (i != skip).then_some(v)),
                );
                let pos = match search {
                    // `current` is in canonical (sorted) order.
                    KoseSearch::SortedList => current
                        .binary_search_by(|c| c.as_slice().cmp(sub.as_slice()))
                        .ok(),
                    KoseSearch::HashSet => index.get(sub.as_slice()).copied(),
                };
                if let Some(pos) = pos {
                    is_contained[pos] = true;
                }
            }
        }
        for (c, &contained) in current.iter().zip(&is_contained) {
            if !contained {
                stats.maximal += 1;
                if c.len() >= min_k {
                    sink.maximal(c);
                }
            }
        }
        // dedupe next (canonical join generates each (k+1)-clique once,
        // but keep the defensive check cheap in debug builds)
        debug_assert!({
            let set: HashSet<&[Vertex]> = next.iter().map(Vec::as_slice).collect();
            set.len() == next.len()
        });
        current = next;
        k += 1;
    }
    stats
}

/// Counters exposing the baseline's cost profile.
#[derive(Clone, Debug, Default)]
pub struct KoseStats {
    /// Number of k-cliques stored at each level (the memory the Clique
    /// Enumerator avoids).
    pub stored_cliques: Vec<usize>,
    /// Total maximal cliques found (before `min_k` filtering).
    pub maximal: usize,
}

impl KoseStats {
    /// Peak number of cliques co-resident across two adjacent levels.
    pub fn peak_stored(&self) -> usize {
        self.stored_cliques
            .windows(2)
            .map(|w| w[0] + w[1])
            .max()
            .or_else(|| self.stored_cliques.first().copied())
            .unwrap_or(0)
    }
}

/// Convenience: collect all maximal cliques of size ≥ `min_k`,
/// canonicalized for comparisons.
pub fn kose_ram_sorted(g: &BitGraph, min_k: usize) -> Vec<Clique> {
    let mut sink = crate::sink::CollectSink::default();
    kose_ram(g, min_k, &mut sink);
    let mut cliques = sink.cliques;
    cliques.sort();
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use gsb_graph::generators::{gnp, planted, Module};

    #[test]
    fn matches_bk_on_random_graphs() {
        for seed in 0..8 {
            let g = gnp(20, 0.4, seed);
            let got = kose_ram_sorted(&g, 1);
            assert_eq!(got, base_bk_sorted(&g), "seed {seed}");
        }
    }

    #[test]
    fn min_k_filters() {
        let g = planted(25, 0.08, &[Module::clique(6)], 1);
        let got = kose_ram_sorted(&g, 4);
        let expect: Vec<Clique> = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| c.len() >= 4)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn non_decreasing_order() {
        let g = planted(30, 0.1, &[Module::clique(7)], 2);
        let mut sink = crate::sink::CollectSink::default();
        kose_ram(&g, 1, &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stats_show_storage_blowup() {
        // K9: stores all C(9,k) cliques at every level — the baseline's
        // signature cost.
        let g = BitGraph::complete(9);
        let mut sink = crate::sink::CountSink::default();
        let stats = kose_ram(&g, 1, &mut sink);
        assert_eq!(sink.count, 1);
        assert_eq!(stats.maximal, 1);
        assert_eq!(stats.stored_cliques[2], 84); // C(9,3)
        assert!(stats.peak_stored() >= 126 + 126); // C(9,4)+C(9,5)
    }

    #[test]
    fn empty_graph() {
        let g = BitGraph::new(0);
        assert!(kose_ram_sorted(&g, 1).is_empty());
    }

    #[test]
    fn both_search_modes_agree() {
        for seed in 0..4 {
            let g = gnp(18, 0.45, seed);
            let mut a = crate::sink::CollectSink::default();
            kose_ram_with(&g, 1, KoseSearch::SortedList, &mut a);
            let mut b = crate::sink::CollectSink::default();
            kose_ram_with(&g, 1, KoseSearch::HashSet, &mut b);
            assert_eq!(a.cliques, b.cliques, "seed {seed}");
        }
    }
}
