//! Level backends: how one level of candidate sub-lists is held.
//!
//! The paper contrasts two regimes for the levelwise enumerator's
//! working set: fully in-core on the Altix's shared memory (§3) versus
//! the abandoned out-of-core predecessor whose "intensive disk I/O
//! access has been the major bottleneck" (§1). [`LevelBackend`]
//! abstracts exactly that choice so a *single* expansion kernel
//! ([`crate::CliqueEnumerator`]) serves both:
//!
//! * [`InMemoryLevel`] — the plain resident vector; infallible, zero
//!   I/O;
//! * [`SpilledLevel`] — a budgeted [`LevelStore`] that keeps sub-lists
//!   resident up to a formula-byte budget and streams the overflow
//!   through CRC-framed spill files.
//!
//! Orthogonally, [`BackendChoice`] names the *bitmap representation*
//! (dense, WAH-compressed, or adaptive hybrid) a run should use; the
//! pipeline and CLI dispatch on it to pick the `S` type parameter.

use crate::store::{DrainReport, LevelStore, SpillConfig, StoreError};
use crate::sublist::SubList;
use gsb_bitset::NeighborSet;

/// How a level of sub-lists is held and iterated.
///
/// A backend is a write-once/drain-once container: the enumerator
/// pushes every (k+1)-clique sub-list it generates, then drains the
/// whole level to expand it into the next. `drain` consumes the
/// backend, so storage (spill files included) is reclaimed as soon as
/// the level has been expanded.
pub trait LevelBackend<S: NeighborSet>: Sized {
    /// Per-run configuration (e.g. the spill budget and directory).
    type Config: Clone + std::fmt::Debug + Send + Sync;

    /// Human-readable backend name for reports and errors.
    const NAME: &'static str;

    /// An empty level over a `graph_n`-vertex graph.
    fn open(config: &Self::Config, graph_n: usize) -> Self;

    /// Append one sub-list. Only a spilling backend can fail.
    fn push(&mut self, sl: SubList<S>) -> Result<(), StoreError>;

    /// Hint that `additional` more sub-lists are coming (the paper's
    /// own bound `N[k+1] ≤ M[k] − 2N[k]` sizes the next level exactly).
    fn reserve(&mut self, _additional: usize) {}

    /// Release over-reserved capacity after the level is fully built.
    fn shrink(&mut self) {}

    /// Number of sub-lists held (resident + spilled).
    fn len(&self) -> usize;

    /// True when the level holds no work.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many of the held sub-lists live on disk rather than in
    /// memory (0 for purely resident backends).
    fn spilled_len(&self) -> usize {
        0
    }

    /// Consume the level, applying `f` to every sub-list, and report
    /// how much came back from disk.
    fn drain(self, f: impl FnMut(SubList<S>)) -> Result<DrainReport, StoreError>;
}

/// The resident backend: today's plain `Vec<SubList>` level, unchanged
/// in behavior and cost. Pushes never fail and drains never touch disk.
#[derive(Clone, Debug, Default)]
pub struct InMemoryLevel<S> {
    sublists: Vec<SubList<S>>,
}

impl<S: NeighborSet> LevelBackend<S> for InMemoryLevel<S> {
    type Config = ();
    const NAME: &'static str = "in-memory";

    fn open(_config: &(), _graph_n: usize) -> Self {
        InMemoryLevel {
            sublists: Vec::new(),
        }
    }

    fn push(&mut self, sl: SubList<S>) -> Result<(), StoreError> {
        self.sublists.push(sl);
        Ok(())
    }

    fn reserve(&mut self, additional: usize) {
        self.sublists.reserve(additional);
    }

    fn shrink(&mut self) {
        self.sublists.shrink_to_fit();
    }

    fn len(&self) -> usize {
        self.sublists.len()
    }

    fn drain(self, mut f: impl FnMut(SubList<S>)) -> Result<DrainReport, StoreError> {
        for sl in self.sublists {
            f(sl);
        }
        Ok(DrainReport::default())
    }
}

/// The budgeted out-of-core backend: a [`LevelStore`] keeps sub-lists
/// resident up to `budget_bytes` of the paper's formula bytes and
/// spills the rest as CRC-framed records, streaming them back on
/// drain. This is both the measurable reproduction of the paper's
/// abandoned out-of-core predecessor and the degraded mode the
/// fault-tolerant pipeline swaps to under memory pressure.
pub struct SpilledLevel<S: NeighborSet> {
    store: LevelStore<S>,
}

impl<S: NeighborSet> LevelBackend<S> for SpilledLevel<S> {
    type Config = SpillConfig;
    const NAME: &'static str = "spilled";

    fn open(config: &SpillConfig, graph_n: usize) -> Self {
        SpilledLevel {
            store: LevelStore::new(config, graph_n),
        }
    }

    fn push(&mut self, sl: SubList<S>) -> Result<(), StoreError> {
        self.store.push(sl)
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    fn spilled_len(&self) -> usize {
        self.store.spilled_len()
    }

    fn drain(self, f: impl FnMut(SubList<S>)) -> Result<DrainReport, StoreError> {
        self.store.drain(f)
    }
}

/// Which common-neighbor bitmap representation a run should use.
///
/// This is the runtime-value mirror of the `S: NeighborSet` type
/// parameter, used where the choice arrives as data (CLI flag,
/// `run.meta` of a resumable run) rather than as a type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Dense `u64`-word bitmaps ([`gsb_bitset::BitSet`]).
    #[default]
    Dense,
    /// WAH-compressed bitmaps ([`gsb_bitset::WahBitSet`]), operated on
    /// in compressed form.
    Wah,
    /// Per-sub-list adaptive choice ([`gsb_bitset::HybridSet`]): each
    /// stored bitmap keeps whichever representation is smaller.
    Hybrid,
}

impl BackendChoice {
    /// Canonical lowercase name (`dense` / `wah` / `hybrid`), matching
    /// the CLI `--backend` values and the `run.meta` `backend=` key.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Dense => "dense",
            BackendChoice::Wah => "wah",
            BackendChoice::Hybrid => "hybrid",
        }
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(BackendChoice::Dense),
            "wah" => Ok(BackendChoice::Wah),
            "hybrid" => Ok(BackendChoice::Hybrid),
            other => Err(format!(
                "unknown backend '{other}' (expected dense, wah, or hybrid)"
            )),
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::{CliqueEnumerator, EnumConfig, EnumStats};
    use crate::sink::CollectSink;
    use gsb_bitset::{BitSet, WahBitSet};
    use gsb_graph::generators::{planted, Module};
    use gsb_graph::BitGraph;

    fn in_core(g: &BitGraph, config: EnumConfig) -> Vec<Vec<crate::Vertex>> {
        let mut sink = CollectSink::default();
        CliqueEnumerator::new(config).enumerate(g, &mut sink);
        let mut v = sink.cliques;
        v.sort();
        v
    }

    fn spilled(
        g: &BitGraph,
        config: EnumConfig,
        budget: usize,
    ) -> (Vec<Vec<crate::Vertex>>, EnumStats) {
        let mut sink = CollectSink::default();
        let stats = CliqueEnumerator::new(config)
            .enumerate_spilled(g, &mut sink, &SpillConfig::in_temp(budget))
            .expect("io ok");
        let mut v = sink.cliques;
        v.sort();
        (v, stats)
    }

    #[test]
    fn backend_choice_parses_and_prints() {
        for (s, want) in [
            ("dense", BackendChoice::Dense),
            ("wah", BackendChoice::Wah),
            ("hybrid", BackendChoice::Hybrid),
        ] {
            let got: BackendChoice = s.parse().unwrap();
            assert_eq!(got, want);
            assert_eq!(got.to_string(), s);
        }
        assert!("lzma".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn spilled_matches_in_core_across_budgets() {
        let g = planted(40, 0.08, &[Module::clique(9), Module::clique(7)], 6);
        let config = EnumConfig::default();
        let expect = in_core(&g, config);
        for budget in [0usize, 200, 5_000, usize::MAX] {
            let (got, stats) = spilled(&g, config, budget);
            assert_eq!(got, expect, "budget {budget}");
            if budget == 0 {
                assert!(stats.total_bytes_read() > 0, "nothing spilled at budget 0");
            }
            if budget == usize::MAX {
                assert_eq!(stats.total_bytes_read(), 0);
            }
            assert_eq!(stats.total_maximal, expect.len());
        }
    }

    #[test]
    fn spilled_wah_backend_matches_dense() {
        let g = planted(40, 0.08, &[Module::clique(9), Module::clique(7)], 6);
        let config = EnumConfig::default();
        let expect = in_core(&g, config);
        let mut sink = CollectSink::default();
        let stats = CliqueEnumerator::<WahBitSet, SpilledLevel<WahBitSet>>::with_backend(
            config,
            SpillConfig::in_temp(0),
        )
        .try_enumerate(&g, &mut sink)
        .expect("io ok");
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
        assert!(stats.total_bytes_read() > 0);
    }

    #[test]
    fn spilled_respects_size_window() {
        let g = planted(32, 0.1, &[Module::clique(8)], 3);
        let config = EnumConfig {
            min_k: 4,
            max_k: Some(6),
            record_costs: false,
        };
        let expect = in_core(&g, config);
        let (got, _) = spilled(&g, config, 100);
        assert_eq!(got, expect);
        assert!(got.iter().all(|c| (4..=6).contains(&c.len())));
    }

    #[test]
    fn spill_reports_levels() {
        let g = planted(36, 0.08, &[Module::clique(8)], 11);
        let (_, stats) = spilled(&g, EnumConfig::default(), 0);
        assert!(!stats.levels.is_empty());
        for w in stats.levels.windows(2) {
            assert_eq!(w[1].k, w[0].k + 1);
        }
        // with budget 0 every stored sub-list was spilled
        for l in &stats.levels[1..] {
            assert_eq!(l.spilled, l.sublists);
        }
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn from_level_handoff_matches_full_run() {
        // Run in core up to the level-3 barrier, hand that level to the
        // spilled backend, and check the combined output equals one run.
        let g = planted(36, 0.1, &[Module::clique(8), Module::clique(6)], 21);
        let config = EnumConfig::default();
        let expect = in_core(&g, config);

        let enumerator = CliqueEnumerator::new(config);
        let mut sink = CollectSink::default();
        let mut enum_stats = EnumStats::default();
        let mut level = enumerator.init_level(&g, &mut sink, &mut enum_stats);
        while level.k < 3 && !level.sublists.is_empty() {
            let (next, _) = enumerator.step(&g, &level, &mut sink);
            level = next;
        }
        enumerator
            .enumerate_spilled_from_level(&g, level, &mut sink, &SpillConfig::in_temp(0))
            .expect("io ok");
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn in_memory_backend_is_a_plain_vec() {
        let g = BitGraph::complete(4);
        let mut level: InMemoryLevel<BitSet> = InMemoryLevel::open(&(), g.n());
        assert!(level.is_empty());
        level
            .push(SubList {
                prefix: vec![0],
                cn: g.neighbors(0).clone(),
                tails: vec![1, 2, 3],
            })
            .unwrap();
        level.reserve(8);
        level.shrink();
        assert_eq!(level.len(), 1);
        assert_eq!(level.spilled_len(), 0);
        let mut n = 0;
        let report = level.drain(|_| n += 1).unwrap();
        assert_eq!(n, 1);
        assert_eq!(report, DrainReport::default());
    }
}
