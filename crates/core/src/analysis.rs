//! Downstream analysis of enumerated cliques.
//!
//! The paper's biology lands here (§4): "Our analysis of cliques
//! allowed us to detect the most highly connected vertex, corresponding
//! to expression of Lin7c" — vertex participation across maximal
//! cliques — and "we have also been able to examine the relation of
//! these small cliques, and large subgraphs of which they are a part" —
//! the clique overlap graph. Kose et al.'s original visualization was
//! the clique–metabolite membership matrix, also provided.

use crate::{Clique, Vertex};
use gsb_bitset::BitSet;
use gsb_graph::BitGraph;

/// How many maximal cliques each vertex belongs to. The argmax is the
/// paper's "most highly connected vertex" (its Lin7c).
pub fn participation_counts(n: usize, cliques: &[Clique]) -> Vec<usize> {
    let mut counts = vec![0usize; n];
    for c in cliques {
        for &v in c {
            counts[v as usize] += 1;
        }
    }
    counts
}

/// Vertices sorted by participation, descending (ties by index); the
/// first entry is the hub.
pub fn hubs(n: usize, cliques: &[Clique]) -> Vec<(usize, usize)> {
    let counts = participation_counts(n, cliques);
    let mut order: Vec<(usize, usize)> = counts.into_iter().enumerate().collect();
    order.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
    order
}

/// Clique membership as bitmaps (one per clique, over the vertex
/// universe) — the rows of a clique–vertex matrix.
pub fn membership_bitmaps(n: usize, cliques: &[Clique]) -> Vec<BitSet> {
    cliques
        .iter()
        .map(|c| BitSet::from_ones(n, c.iter().map(|&v| v as usize)))
        .collect()
}

/// The clique overlap graph: one vertex per clique, an edge where two
/// cliques share at least `min_overlap` vertices. This is the
/// "larger systems-level graph" the paper places its functional units
/// into.
pub fn clique_graph(n: usize, cliques: &[Clique], min_overlap: usize) -> BitGraph {
    let rows = membership_bitmaps(n, cliques);
    let mut g = BitGraph::new(cliques.len());
    for i in 0..rows.len() {
        for j in i + 1..rows.len() {
            if rows[i].count_and(&rows[j]) >= min_overlap {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Greedy non-overlapping decomposition into dense units: repeatedly
/// take the maximum clique of the remaining graph, grow it into a
/// paraclique with glom factor `p`, report it, and delete its vertices;
/// stop when the maximum clique falls below `min_size`. Returns units
/// in extraction order (the Langston-group "clique-centric
/// decomposition" of a co-expression graph).
pub fn paraclique_decomposition(g: &BitGraph, min_size: usize, p: f64) -> Vec<Clique> {
    let mut alive = BitSet::full(g.n());
    let mut units = Vec::new();
    loop {
        let (sub, ids) = g.induced(&alive);
        let seed = crate::maxclique::maximum_clique(&sub);
        if seed.len() < min_size.max(1) {
            break;
        }
        let pc = crate::paraclique::paraclique(&sub, &seed, p);
        let unit: Clique = pc.iter().map(|&v| ids[v as usize] as Vertex).collect();
        for &v in &unit {
            alive.remove(v as usize);
        }
        units.push(unit);
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::CliqueEnumerator;
    use gsb_graph::generators::planted;

    fn cliques_of(g: &BitGraph) -> Vec<Clique> {
        let mut sink = CollectSink::default();
        CliqueEnumerator::default().enumerate(g, &mut sink);
        sink.cliques
    }

    #[test]
    fn participation_finds_the_shared_vertex() {
        // two triangles sharing vertex 0
        let g = BitGraph::from_edges(5, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]);
        let cliques = cliques_of(&g);
        assert_eq!(cliques.len(), 2);
        let counts = participation_counts(g.n(), &cliques);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        let top = hubs(g.n(), &cliques);
        assert_eq!(top[0], (0, 2));
    }

    #[test]
    fn clique_graph_links_overlapping_cliques() {
        let g = BitGraph::from_edges(5, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)]);
        let cliques = cliques_of(&g);
        let cg1 = clique_graph(g.n(), &cliques, 1);
        assert_eq!(cg1.m(), 1); // they share vertex 0
        let cg2 = clique_graph(g.n(), &cliques, 2);
        assert_eq!(cg2.m(), 0);
    }

    #[test]
    fn membership_bitmaps_shape() {
        let cliques = vec![vec![0u32, 2], vec![1, 2, 3]];
        let rows = membership_bitmaps(4, &cliques);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].to_vec(), vec![0, 2]);
        assert_eq!(rows[1].count_ones(), 3);
    }

    #[test]
    fn decomposition_recovers_disjoint_modules() {
        // three disjoint cliques (9, 7, 5) + scattered background edges
        let mut g = BitGraph::new(60);
        for (start, size) in [(0usize, 9usize), (20, 7), (40, 5)] {
            for i in start..start + size {
                for j in i + 1..start + size {
                    g.add_edge(i, j);
                }
            }
        }
        let noise = planted(60, 0.01, &[], 3);
        for (u, v) in noise.edges() {
            g.add_edge(u, v);
        }
        let units = paraclique_decomposition(&g, 4, 1.0);
        assert!(units.len() >= 3, "got {} units", units.len());
        // units are disjoint
        let mut seen = std::collections::BTreeSet::new();
        for unit in &units {
            for &v in unit {
                assert!(seen.insert(v), "vertex {v} in two units");
            }
        }
        // sizes decrease (maximum clique first)
        assert!(units.windows(2).all(|w| w[0].len() >= w[1].len() - 1));
        assert!(units[0].len() >= 9);
    }

    #[test]
    fn decomposition_respects_min_size() {
        let g = BitGraph::from_edges(4, [(0, 1), (1, 2)]);
        assert!(paraclique_decomposition(&g, 3, 1.0).is_empty());
    }
}
