//! # gsb-core — the SC'05 memory-intensive clique framework
//!
//! This crate is the paper's primary contribution, implemented in full:
//!
//! * [`enumerator`] — the sequential **Clique Enumerator** (§2.3):
//!   levelwise maximal-clique enumeration in non-decreasing size order,
//!   sub-lists sharing a (k−1)-prefix + one common-neighbor bitmap, the
//!   one-AND + any-bit maximality test;
//! * [`parallel`] — the multithreaded Clique Enumerator with the paper's
//!   centralized dynamic load balancer over a persistent worker pool;
//! * [`kose`] — the **Kose RAM** baseline (Table 1's comparator): stores
//!   all k-cliques and decides maximality by subset containment checks;
//! * [`bk`] — **Base BK** and **Improved BK** (§2.2), the classic
//!   Bron–Kerbosch enumerators used as correctness references;
//! * [`kclique`] — the **k-clique enumerator** (§2.2): all (maximal and
//!   non-maximal) cliques of exactly size k in canonical order, with
//!   degree-(k−1) preprocessing and the size boundary condition — the
//!   seed for runs starting at `init_k`;
//! * [`maxclique`] — exact maximum clique (branch & bound with greedy
//!   coloring bound) for the upper bound of §2.1 (the FPT
//!   vertex-cover route lives in `gsb-fpt`);
//! * [`paraclique`] — paraclique extraction ("cliques, paracliques and
//!   other forms of densely-connected subgraphs", §1);
//! * [`analysis`] — downstream clique analysis: vertex participation
//!   (the paper's "most highly connected vertex" / Lin7c finding),
//!   clique overlap graphs, and paraclique decomposition;
//! * [`memory`] — per-level memory accounting using the paper's own
//!   formula (the data behind Fig. 9);
//! * [`backend`] / [`store`] — level storage behind the
//!   [`backend::LevelBackend`] trait: the resident vector, or the
//!   out-of-core configuration the paper's predecessor ran in (§1) —
//!   budgeted level storage with disk spill — so the
//!   in-core-vs-out-of-core comparison is measurable on one kernel;
//! * [`wahclique`] — maximal clique enumeration operating on
//!   WAH-compressed bitmaps end to end (§4's compression direction);
//! * [`pipeline`] — the end-to-end driver: bounds → seed → enumerate.
//!
//! ## Ordering contract
//!
//! Both enumerators emit every maximal clique of size `s` before any of
//! size `s + 1` — the property that lets a genome-scale run be bounded
//! to an interesting size range and its progress tracked (§2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod backend;
pub mod bk;
pub mod checkpoint;
pub mod enumerator;
pub mod failpoint;
pub mod kclique;
pub mod kose;
pub mod maxclique;
pub mod memory;
pub mod neighborhood;
pub mod order;
pub mod paraclique;
pub mod parallel;
pub mod pipeline;
pub mod quarantine;
pub mod sink;
pub mod store;
pub mod sublist;
pub mod supervise;
pub mod wahclique;

pub use backend::{BackendChoice, InMemoryLevel, LevelBackend, SpilledLevel};
pub use checkpoint::{
    latest_checkpoint, CheckpointConfig, CheckpointManager, CheckpointPolicy, CheckpointWrite,
    RunMeta, RunProgress,
};
pub use enumerator::{CliqueEnumerator, EnumConfig, EnumStats, LevelReport};
pub use kose::{kose_ram, kose_ram_with, KoseSearch};
pub use maxclique::{maximum_clique, maximum_clique_size};
pub use neighborhood::{cliques_created_by_edge, maximal_cliques_induced};
pub use parallel::{BalanceStrategy, ParallelConfig, ParallelEnumerator, ParallelStats, Scheduler};
pub use pipeline::{CliquePipeline, PipelineError, PipelineReport};
pub use quarantine::QuarantineEntry;
pub use sink::{
    CliqueSink, CollectSink, CountSink, FnSink, HistogramSink, SequencingSink, TeeSink, WriterSink,
};
pub use store::{SpillConfig, StoreError};
pub use sublist::{Level, SubList};
pub use supervise::{RetryPolicy, ShutdownToken};

/// Vertex index type: 32 bits, matching the paper's per-vertex-index
/// cost `c` in the space analysis (§2.3).
pub type Vertex = u32;

/// A clique as a sorted (ascending) vertex list.
pub type Clique = Vec<Vertex>;
