//! Maximal clique enumeration over *compressed* bitmaps — the paper's
//! §4 "work underway", completed.
//!
//! A Base-BK traversal in which COMPSUB's bookkeeping sets and every
//! neighborhood stay WAH-compressed end to end: candidate shrinking is
//! a compressed AND, the maximality test a compressed any-bit check.
//! On graphs at the paper's sparsity the working set shrinks by an
//! order of magnitude or more; the `ablation_wah` bench quantifies the
//! time trade.

use crate::sink::CliqueSink;
use crate::Vertex;
use gsb_bitset::WahBitSet;
use gsb_graph::compressed::WahGraph;

/// Enumerate all maximal cliques of a compressed graph.
pub fn wah_base_bk(g: &WahGraph, sink: &mut impl CliqueSink) {
    let n = g.n();
    if n == 0 {
        return;
    }
    let full = WahBitSet::from_bitset(&gsb_bitset::BitSet::full(n));
    let empty = WahBitSet::zero(n);
    let mut compsub = Vec::new();
    extend(g, &mut compsub, full, empty, sink);
}

fn extend(
    g: &WahGraph,
    compsub: &mut Vec<Vertex>,
    mut candidates: WahBitSet,
    mut not: WahBitSet,
    sink: &mut impl CliqueSink,
) {
    while let Some(v) = candidates.first_one() {
        // In-place single-bit updates: no temporary singleton bitmaps,
        // no AND-NOT/OR pass over the whole encoding per iteration.
        candidates.clear_bit(v);
        compsub.push(v as Vertex);
        let new_candidates = candidates.and(g.neighbors(v));
        let new_not = not.and(g.neighbors(v));
        if !new_candidates.any() && !new_not.any() {
            sink.maximal(compsub);
        } else {
            extend(g, compsub, new_candidates, new_not, sink);
        }
        compsub.pop();
        not.set_bit(v);
    }
}

/// Collect and canonicalize (test support).
pub fn wah_base_bk_sorted(g: &WahGraph) -> Vec<Vec<Vertex>> {
    let mut sink = crate::sink::CollectSink::default();
    wah_base_bk(g, &mut sink);
    let mut cliques = sink.cliques;
    for c in &mut cliques {
        c.sort_unstable();
    }
    cliques.sort();
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use gsb_graph::generators::{gnp, planted, Module};
    use gsb_graph::BitGraph;

    #[test]
    fn matches_plain_bk_on_random_graphs() {
        for seed in 0..6 {
            let g = gnp(30, 0.3, seed);
            let w = WahGraph::from_bitgraph(&g);
            assert_eq!(wah_base_bk_sorted(&w), base_bk_sorted(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_plain_bk_on_planted_modules() {
        let g = planted(60, 0.02, &[Module::clique(8), Module::clique(6)], 4);
        let w = WahGraph::from_bitgraph(&g);
        assert_eq!(wah_base_bk_sorted(&w), base_bk_sorted(&g));
    }

    #[test]
    fn degenerate_graphs() {
        assert!(wah_base_bk_sorted(&WahGraph::from_bitgraph(&BitGraph::new(0))).is_empty());
        let g = BitGraph::new(3); // edgeless
        assert_eq!(wah_base_bk_sorted(&WahGraph::from_bitgraph(&g)).len(), 3);
        let g = BitGraph::complete(5);
        assert_eq!(
            wah_base_bk_sorted(&WahGraph::from_bitgraph(&g)),
            vec![vec![0, 1, 2, 3, 4]]
        );
    }
}
