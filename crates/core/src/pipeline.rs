//! End-to-end driver: the paper's three-stage strategy (§2).
//!
//! "Using a maximum clique algorithm to determine an upper bound on
//! clique size (Section 2.1), we then enumerate all k-cliques ... where
//! k is the user-supplied lower bound (Section 2.2). A maximal clique
//! enumeration algorithm (Section 2.3) is then employed using the
//! non-maximal k-cliques as input."

use crate::enumerator::{CliqueEnumerator, EnumConfig, EnumStats};
use crate::maxclique::maximum_clique_size;
use crate::parallel::{ParallelConfig, ParallelEnumerator, ParallelStats};
use crate::sink::CliqueSink;
use gsb_graph::reduce::clique_upper_bound;
use gsb_graph::BitGraph;
use std::sync::Arc;

/// Builder for a full clique-analysis run.
#[derive(Clone, Debug)]
pub struct CliquePipeline {
    min_k: usize,
    max_k: Option<usize>,
    threads: usize,
    exact_upper_bound: bool,
}

impl Default for CliquePipeline {
    fn default() -> Self {
        CliquePipeline {
            min_k: 3,
            max_k: None,
            threads: 1,
            exact_upper_bound: true,
        }
    }
}

/// Bounds and statistics of a pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Cheap combinatorial upper bound (degeneracy/coloring).
    pub upper_bound: usize,
    /// Exact maximum clique size, when computed.
    pub maximum_clique: Option<usize>,
    /// The lower bound actually used for seeding.
    pub min_k: usize,
    /// Sequential enumeration stats (single-threaded runs).
    pub enum_stats: Option<EnumStats>,
    /// Parallel stats (multi-threaded runs).
    pub parallel_stats: Option<ParallelStats>,
}

impl CliquePipeline {
    /// New pipeline with defaults (`min_k = 3`, sequential).
    pub fn new() -> Self {
        Self::default()
    }

    /// Report maximal cliques of at least this size (the paper's
    /// `Init_K`).
    pub fn min_size(mut self, k: usize) -> Self {
        self.min_k = k.max(1);
        self
    }

    /// Stop exploring above this size.
    pub fn max_size(mut self, k: usize) -> Self {
        self.max_k = Some(k);
        self
    }

    /// Worker threads (1 = sequential Clique Enumerator).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Skip the exact maximum-clique computation and rely on the cheap
    /// upper bound only (useful when the graph is huge and only the
    /// range matters).
    pub fn skip_exact_bound(mut self) -> Self {
        self.exact_upper_bound = false;
        self
    }

    /// Run the pipeline, delivering maximal cliques to `sink` in
    /// non-decreasing size order.
    pub fn run(&self, g: &BitGraph, sink: &mut impl CliqueSink) -> PipelineReport {
        // Stage 1: bounds. The cheap bound caps the level loop; the
        // exact bound reproduces the paper's "maximum clique size
        // was 17 / 110 / 28" preamble.
        let upper_bound = clique_upper_bound(g);
        let maximum = self
            .exact_upper_bound
            .then(|| maximum_clique_size(g));
        let effective_max = match (self.max_k, maximum) {
            (Some(mx), Some(exact)) => Some(mx.min(exact)),
            (Some(mx), None) => Some(mx.min(upper_bound)),
            (None, _) => None, // enumerator stops on its own
        };
        let config = EnumConfig {
            min_k: self.min_k,
            max_k: effective_max,
            record_costs: false,
        };
        // Stages 2+3: seed at min_k (inside the enumerator) and run the
        // levelwise enumeration.
        if self.threads == 1 {
            let stats = CliqueEnumerator::new(config).enumerate(g, sink);
            PipelineReport {
                upper_bound,
                maximum_clique: maximum,
                min_k: self.min_k,
                enum_stats: Some(stats),
                parallel_stats: None,
            }
        } else {
            let par = ParallelEnumerator::new(ParallelConfig {
                threads: self.threads,
                enum_config: config,
                ..Default::default()
            });
            let garc = Arc::new(g.clone());
            let stats = par.enumerate(&garc, sink);
            PipelineReport {
                upper_bound,
                maximum_clique: maximum,
                min_k: self.min_k,
                enum_stats: None,
                parallel_stats: Some(stats),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use crate::sink::CollectSink;
    use gsb_graph::generators::{planted, Module};

    #[test]
    fn sequential_pipeline_end_to_end() {
        let g = planted(40, 0.08, &[Module::clique(9)], 21);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new().min_size(4).run(&g, &mut sink);
        assert_eq!(report.maximum_clique, Some(9));
        assert!(report.upper_bound >= 9);
        let mut got = sink.cliques;
        got.sort();
        let expect: Vec<_> = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| c.len() >= 4)
            .collect();
        assert_eq!(got, expect);
        assert!(report.enum_stats.is_some());
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let g = planted(36, 0.1, &[Module::clique(8), Module::clique(6)], 2);
        let mut s1 = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut s1);
        let mut s4 = CollectSink::default();
        let report = CliquePipeline::new().min_size(3).threads(4).run(&g, &mut s4);
        let mut a = s1.cliques;
        let mut b = s4.cliques;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(report.parallel_stats.is_some());
    }

    #[test]
    fn size_window() {
        let g = planted(30, 0.1, &[Module::clique(8)], 13);
        let mut sink = CollectSink::default();
        CliquePipeline::new()
            .min_size(4)
            .max_size(5)
            .run(&g, &mut sink);
        assert!(sink
            .cliques
            .iter()
            .all(|c| (4..=5).contains(&c.len())));
        let expect = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| (4..=5).contains(&c.len()))
            .count();
        assert_eq!(sink.cliques.len(), expect);
    }

    #[test]
    fn skip_exact_bound_still_correct() {
        let g = planted(30, 0.1, &[Module::clique(7)], 5);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .skip_exact_bound()
            .run(&g, &mut sink);
        assert_eq!(report.maximum_clique, None);
        let mut got = sink.cliques;
        got.sort();
        let expect: Vec<_> = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| c.len() >= 3)
            .collect();
        assert_eq!(got, expect);
    }
}
