//! End-to-end driver: the paper's three-stage strategy (§2).
//!
//! "Using a maximum clique algorithm to determine an upper bound on
//! clique size (Section 2.1), we then enumerate all k-cliques ... where
//! k is the user-supplied lower bound (Section 2.2). A maximal clique
//! enumeration algorithm (Section 2.3) is then employed using the
//! non-maximal k-cliques as input."
//!
//! ## Fault tolerance
//!
//! The pipeline is also the fault-tolerant runtime. When configured
//! with [`checkpoint`](CliquePipeline::checkpoint) and/or
//! [`memory_budget`](CliquePipeline::memory_budget) it drives the
//! enumeration through per-level barriers where it
//!
//! 1. flushes durable sinks and persists the level atomically (crash
//!    recovery: [`CliquePipeline::resume`] reloads the newest valid
//!    checkpoint and re-expands it, emitting only sizes above it);
//! 2. projects the next level's footprint and, when it would exceed the
//!    budget, *degrades* mid-flight to the out-of-core enumerator
//!    instead of dying on allocation;
//! 3. contains worker panics: a failed parallel round is discarded and
//!    retried once on respawned workers; a second failure writes a
//!    final checkpoint and surfaces [`PipelineError::Workers`].
//!
//! Without those options `run` takes the original in-core fast path.

use crate::backend::{BackendChoice, InMemoryLevel, SpilledLevel};
use crate::checkpoint::{
    latest_checkpoint, record_stop_cause, CheckpointConfig, CheckpointManager, RunProgress,
    StopCause,
};
use crate::enumerator::{CliqueEnumerator, EnumConfig, EnumStats, LevelReport};
use crate::maxclique::maximum_clique_size;
use crate::memory::LevelMemory;
use crate::parallel::{
    BarrierControl, ParallelConfig, ParallelEnumerator, ParallelOutcome, ParallelRunError,
    ParallelStats, Scheduler,
};
use crate::sink::CliqueSink;
use crate::store::{SpillConfig, StoreError};
use crate::sublist::Level;
use crate::supervise::ShutdownToken;
use crate::Vertex;
use gsb_bitset::{BitSet, HybridSet, NeighborSet, WahBitSet};
use gsb_graph::reduce::clique_upper_bound;
use gsb_graph::BitGraph;
use gsb_par::RoundError;
use gsb_telemetry::{LevelRecord, RunSummary, RunTelemetry, TelemetryConfig};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A pipeline run failed (only possible with fault-tolerance options:
/// the plain in-core path is infallible).
#[derive(Debug)]
pub enum PipelineError {
    /// Checkpoint or spill I/O / corruption, or a durable sink that
    /// could not be flushed at a barrier.
    Store(StoreError),
    /// A parallel level failed twice (original round + retry). When
    /// checkpointing is configured, a final checkpoint of the failed
    /// level was written before this was returned, so the run is
    /// resumable.
    Workers {
        /// The level whose workers failed.
        k: usize,
        /// The retry round's failures.
        error: RoundError,
    },
    /// `resume` found no checkpoint (none configured, none written, or
    /// the run had already completed and cleaned up).
    NoCheckpoint,
    /// A graceful shutdown was requested (via the pipeline's
    /// [`ShutdownToken`], typically from a SIGINT/SIGTERM handler). The
    /// run stopped at a level barrier; when checkpointing is
    /// configured, a final checkpoint and the stop cause were persisted
    /// first, so the directory is `resume`-ready.
    Interrupted {
        /// The signal number that requested the shutdown (2 = SIGINT,
        /// 15 = SIGTERM); processes conventionally exit `128 + signal`.
        signal: i32,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Store(e) => write!(f, "pipeline storage error: {e}"),
            PipelineError::Workers { k, error } => {
                write!(f, "workers failed at level {k} after retry: {error}")
            }
            PipelineError::NoCheckpoint => write!(f, "no checkpoint to resume from"),
            PipelineError::Interrupted { signal } => {
                write!(f, "interrupted by signal {signal} (checkpoint saved)")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Store(e) => Some(e),
            PipelineError::Workers { error, .. } => Some(error),
            PipelineError::NoCheckpoint | PipelineError::Interrupted { .. } => None,
        }
    }
}

impl From<StoreError> for PipelineError {
    fn from(e: StoreError) -> Self {
        PipelineError::Store(e)
    }
}

/// Builder for a full clique-analysis run.
#[derive(Clone, Debug)]
pub struct CliquePipeline {
    min_k: usize,
    max_k: Option<usize>,
    threads: usize,
    exact_upper_bound: bool,
    checkpoint: Option<CheckpointConfig>,
    memory_budget: Option<usize>,
    degrade_dir: Option<PathBuf>,
    telemetry: Option<Arc<RunTelemetry>>,
    backend: BackendChoice,
    shutdown: Option<ShutdownToken>,
    worker_deadline: Option<Duration>,
    quarantine: Option<PathBuf>,
    scheduler: Scheduler,
}

impl Default for CliquePipeline {
    fn default() -> Self {
        CliquePipeline {
            min_k: 3,
            max_k: None,
            threads: 1,
            exact_upper_bound: true,
            checkpoint: None,
            memory_budget: None,
            degrade_dir: None,
            telemetry: None,
            backend: BackendChoice::Dense,
            shutdown: None,
            worker_deadline: None,
            quarantine: None,
            scheduler: Scheduler::default(),
        }
    }
}

/// Bounds and statistics of a pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Cheap combinatorial upper bound (degeneracy/coloring).
    pub upper_bound: usize,
    /// Exact maximum clique size, when computed.
    pub maximum_clique: Option<usize>,
    /// The lower bound actually used for seeding.
    pub min_k: usize,
    /// Sequential enumeration stats (single-threaded runs).
    pub enum_stats: Option<EnumStats>,
    /// Parallel stats (multi-threaded runs).
    pub parallel_stats: Option<ParallelStats>,
    /// The checkpoint level this run resumed from, if any.
    pub resumed_from: Option<usize>,
    /// The level at which the run degraded to the out-of-core path, if
    /// the memory watchdog fired.
    pub degraded_at: Option<usize>,
    /// Levels that were checkpointed (and later cleaned up on success).
    pub checkpoints: Vec<usize>,
    /// Out-of-core stats for the degraded tail of the run, if any —
    /// the same per-level reports as `enum_stats`, with
    /// [`LevelReport::bytes_read`] counting the spill traffic.
    pub degraded_stats: Option<EnumStats>,
}

/// What the resilient driver hands back to the report assembly.
#[derive(Default)]
struct ResilientOutcome {
    enum_stats: Option<EnumStats>,
    parallel_stats: Option<ParallelStats>,
    degraded_stats: Option<EnumStats>,
    checkpoints: Vec<usize>,
    degraded_at: Option<usize>,
}

impl CliquePipeline {
    /// New pipeline with defaults (`min_k = 3`, sequential).
    pub fn new() -> Self {
        Self::default()
    }

    /// Report maximal cliques of at least this size (the paper's
    /// `Init_K`).
    pub fn min_size(mut self, k: usize) -> Self {
        self.min_k = k.max(1);
        self
    }

    /// Stop exploring above this size.
    pub fn max_size(mut self, k: usize) -> Self {
        self.max_k = Some(k);
        self
    }

    /// Worker threads (1 = sequential Clique Enumerator).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Skip the exact maximum-clique computation and rely on the cheap
    /// upper bound only (useful when the graph is huge and only the
    /// range matters).
    pub fn skip_exact_bound(mut self) -> Self {
        self.exact_upper_bound = false;
        self
    }

    /// Persist level checkpoints per `config` so a killed run can be
    /// continued with [`resume`](Self::resume). Durable sinks are
    /// flushed before every checkpoint write, so everything a resumed
    /// run skips is already on disk.
    pub fn checkpoint(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint = Some(config);
        self
    }

    /// Graceful degradation under memory pressure: at each barrier,
    /// project the upcoming level step's footprint
    /// ([`LevelMemory::projected_peak_bytes`]) and, when it exceeds
    /// `bytes`, finish the run with the out-of-core enumerator bounded
    /// by the same budget instead of allocating past it.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Directory for spill files when degradation kicks in (default:
    /// the checkpoint directory if configured, else the system temp
    /// directory).
    pub fn degrade_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.degrade_dir = Some(dir.into());
        self
    }

    /// Choose the common-neighbor bitmap representation the enumeration
    /// runs with: dense words (the default and fastest in-core),
    /// WAH-compressed (smallest footprint on sparse genome-scale
    /// graphs), or the adaptive hybrid (per-bitmap choice of the two).
    /// Every choice produces the identical clique set; checkpoints are
    /// written in the selected representation and must be resumed with
    /// the same one (`gsb resume` re-derives it from `run.meta`).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Attach a run-telemetry sink: one [`LevelRecord`] per level
    /// barrier (JSONL export and/or live progress per its
    /// [`TelemetryConfig`]), plus a final [`RunSummary`]. Routes the run
    /// through the barrier-driven driver even without checkpointing or
    /// a memory budget.
    pub fn telemetry(mut self, telemetry: Arc<RunTelemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Cooperative shutdown: the pipeline polls this token at every
    /// level barrier and, when a shutdown was requested (e.g. by a
    /// SIGINT/SIGTERM handler calling [`ShutdownToken::request`]),
    /// finishes the in-flight level, writes a final forced checkpoint
    /// (when checkpointing is configured), records the stop cause for
    /// `resume` to report, and returns
    /// [`PipelineError::Interrupted`]. Routes the run through the
    /// barrier-driven driver.
    pub fn shutdown(mut self, token: ShutdownToken) -> Self {
        self.shutdown = Some(token);
        self
    }

    /// Stuck-worker deadline: a parallel worker that goes this long
    /// without a heartbeat (one beat per sub-list processed) is
    /// declared stuck, abandoned, and replaced; its round is retried
    /// and, with [`quarantine`](Self::quarantine) configured, poison
    /// sub-lists are isolated instead of failing the run.
    pub fn worker_deadline(mut self, deadline: Duration) -> Self {
        self.worker_deadline = Some(deadline);
        self
    }

    /// Quarantine sidecar path (`quarantine.jsonl`): when a parallel
    /// level fails its retry, re-run it isolating the failing workers'
    /// sub-lists one by one; deterministic offenders are appended to
    /// this file and skipped (degraded-exact) instead of aborting the
    /// run.
    pub fn quarantine(mut self, path: impl Into<PathBuf>) -> Self {
        self.quarantine = Some(path.into());
        self
    }

    /// Parallel scheduling discipline: the work-stealing steal-scope
    /// runtime (default) or the paper's level-synchronous barrier
    /// rounds with the centralized spread balancer. Both emit
    /// byte-identical output; `run.meta` records the choice so
    /// [`resume`](Self::resume) re-derives it.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    fn enum_config(&self, g: &BitGraph) -> (usize, Option<usize>, EnumConfig) {
        // Stage 1: bounds. The cheap bound caps the level loop; the
        // exact bound reproduces the paper's "maximum clique size
        // was 17 / 110 / 28" preamble.
        let upper_bound = clique_upper_bound(g);
        let maximum = self.exact_upper_bound.then(|| maximum_clique_size(g));
        let effective_max = match (self.max_k, maximum) {
            (Some(mx), Some(exact)) => Some(mx.min(exact)),
            (Some(mx), None) => Some(mx.min(upper_bound)),
            (None, _) => None, // enumerator stops on its own
        };
        let config = EnumConfig {
            min_k: self.min_k,
            max_k: effective_max,
            record_costs: false,
        };
        (upper_bound, maximum, config)
    }

    fn spill_config(&self) -> SpillConfig {
        let dir = self
            .degrade_dir
            .clone()
            .or_else(|| self.checkpoint.as_ref().map(|c| c.dir.clone()))
            .unwrap_or_else(std::env::temp_dir);
        SpillConfig {
            budget_bytes: self.memory_budget.unwrap_or(usize::MAX),
            dir,
        }
    }

    /// Run the pipeline, delivering maximal cliques to `sink` in
    /// non-decreasing size order.
    ///
    /// Panics on failure; failures are only possible when checkpointing
    /// or a memory budget is configured — use
    /// [`try_run`](Self::try_run) to handle them as values.
    pub fn run(&self, g: &BitGraph, sink: &mut impl CliqueSink) -> PipelineReport {
        self.try_run(g, sink)
            .unwrap_or_else(|e| panic!("pipeline failed: {e}"))
    }

    /// Run the pipeline, surfacing checkpoint/budget/worker failures as
    /// [`PipelineError`] values.
    pub fn try_run(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
    ) -> Result<PipelineReport, PipelineError> {
        match self.backend {
            BackendChoice::Dense => self.try_run_repr::<BitSet>(g, sink),
            BackendChoice::Wah => self.try_run_repr::<WahBitSet>(g, sink),
            BackendChoice::Hybrid => self.try_run_repr::<HybridSet>(g, sink),
        }
    }

    /// `try_run` under one concrete bitmap representation — the single
    /// monomorphization point for the whole run path.
    fn try_run_repr<S: NeighborSet>(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
    ) -> Result<PipelineReport, PipelineError> {
        let io0 = crate::supervise::io_retries();
        let (upper_bound, maximum, config) = self.enum_config(g);

        // Stages 2+3: seed at min_k (inside the enumerator) and run the
        // levelwise enumeration.
        let outcome = if self.checkpoint.is_none()
            && self.memory_budget.is_none()
            && self.telemetry.is_none()
            && self.shutdown.is_none()
        {
            // Original infallible in-core fast path.
            if self.threads == 1 {
                let seq = CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(config, ());
                ResilientOutcome {
                    enum_stats: Some(seq.enumerate(g, sink)),
                    ..Default::default()
                }
            } else {
                let mut par = ParallelEnumerator::new(ParallelConfig {
                    threads: self.threads,
                    enum_config: config,
                    worker_deadline: self.worker_deadline,
                    scheduler: self.scheduler,
                    ..Default::default()
                });
                if let Some(q) = self.quarantine.clone() {
                    par = par.quarantine_to(q);
                }
                let garc = Arc::new(g.clone());
                let stats = match par.enumerate_resilient(
                    &garc,
                    None::<Level<S>>,
                    sink,
                    |_level, _mem, _sink| Ok(BarrierControl::Continue),
                ) {
                    Ok(ParallelOutcome::Complete(stats)) => stats,
                    Ok(ParallelOutcome::Degraded { .. })
                    | Ok(ParallelOutcome::Interrupted { .. }) => {
                        unreachable!("no-op barrier never degrades or halts")
                    }
                    Err(ParallelRunError::Round { k, error, .. }) => {
                        return Err(PipelineError::Workers { k, error })
                    }
                    Err(ParallelRunError::Store(e)) => return Err(PipelineError::Store(e)),
                };
                ResilientOutcome {
                    parallel_stats: Some(stats),
                    ..Default::default()
                }
            }
        } else {
            self.run_resilient::<S, _>(g, sink, None, config)?
        };
        let report = PipelineReport {
            upper_bound,
            maximum_clique: maximum,
            min_k: self.min_k,
            enum_stats: outcome.enum_stats,
            parallel_stats: outcome.parallel_stats,
            resumed_from: None,
            degraded_at: outcome.degraded_at,
            checkpoints: outcome.checkpoints,
            degraded_stats: outcome.degraded_stats,
        };
        self.note_supervision(&report, io0);
        self.finish_telemetry(&report)?;
        Ok(report)
    }

    /// Continue an interrupted run from the newest valid checkpoint in
    /// the configured checkpoint directory.
    ///
    /// The checkpointed level is re-expanded, so only cliques of size
    /// *greater than* the checkpoint level are emitted into `sink`; the
    /// caller owns everything the original run emitted before the
    /// crash (for file sinks: truncate to lines of size ≤ the
    /// checkpoint level — `gsb resume` does exactly that). Fails with
    /// [`PipelineError::NoCheckpoint`] when there is nothing to resume
    /// and [`StoreError::GraphMismatch`] when the checkpoint belongs to
    /// a different graph.
    pub fn resume(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
    ) -> Result<PipelineReport, PipelineError> {
        match self.backend {
            BackendChoice::Dense => self.resume_repr::<BitSet>(g, sink),
            BackendChoice::Wah => self.resume_repr::<WahBitSet>(g, sink),
            BackendChoice::Hybrid => self.resume_repr::<HybridSet>(g, sink),
        }
    }

    fn resume_repr<S: NeighborSet>(
        &self,
        g: &BitGraph,
        sink: &mut impl CliqueSink,
    ) -> Result<PipelineReport, PipelineError> {
        let io0 = crate::supervise::io_retries();
        let ckpt = self
            .checkpoint
            .as_ref()
            .ok_or(PipelineError::NoCheckpoint)?;
        let Some((k, level)) = latest_checkpoint::<S>(&ckpt.dir, g.n())? else {
            return Err(PipelineError::NoCheckpoint);
        };
        // Carry the interrupted run's cumulative progress into this
        // run's telemetry so totals keep counting from where it died.
        // A checkpoint dir written by an older build has no progress
        // file; resume still works, the totals just restart at zero.
        if let (Some(telemetry), Ok(progress)) =
            (self.telemetry.as_ref(), RunProgress::load(&ckpt.dir))
        {
            telemetry.seed_prior(
                progress.cliques_emitted,
                progress.levels_done,
                progress.wall_ms.saturating_mul(1_000_000),
            );
        }
        let (upper_bound, maximum, config) = self.enum_config(g);
        let outcome = self.run_resilient::<S, _>(g, sink, Some(level), config)?;
        let report = PipelineReport {
            upper_bound,
            maximum_clique: maximum,
            min_k: self.min_k,
            enum_stats: outcome.enum_stats,
            parallel_stats: outcome.parallel_stats,
            resumed_from: Some(k),
            degraded_at: outcome.degraded_at,
            checkpoints: outcome.checkpoints,
            degraded_stats: outcome.degraded_stats,
        };
        self.note_supervision(&report, io0);
        self.finish_telemetry(&report)?;
        Ok(report)
    }

    /// Feed supervision counters (quarantined sub-lists, transient-I/O
    /// retries performed during this run) into the caller's telemetry
    /// so they land in the final [`RunSummary`].
    fn note_supervision(&self, report: &PipelineReport, io_retries_before: u64) {
        let Some(telemetry) = self.telemetry.as_ref() else {
            return;
        };
        let quarantined = report.parallel_stats.as_ref().map_or(0, |s| s.quarantined);
        if quarantined > 0 {
            telemetry.note_quarantine(quarantined as u64);
        }
        let retried = crate::supervise::io_retries().saturating_sub(io_retries_before);
        if retried > 0 {
            telemetry.note_io_retries(retried);
        }
    }

    /// The signal behind a halt request (SIGINT's 2 when the token was
    /// tripped without one, e.g. from tests).
    fn requested_signal(&self) -> i32 {
        self.shutdown
            .as_ref()
            .and_then(ShutdownToken::signal)
            .unwrap_or(2)
    }

    /// Write the final summary record when the caller attached
    /// telemetry. The internal quiet instance used by plain resilient
    /// runs has no outputs, so skipping it here loses nothing.
    fn finish_telemetry(&self, report: &PipelineReport) -> Result<(), PipelineError> {
        if let Some(telemetry) = self.telemetry.as_ref() {
            telemetry
                .finish(RunSummary {
                    degraded_at: report.degraded_at.map(|k| k as u64),
                    max_clique: report.maximum_clique.unwrap_or(0) as u64,
                    ..Default::default()
                })
                .map_err(|e| PipelineError::Store(StoreError::Io(e)))?;
        }
        Ok(())
    }

    /// The barrier-driven driver behind `try_run` (with options) and
    /// `resume`.
    fn run_resilient<S: NeighborSet, K: CliqueSink>(
        &self,
        g: &BitGraph,
        sink: &mut K,
        start: Option<Level<S>>,
        config: EnumConfig,
    ) -> Result<ResilientOutcome, PipelineError> {
        let mut manager = self
            .checkpoint
            .clone()
            .map(CheckpointManager::new)
            .transpose()?;
        let budget = self.memory_budget;
        let g_n = g.n();
        // Even without caller-attached telemetry the resilient driver
        // keeps a quiet (no-output) instance, so checkpoint barriers
        // can always persist cumulative RunProgress for resume.
        let telemetry = match self.telemetry.clone() {
            Some(t) => t,
            None => Arc::new(
                RunTelemetry::new(TelemetryConfig::default())
                    .map_err(|e| PipelineError::Store(StoreError::Io(e)))?,
            ),
        };

        let outcome = if self.threads == 1 {
            self.run_resilient_sequential(
                g,
                sink,
                start,
                config,
                &mut manager,
                budget,
                g_n,
                &telemetry,
            )?
        } else {
            self.run_resilient_parallel(
                g,
                sink,
                start,
                config,
                &mut manager,
                budget,
                g_n,
                &telemetry,
            )?
        };
        Ok(outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_resilient_sequential<S: NeighborSet, K: CliqueSink>(
        &self,
        g: &BitGraph,
        sink: &mut K,
        start: Option<Level<S>>,
        config: EnumConfig,
        manager: &mut Option<CheckpointManager>,
        budget: Option<usize>,
        g_n: usize,
        telemetry: &RunTelemetry,
    ) -> Result<ResilientOutcome, PipelineError> {
        let seq = CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(config, ());
        let mut outcome = ResilientOutcome::default();
        let mut stats = EnumStats::default();
        let mut sink = TelemetrySink {
            inner: sink,
            telemetry,
        };
        let mut level = match start {
            Some(level) => level,
            None => seq.init_level(g, &mut sink, &mut stats),
        };
        // One representation conversion of the adjacency rows for the
        // whole run, shared by every level step.
        let rows = crate::enumerator::neighbor_rows::<S>(g);
        loop {
            if level.sublists.is_empty() {
                break;
            }
            if let Some(mx) = config.max_k {
                if level.k >= mx {
                    break;
                }
            }
            let memory = LevelMemory::account(&level, g_n);
            let control = at_barrier(
                manager,
                budget,
                self.shutdown.as_ref(),
                &level,
                &memory,
                &mut sink,
                g_n,
                telemetry,
            )?;
            match control {
                BarrierControl::Continue => {}
                BarrierControl::Halt => {
                    // The barrier already forced a final checkpoint and
                    // recorded the stop cause; leaving the files in
                    // place keeps the directory `resume`-ready.
                    return Err(PipelineError::Interrupted {
                        signal: self.requested_signal(),
                    });
                }
                BarrierControl::Degrade => {
                    outcome.degraded_at = Some(level.k);
                    // Degradation is a backend swap: same kernel, same
                    // representation, the level just moves to the
                    // budgeted spill store.
                    let degraded = CliqueEnumerator::<S, SpilledLevel<S>>::with_backend(
                        config,
                        self.spill_config(),
                    )
                    .try_enumerate_from_level(g, level, &mut sink)
                    .map_err(PipelineError::Store)?;
                    stats.total_maximal += degraded.total_maximal;
                    record_degraded_levels(telemetry, &degraded)?;
                    outcome.degraded_stats = Some(degraded);
                    break;
                }
            }
            let projected = memory.projected_peak_bytes(level.k, g_n) as u64;
            let (next, report) = seq.step_with_rows(g, &rows, &level, &mut sink);
            stats.total_maximal += report.maximal_found;
            telemetry
                .on_level(level_record(&report, projected))
                .map_err(|e| PipelineError::Store(StoreError::Io(e)))?;
            stats.levels.push(report);
            level = next;
        }
        finish_checkpoints(manager, &mut outcome);
        outcome.enum_stats = Some(stats);
        Ok(outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_resilient_parallel<S: NeighborSet, K: CliqueSink>(
        &self,
        g: &BitGraph,
        sink: &mut K,
        start: Option<Level<S>>,
        config: EnumConfig,
        manager: &mut Option<CheckpointManager>,
        budget: Option<usize>,
        g_n: usize,
        telemetry: &RunTelemetry,
    ) -> Result<ResilientOutcome, PipelineError> {
        let mut outcome = ResilientOutcome::default();
        let mut par = ParallelEnumerator::new(ParallelConfig {
            threads: self.threads,
            enum_config: config,
            worker_deadline: self.worker_deadline,
            scheduler: self.scheduler,
            ..Default::default()
        });
        if let Some(q) = self.quarantine.clone() {
            par = par.quarantine_to(q);
        }
        let garc = Arc::new(g.clone());
        let mut sink = TelemetrySink {
            inner: sink,
            telemetry,
        };
        // The observer can't propagate errors itself; park the first
        // write failure and surface it after the run.
        let mut telemetry_err: Option<std::io::Error> = None;
        let result = par.enumerate_observed(
            &garc,
            start,
            &mut sink,
            |level, memory, sink| {
                at_barrier(
                    manager,
                    budget,
                    self.shutdown.as_ref(),
                    level,
                    memory,
                    sink,
                    g_n,
                    telemetry,
                )
                .map_err(|e| {
                    match e {
                        PipelineError::Store(e) => e,
                        // at_barrier only produces Store errors
                        other => StoreError::Io(std::io::Error::other(other.to_string())),
                    }
                })
            },
            |report, level_stats, retried| {
                let projected = report.memory.projected_peak_bytes(report.k, g_n) as u64;
                let mut record = level_record(report, projected);
                record.busy_ns = level_stats.per_worker_ns.clone();
                record.units = level_stats.per_worker_units.clone();
                record.tasks = level_stats
                    .per_worker_tasks
                    .iter()
                    .map(|&t| t as u64)
                    .collect();
                record.transfers = level_stats.transfers as u64;
                record.steals = level_stats.per_worker_steals.clone();
                record.idle_ns = level_stats.per_worker_idle_ns.clone();
                record.failed_steals = level_stats.failed_steals;
                if retried {
                    record.retries = 1;
                    telemetry.note_retry();
                }
                if let Err(e) = telemetry.on_level(record) {
                    telemetry_err.get_or_insert(e);
                }
            },
        );
        match result {
            Ok(ParallelOutcome::Complete(stats)) => {
                outcome.parallel_stats = Some(stats);
            }
            Ok(ParallelOutcome::Degraded { level, stats }) => {
                outcome.degraded_at = Some(level.k);
                outcome.parallel_stats = Some(stats);
                let degraded = CliqueEnumerator::<S, SpilledLevel<S>>::with_backend(
                    config,
                    self.spill_config(),
                )
                .try_enumerate_from_level(g, level, &mut sink)
                .map_err(PipelineError::Store)?;
                record_degraded_levels(telemetry, &degraded)?;
                outcome.degraded_stats = Some(degraded);
            }
            Ok(ParallelOutcome::Interrupted { stats }) => {
                // The barrier already persisted a forced checkpoint and
                // the stop cause; surface the halt without cleaning up
                // so the directory stays `resume`-ready.
                outcome.parallel_stats = Some(stats);
                return Err(PipelineError::Interrupted {
                    signal: self.requested_signal(),
                });
            }
            Err(ParallelRunError::Round { k, error, level }) => {
                // Abort, but leave a final checkpoint of the failed
                // level so the operator can fix the cause and resume.
                if let Some(mgr) = manager.as_mut() {
                    let _ = sink.flush_barrier();
                    let _ = mgr.force(&level);
                    let _ = record_stop_cause(mgr.dir(), StopCause::WorkerFailure);
                    outcome.checkpoints = mgr.written().to_vec();
                }
                return Err(PipelineError::Workers { k, error });
            }
            Err(ParallelRunError::Store(e)) => return Err(PipelineError::Store(e)),
        }
        if let Some(e) = telemetry_err {
            return Err(PipelineError::Store(StoreError::Io(e)));
        }
        finish_checkpoints(manager, &mut outcome);
        Ok(outcome)
    }
}

/// Counts every emitted clique into the run telemetry before forwarding
/// to the real sink. Wrapping the sink (instead of summing per-level
/// reports) makes the cumulative total exact: seeds emitted during
/// level initialization and the degraded out-of-core tail never produce
/// a per-level record, but they do pass through here.
struct TelemetrySink<'a, S: CliqueSink> {
    inner: &'a mut S,
    telemetry: &'a RunTelemetry,
}

impl<S: CliqueSink> CliqueSink for TelemetrySink<'_, S> {
    fn maximal(&mut self, clique: &[Vertex]) {
        self.telemetry.add_cliques(1);
        self.inner.maximal(clique);
    }

    fn flush_barrier(&mut self) -> std::io::Result<()> {
        self.inner.flush_barrier()
    }
}

/// A [`LevelRecord`] with the fields every execution mode shares;
/// parallel runs layer per-worker data on top.
fn level_record(report: &LevelReport, projected_bytes: u64) -> LevelRecord {
    LevelRecord {
        k: report.k as u64,
        sublists: report.sublists as u64,
        candidates: report.candidates as u64,
        maximal_level: report.maximal_found as u64,
        level_ns: report.ns,
        and_ops: report.and_ops,
        maximality_tests: report.maximality_tests,
        projected_bytes,
        formula_bytes: report.memory.formula_bytes as u64,
        heap_bytes: report.memory.heap_bytes as u64,
        ..Default::default()
    }
}

/// Emit one degraded-mode record per out-of-core level so the JSONL
/// stream covers the whole run even after the watchdog fires.
fn record_degraded_levels(
    telemetry: &RunTelemetry,
    degraded: &EnumStats,
) -> Result<(), PipelineError> {
    for level in &degraded.levels {
        telemetry.note_spill(level.bytes_read);
        let record = LevelRecord {
            k: level.k as u64,
            sublists: level.sublists as u64,
            maximal_level: level.maximal_found as u64,
            level_ns: level.ns,
            degraded: true,
            ..Default::default()
        };
        telemetry
            .on_level(record)
            .map_err(|e| PipelineError::Store(StoreError::Io(e)))?;
    }
    Ok(())
}

/// The per-level barrier: fault injection, memory watchdog, durable
/// sink flush, checkpoint write (plus its telemetry and progress
/// bookkeeping).
#[allow(clippy::too_many_arguments)]
fn at_barrier<S: NeighborSet, K: CliqueSink>(
    manager: &mut Option<CheckpointManager>,
    budget: Option<usize>,
    shutdown: Option<&ShutdownToken>,
    level: &Level<S>,
    memory: &LevelMemory,
    sink: &mut K,
    g_n: usize,
    telemetry: &RunTelemetry,
) -> Result<BarrierControl, PipelineError> {
    // Shutdown wins over everything else at the barrier: the level that
    // just finished is complete and consistent, so persist it (forced,
    // regardless of the checkpoint policy), record why we stopped, and
    // halt. Nothing below this level is lost.
    if let Some(sig) = shutdown.and_then(ShutdownToken::signal) {
        if let Some(mgr) = manager.as_mut() {
            sink.flush_barrier()
                .map_err(|e| PipelineError::Store(StoreError::Io(e)))?;
            let write = mgr.force(level)?;
            telemetry.note_checkpoint(write.ns, write.bytes);
            RunProgress {
                cliques_emitted: telemetry.cliques_emitted(),
                levels_done: telemetry.levels_completed(),
                wall_ms: telemetry.wall_ns() / 1_000_000,
            }
            .save(mgr.dir())?;
            // Best-effort: a failed stop-cause note must not block the
            // shutdown itself.
            let _ = record_stop_cause(mgr.dir(), StopCause::Signal(sig));
        }
        return Ok(BarrierControl::Halt);
    }
    if let Some(budget) = budget {
        crate::failpoint::inject("memory.budget").map_err(StoreError::Io)?;
        if memory.projected_peak_bytes(level.k, g_n) > budget {
            return Ok(BarrierControl::Degrade);
        }
    }
    if let Some(mgr) = manager.as_mut() {
        // Flush the sink first: once the checkpoint exists, a resumed
        // run will never re-emit anything at or below this level, so
        // those cliques must already be out of volatile buffers.
        sink.flush_barrier()
            .map_err(|e| PipelineError::Store(StoreError::Io(e)))?;
        if let Some(write) = mgr.observe_level(level)? {
            telemetry.note_checkpoint(write.ns, write.bytes);
            // Everything of size ≤ level.k is flushed and the level is
            // durable, so these totals are exactly what a resumed run
            // should continue from.
            RunProgress {
                cliques_emitted: telemetry.cliques_emitted(),
                levels_done: telemetry.levels_completed(),
                wall_ms: telemetry.wall_ns() / 1_000_000,
            }
            .save(mgr.dir())?;
        }
    }
    // The crash-simulation site sits after the checkpoint write: a kill
    // here models dying at the barrier with the freshest possible
    // checkpoint on disk — resume must still produce identical output.
    crate::failpoint::inject("pipeline.barrier").map_err(StoreError::Io)?;
    Ok(BarrierControl::Continue)
}

/// Successful completion: record which levels were checkpointed, then
/// remove the now-useless checkpoint files.
fn finish_checkpoints(manager: &mut Option<CheckpointManager>, outcome: &mut ResilientOutcome) {
    if let Some(mgr) = manager.take() {
        outcome.checkpoints = mgr.written().to_vec();
        mgr.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bk::base_bk_sorted;
    use crate::sink::CollectSink;
    use gsb_graph::generators::{planted, Module};

    #[test]
    fn sequential_pipeline_end_to_end() {
        let g = planted(40, 0.08, &[Module::clique(9)], 21);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new().min_size(4).run(&g, &mut sink);
        assert_eq!(report.maximum_clique, Some(9));
        assert!(report.upper_bound >= 9);
        let mut got = sink.cliques;
        got.sort();
        let expect: Vec<_> = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| c.len() >= 4)
            .collect();
        assert_eq!(got, expect);
        assert!(report.enum_stats.is_some());
        assert!(report.resumed_from.is_none());
        assert!(report.degraded_at.is_none());
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let g = planted(36, 0.1, &[Module::clique(8), Module::clique(6)], 2);
        let mut s1 = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut s1);
        let mut s4 = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .threads(4)
            .run(&g, &mut s4);
        let mut a = s1.cliques;
        let mut b = s4.cliques;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(report.parallel_stats.is_some());
    }

    #[test]
    fn size_window() {
        let g = planted(30, 0.1, &[Module::clique(8)], 13);
        let mut sink = CollectSink::default();
        CliquePipeline::new()
            .min_size(4)
            .max_size(5)
            .run(&g, &mut sink);
        assert!(sink.cliques.iter().all(|c| (4..=5).contains(&c.len())));
        let expect = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| (4..=5).contains(&c.len()))
            .count();
        assert_eq!(sink.cliques.len(), expect);
    }

    #[test]
    fn skip_exact_bound_still_correct() {
        let g = planted(30, 0.1, &[Module::clique(7)], 5);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .skip_exact_bound()
            .run(&g, &mut sink);
        assert_eq!(report.maximum_clique, None);
        let mut got = sink.cliques;
        got.sort();
        let expect: Vec<_> = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| c.len() >= 3)
            .collect();
        assert_eq!(got, expect);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gsb-pipeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpointed_run_matches_plain_and_cleans_up() {
        let g = planted(36, 0.1, &[Module::clique(9), Module::clique(6)], 17);
        let mut plain = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut plain);

        let dir = temp_dir("ckpt-match");
        for threads in [1usize, 4] {
            let mut sink = CollectSink::default();
            let report = CliquePipeline::new()
                .min_size(3)
                .threads(threads)
                .checkpoint(CheckpointConfig::every_level(&dir))
                .try_run(&g, &mut sink)
                .expect("checkpointed run");
            let mut a = plain.cliques.clone();
            let mut b = sink.cliques;
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads={threads}");
            assert!(!report.checkpoints.is_empty(), "no checkpoints written");
            // success cleans up: nothing left to resume
            let err = CliquePipeline::new()
                .min_size(3)
                .checkpoint(CheckpointConfig::every_level(&dir))
                .resume(&g, &mut CollectSink::default())
                .unwrap_err();
            assert!(matches!(err, PipelineError::NoCheckpoint));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_manufactured_checkpoint_completes_the_set() {
        // Simulate a crash: run the first levels by hand, write a real
        // checkpoint, then resume through the pipeline and check the
        // union of pre-crash and post-resume cliques equals a full run.
        let g = planted(34, 0.1, &[Module::clique(8), Module::clique(6)], 29);
        let mut full = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut full);

        let seq = CliqueEnumerator::new(EnumConfig::default());
        let mut pre_crash = CollectSink::default();
        let mut enum_stats = EnumStats::default();
        let mut level = seq.init_level(&g, &mut pre_crash, &mut enum_stats);
        while level.k < 4 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut pre_crash);
            level = next;
        }
        let dir = temp_dir("resume");
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.force(&level).unwrap();
        // the crash: `mgr` is dropped without finish(), files stay

        let mut post = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .checkpoint(CheckpointConfig::every_level(&dir))
            .resume(&g, &mut post)
            .expect("resume");
        assert_eq!(report.resumed_from, Some(level.k));
        // resumed run emits only sizes > checkpoint level
        assert!(post.cliques.iter().all(|c| c.len() > level.k));
        // pre-crash cliques ≤ k + resumed > k = the full set
        let mut combined: Vec<_> = pre_crash
            .cliques
            .into_iter()
            .filter(|c| c.len() <= level.k)
            .chain(post.cliques)
            .collect();
        combined.sort();
        let mut expect = full.cliques;
        expect.sort();
        assert_eq!(combined, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_budget_degrades_and_stays_correct() {
        let g = planted(36, 0.1, &[Module::clique(9)], 3);
        let mut plain = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut plain);
        // A tiny budget forces degradation at the first barrier.
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .memory_budget(64)
            .try_run(&g, &mut sink)
            .expect("degraded run");
        assert!(report.degraded_at.is_some(), "watchdog never fired");
        assert!(report.degraded_stats.is_some());
        let mut a = plain.cliques;
        let mut b = sink.cliques;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn telemetry_covers_the_run_including_the_degraded_tail() {
        let g = planted(36, 0.1, &[Module::clique(9)], 3);
        let jsonl = temp_dir("telemetry").with_extension("jsonl");
        let telemetry = Arc::new(
            RunTelemetry::new(TelemetryConfig {
                metrics_out: Some(jsonl.clone()),
                progress: false,
            })
            .unwrap(),
        );
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .memory_budget(64)
            .telemetry(telemetry)
            .try_run(&g, &mut sink)
            .expect("degraded telemetry run");
        assert!(report.degraded_at.is_some());

        let text = std::fs::read_to_string(&jsonl).unwrap();
        let parsed = gsb_telemetry::parse_report(&text).expect("valid run log");
        assert!(
            parsed.levels.iter().any(|l| l.degraded),
            "no degraded record"
        );
        let summary = parsed.summary.expect("summary line");
        assert_eq!(summary.degraded_at, report.degraded_at.map(|k| k as u64));
        // sink-wrapped counting means the exported total is exact even
        // though most cliques were emitted by the out-of-core tail
        assert_eq!(summary.maximal_total, sink.cliques.len() as u64);
        let _ = std::fs::remove_file(&jsonl);
    }

    #[test]
    fn generous_budget_never_degrades() {
        let g = planted(30, 0.1, &[Module::clique(7)], 9);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .memory_budget(usize::MAX)
            .try_run(&g, &mut sink)
            .expect("run");
        assert!(report.degraded_at.is_none());
        assert!(report.degraded_stats.is_none());
    }

    #[test]
    fn all_backends_match_dense_sequential_and_parallel() {
        let g = planted(34, 0.1, &[Module::clique(8), Module::clique(6)], 7);
        let mut dense = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut dense);
        let mut expect = dense.cliques;
        expect.sort();
        for backend in [BackendChoice::Wah, BackendChoice::Hybrid] {
            for threads in [1usize, 3] {
                let mut sink = CollectSink::default();
                CliquePipeline::new()
                    .min_size(3)
                    .threads(threads)
                    .backend(backend)
                    .run(&g, &mut sink);
                let mut got = sink.cliques;
                got.sort();
                assert_eq!(got, expect, "{backend} threads={threads}");
            }
        }
    }

    #[test]
    fn wah_backend_degrades_and_stays_correct() {
        let g = planted(36, 0.1, &[Module::clique(9)], 3);
        let mut plain = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut plain);
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .backend(BackendChoice::Wah)
            .memory_budget(64)
            .try_run(&g, &mut sink)
            .expect("degraded wah run");
        assert!(report.degraded_at.is_some(), "watchdog never fired");
        let degraded = report.degraded_stats.expect("degraded tail stats");
        assert!(degraded.total_bytes_read() > 0, "nothing spilled");
        let mut a = plain.cliques;
        let mut b = sink.cliques;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn checkpointed_wah_run_resumes_with_same_backend() {
        let g = planted(34, 0.1, &[Module::clique(8), Module::clique(6)], 29);
        let mut full = CollectSink::default();
        CliquePipeline::new().min_size(3).run(&g, &mut full);

        // Run the first levels by hand under WAH, checkpoint, resume.
        let seq = CliqueEnumerator::<WahBitSet, InMemoryLevel<WahBitSet>>::with_backend(
            EnumConfig::default(),
            (),
        );
        let mut pre_crash = CollectSink::default();
        let mut enum_stats = EnumStats::default();
        let mut level = seq.init_level(&g, &mut pre_crash, &mut enum_stats);
        while level.k < 4 && !level.sublists.is_empty() {
            let (next, _) = seq.step(&g, &level, &mut pre_crash);
            level = next;
        }
        let dir = temp_dir("wah-resume");
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.force(&level).unwrap();

        let mut post = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .backend(BackendChoice::Wah)
            .checkpoint(CheckpointConfig::every_level(&dir))
            .resume(&g, &mut post)
            .expect("wah resume");
        assert_eq!(report.resumed_from, Some(level.k));
        let mut combined: Vec<_> = pre_crash
            .cliques
            .into_iter()
            .filter(|c| c.len() <= level.k)
            .chain(post.cliques)
            .collect();
        combined.sort();
        let mut expect = full.cliques;
        expect.sort();
        assert_eq!(combined, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resuming_wah_checkpoint_as_dense_is_a_backend_mismatch() {
        let g = planted(30, 0.1, &[Module::clique(7)], 11);
        let seq = CliqueEnumerator::<WahBitSet, InMemoryLevel<WahBitSet>>::with_backend(
            EnumConfig::default(),
            (),
        );
        let mut sink = CollectSink::default();
        let mut enum_stats = EnumStats::default();
        let level = seq.init_level(&g, &mut sink, &mut enum_stats);
        let dir = temp_dir("mismatch-resume");
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.force(&level).unwrap();

        let err = CliquePipeline::new()
            .checkpoint(CheckpointConfig::every_level(&dir))
            .resume(&g, &mut CollectSink::default())
            .unwrap_err();
        assert!(
            matches!(
                err,
                PipelineError::Store(StoreError::BackendMismatch { .. })
            ),
            "got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
