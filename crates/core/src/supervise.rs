//! Run supervision: signal-safe shutdown and deterministic retry.
//!
//! The paper's runs are measured in hours (Table 1); on shared machines
//! the realistic failure modes are operator interrupts (SIGINT/SIGTERM),
//! transient I/O hiccups, and full disks — not only hard crashes. This
//! module is the supervision substrate the pipeline builds on:
//!
//! * [`ShutdownToken`] — a cooperative stop flag the CLI's signal
//!   handler can set from async-signal context (it is a single atomic
//!   store) and the level-barrier code polls. The pipeline finishes the
//!   current barrier, forces a final checkpoint, and surfaces
//!   [`crate::PipelineError::Interrupted`] so the process can exit with
//!   the conventional `128 + signal` code while the checkpoint
//!   directory stays `resume`-ready.
//! * [`RetryPolicy`] — jittered exponential backoff around fallible I/O
//!   sites, deterministic from a seed (no wall clock, no global RNG), so
//!   retried runs stay reproducible. Transient errors
//!   ([`is_transient`]) are retried; permanent ones surface as typed
//!   errors on the first occurrence.
//! * [`SplitMix64`] — the tiny zero-dependency PRNG behind both the
//!   backoff jitter and the chaos-schedule generator in
//!   [`crate::failpoint`].

use crate::store::StoreError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64: a tiny, fast, well-distributed PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators"). Used for backoff
/// jitter and chaos schedules; deterministic from its seed so every
/// supervised behavior is reproducible.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound = 0` returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// Process-wide signal flag: 0 = running, otherwise the signal number
/// that requested shutdown. A `static` (not a field) because a Unix
/// signal handler can only reach process globals, and its only safe
/// moves are async-signal-safe ones like this atomic store.
static GLOBAL_SHUTDOWN: AtomicUsize = AtomicUsize::new(0);

/// The atomic behind [`ShutdownToken::global`], exposed so a signal
/// handler (which lives in the CLI binary, outside this crate's
/// `forbid(unsafe_code)`) can store the signal number directly:
/// `global_signal_flag().store(sig as usize, Ordering::Relaxed)` is
/// async-signal-safe.
pub fn global_signal_flag() -> &'static AtomicUsize {
    &GLOBAL_SHUTDOWN
}

#[derive(Clone, Debug)]
enum Flag {
    /// A private flag for tests and embedders driving shutdown manually.
    Local(Arc<AtomicUsize>),
    /// The process-wide flag a signal handler stores into.
    Global,
}

/// Cooperative shutdown flag checked at every level barrier.
///
/// Cloning shares the underlying flag. [`request`](Self::request) stores
/// the requesting signal number; the enumeration drivers poll
/// [`signal`](Self::signal) at each barrier, finish or abandon the
/// current level, write a final checkpoint, and stop.
#[derive(Clone, Debug)]
pub struct ShutdownToken {
    flag: Flag,
}

impl Default for ShutdownToken {
    fn default() -> Self {
        Self::new()
    }
}

impl ShutdownToken {
    /// A private token (starts unsignalled), independent of the
    /// process-global flag — for tests and library embedders.
    pub fn new() -> Self {
        ShutdownToken {
            flag: Flag::Local(Arc::new(AtomicUsize::new(0))),
        }
    }

    /// The token backed by the process-global flag that Unix signal
    /// handlers store into (see [`global_signal_flag`]).
    pub fn global() -> Self {
        ShutdownToken { flag: Flag::Global }
    }

    /// Request shutdown as if signal `sig` had arrived (clamped to at
    /// least 1, since 0 means "running").
    pub fn request(&self, sig: i32) {
        let value = sig.max(1) as usize;
        match &self.flag {
            Flag::Local(a) => a.store(value, Ordering::Relaxed),
            Flag::Global => GLOBAL_SHUTDOWN.store(value, Ordering::Relaxed),
        }
    }

    /// The signal number that requested shutdown, if any.
    pub fn signal(&self) -> Option<i32> {
        let raw = match &self.flag {
            Flag::Local(a) => a.load(Ordering::Relaxed),
            Flag::Global => GLOBAL_SHUTDOWN.load(Ordering::Relaxed),
        };
        (raw != 0).then_some(raw as i32)
    }

    /// True once shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.signal().is_some()
    }
}

/// Cumulative count of I/O operations that were retried (successfully
/// or not) by any [`RetryPolicy`] in this process. Telemetry snapshots
/// this at run start and exports the delta.
static IO_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Total I/O retries performed by this process so far.
pub fn io_retries() -> u64 {
    IO_RETRIES.load(Ordering::Relaxed)
}

/// Is this I/O error worth retrying?
///
/// Interrupted syscalls, would-block, and timeouts are transient by
/// nature. Injected failpoint errors are classified transient too, so
/// the chaos/resilience suites can drive the retry path: a site armed
/// `error_once` recovers on retry, while `error_always` exhausts the
/// budget and still surfaces the typed error.
pub fn is_transient(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    matches!(
        e.kind(),
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    ) || e.to_string().contains("failpoint")
}

/// Is this I/O error a full disk (ENOSPC)? Deliberately *not*
/// transient: retrying cannot help, but pruning old checkpoints can —
/// the checkpoint manager's disk budget does exactly that.
pub fn is_disk_full(e: &std::io::Error) -> bool {
    e.raw_os_error() == Some(28) // ENOSPC; ErrorKind::StorageFull is unstable
}

/// Jittered exponential backoff for fallible I/O, deterministic from a
/// seed.
///
/// `delay(attempt) = jitter(min(base << attempt, max))` where the
/// jitter draws uniformly from the upper half of the window via
/// [`SplitMix64`] — decorrelated enough to avoid retry stampedes, yet
/// fully reproducible. Defaults keep the worst case well under 100 ms
/// so test suites that exhaust the budget stay fast.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Base backoff delay, milliseconds.
    pub base_delay_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_delay_ms: u64,
    /// Jitter seed: same seed, same delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 1,
            max_delay_ms: 20,
            seed: 0x5343_3035, // "SC05"
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_shl(attempt.min(16))
            .min(self.max_delay_ms.max(1));
        // decorrelated jitter in [exp/2, exp]
        let mut rng = SplitMix64::new(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37));
        let half = (exp / 2).max(1);
        Duration::from_millis(half + rng.below(exp - half + 1))
    }

    /// Run `op`, retrying transient failures ([`is_transient`]) up to
    /// [`max_retries`](Self::max_retries) times with backoff. Permanent
    /// errors and exhausted budgets surface the last error unchanged.
    pub fn run_io<T>(&self, mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < self.max_retries => {
                    IO_RETRIES.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Like [`run_io`](Self::run_io) for store operations: retries only
    /// [`StoreError::Io`] wrapping a transient error; corruption and
    /// mismatch errors are permanent by definition.
    pub fn run_store<T>(
        &self,
        mut op: impl FnMut() -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(StoreError::Io(e)) if is_transient(&e) && attempt < self.max_retries => {
                    IO_RETRIES.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// `u64::checked_shl` that saturates instead of wrapping, for the
/// exponential window.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varied() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "degenerate stream");
    }

    #[test]
    fn token_roundtrip() {
        let t = ShutdownToken::new();
        assert!(!t.is_requested());
        assert_eq!(t.signal(), None);
        let clone = t.clone();
        clone.request(15);
        assert_eq!(t.signal(), Some(15));
        assert!(t.is_requested());
    }

    #[test]
    fn zero_signal_clamps_to_one() {
        let t = ShutdownToken::new();
        t.request(0);
        assert_eq!(t.signal(), Some(1));
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let policy = RetryPolicy::default();
        let mut failures_left = 2;
        let out = policy.run_io(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(out.unwrap(), 7);
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out: std::io::Result<()> = policy.run_io(|| {
            calls += 1;
            Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "nope",
            ))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "permanent error must not be retried");
    }

    #[test]
    fn exhausted_budget_surfaces_the_transient_error() {
        let policy = RetryPolicy {
            max_retries: 2,
            ..Default::default()
        };
        let mut calls = 0;
        let out: std::io::Result<()> = policy.run_io(|| {
            calls += 1;
            Err(std::io::Error::from(std::io::ErrorKind::TimedOut))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3, "initial try + 2 retries");
    }

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            let d1 = policy.delay(attempt);
            let d2 = policy.delay(attempt);
            assert_eq!(d1, d2);
            assert!(d1 <= Duration::from_millis(policy.max_delay_ms));
            assert!(d1 >= Duration::from_millis(1).min(d1));
        }
    }

    #[test]
    fn corruption_store_errors_are_not_retried() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<(), StoreError> = policy.run_store(|| {
            calls += 1;
            Err(StoreError::BadMagic { found: 7 })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
