//! Exact maximum clique (§2.1's upper bound, solved directly).
//!
//! "In the process of maximal clique enumeration, it is often useful
//! first to identify the size of a graph's maximum clique." The paper
//! reaches maximum clique through FPT vertex cover on the complement
//! (implemented in `gsb-fpt`); this module provides the direct
//! branch-and-bound with a greedy-coloring bound, which is the faster
//! route on the sparse correlation graphs themselves, and the reference
//! the FPT route is validated against.

use crate::{Clique, Vertex};
use gsb_bitset::BitSet;
use gsb_graph::reduce::degeneracy_order;
use gsb_graph::BitGraph;

/// An exact maximum clique of `g` (empty for the empty graph).
///
/// ```
/// use gsb_graph::BitGraph;
/// let g = BitGraph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
/// assert_eq!(gsb_core::maximum_clique(&g), vec![0, 1, 2]);
/// ```
pub fn maximum_clique(g: &BitGraph) -> Clique {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Search in reverse degeneracy order: strong initial candidates and
    // tight colorings early.
    let (mut order, _) = degeneracy_order(g);
    order.reverse();
    let mut best: Vec<usize> = vec![order[0]];
    // greedy warm start: extend the first vertex greedily
    let mut cand = g.neighbors(order[0]).clone();
    while let Some(v) = cand.first_one() {
        best.push(v);
        cand.and_assign(g.neighbors(v));
    }
    let mut current = Vec::new();
    let full = BitSet::full(n);
    expand(g, &full, &mut current, &mut best);
    best.sort_unstable();
    best.iter().map(|&v| v as Vertex).collect()
}

/// Size of a maximum clique.
pub fn maximum_clique_size(g: &BitGraph) -> usize {
    maximum_clique(g).len()
}

/// Tomita-style expansion: color the candidates greedily; a candidate
/// whose color index + |current| cannot beat |best| prunes the branch.
fn expand(g: &BitGraph, candidates: &BitSet, current: &mut Vec<usize>, best: &mut Vec<usize>) {
    // Color candidates in ascending vertex order; classes are stored as
    // (vertex, color_number) with color numbers from 1.
    let mut colored: Vec<(usize, usize)> = Vec::new();
    let mut classes: Vec<BitSet> = Vec::new();
    for v in candidates.iter_ones() {
        let mut placed = false;
        for (ci, class) in classes.iter_mut().enumerate() {
            if !class.intersects(g.neighbors(v)) {
                class.insert(v);
                colored.push((v, ci + 1));
                placed = true;
                break;
            }
        }
        if !placed {
            let mut class = BitSet::new(g.n());
            class.insert(v);
            classes.push(class);
            colored.push((v, classes.len()));
        }
    }
    // Process candidates in descending color: the color number bounds
    // the clique size attainable among the remaining candidates.
    colored.sort_by_key(|&(v, c)| (c, v));
    let mut remaining = candidates.clone();
    for &(v, color) in colored.iter().rev() {
        if current.len() + color <= best.len() {
            return; // every remaining candidate has color <= this one
        }
        current.push(v);
        let next = remaining.and(g.neighbors(v));
        if next.none() {
            if current.len() > best.len() {
                best.clear();
                best.extend_from_slice(current);
            }
        } else {
            expand(g, &next, current, best);
        }
        current.pop();
        remaining.remove(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::generators::{gnp, planted, Module};
    use gsb_graph::reduce::clique_upper_bound;

    /// Brute-force oracle for small n.
    fn oracle_size(g: &BitGraph) -> usize {
        let n = g.n();
        let mut best = 0usize;
        for mask in 0u32..(1 << n) {
            let vs: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if vs.len() > best && g.is_clique(&vs) {
                best = vs.len();
            }
        }
        best
    }

    #[test]
    fn known_graphs() {
        assert_eq!(maximum_clique_size(&BitGraph::complete(7)), 7);
        assert_eq!(maximum_clique(&BitGraph::new(0)), Vec::<Vertex>::new());
        assert_eq!(maximum_clique_size(&BitGraph::new(5)), 1);
        let path = BitGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(maximum_clique_size(&path), 2);
        let c5 = BitGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(maximum_clique_size(&c5), 2);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..12 {
            let g = gnp(14, 0.5, seed);
            assert_eq!(maximum_clique_size(&g), oracle_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn returned_set_is_a_clique() {
        for seed in 0..6 {
            let g = gnp(30, 0.4, 100 + seed);
            let c = maximum_clique(&g);
            let vs: Vec<usize> = c.iter().map(|&v| v as usize).collect();
            assert!(g.is_clique(&vs));
            assert!(g.is_maximal_clique(&vs), "maximum must be maximal");
        }
    }

    #[test]
    fn finds_planted_clique() {
        let g = planted(80, 0.05, &[Module::clique(12)], 9);
        assert_eq!(maximum_clique_size(&g), 12);
    }

    #[test]
    fn never_exceeds_upper_bound() {
        for seed in 0..6 {
            let g = gnp(40, 0.3, 200 + seed);
            assert!(maximum_clique_size(&g) <= clique_upper_bound(&g));
        }
    }
}
