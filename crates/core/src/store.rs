//! Out-of-core level storage.
//!
//! The paper's motivation (§1): "To deal with such large memory
//! requirements we have previously developed an out-of-core algorithm
//! ... However, the algorithm could not finish after one week of
//! execution ... Intensive disk I/O access has been the major
//! bottleneck" — which is why the Altix's in-core terabytes win. This
//! module supplies both halves of that comparison: a compact binary
//! codec for k-clique sub-lists, and a [`LevelStore`] that keeps a
//! level in memory until a byte budget is exceeded and spills the rest
//! to disk, streaming it back for the next expansion pass. The
//! `ablation_spill` bench quantifies the I/O penalty the paper reports.
//!
//! ## Crash safety
//!
//! Every on-disk record is framed `[len: u32][crc32: u32][payload]`, so
//! a torn write, truncated file, or flipped bit surfaces as a typed
//! [`StoreError`] instead of a panic or silently wrong data. Level
//! checkpoints are written atomically (temp file + fsync + rename) in a
//! versioned format that also records the graph's bitmap width, letting
//! resume reject a checkpoint taken against a different graph.

use crate::sublist::SubList;
use crate::Vertex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gsb_bitset::{BitSet, NeighborSet};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from the binary store: spill files and level checkpoints.
///
/// Corruption is reported as data (which file region, which checksum),
/// never as a panic: a multi-day enumeration must be able to fall back
/// to an older checkpoint when the newest one is torn.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with a known checkpoint magic.
    BadMagic {
        /// The first 8 bytes found, little-endian.
        found: u64,
    },
    /// Data ends mid-header or mid-record (torn write / truncation).
    Torn {
        /// Which structure was being read.
        context: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A record or header failed its CRC32 check (bit rot, partial
    /// overwrite).
    Checksum {
        /// Which structure was being read.
        context: &'static str,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the data.
        computed: u32,
    },
    /// The file holds a different number of records than its header
    /// claims.
    CountMismatch {
        /// Records promised by the header.
        expected: usize,
        /// Records actually decodable.
        found: usize,
    },
    /// The checkpoint was taken over a different graph (common-neighbor
    /// bitmap width disagrees with the graph's vertex count).
    GraphMismatch {
        /// Bitmap width recorded in the checkpoint.
        checkpoint_bits: usize,
        /// Vertex count of the graph being resumed.
        graph_bits: usize,
    },
    /// The file was written with a different bitmap representation than
    /// the one reading it (see [`gsb_bitset::NeighborSet::KIND`]).
    BackendMismatch {
        /// Representation kind recorded in the file.
        found: u8,
        /// Representation kind expected by the reader.
        expected: u8,
    },
    /// Payload bytes do not decode as the expected bitmap
    /// representation.
    Codec {
        /// Which structure was being read.
        context: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a gsb level checkpoint (magic {found:#018x})")
            }
            StoreError::Torn {
                context,
                needed,
                have,
            } => write!(
                f,
                "torn {context}: needs {needed} bytes, only {have} available"
            ),
            StoreError::Checksum {
                context,
                stored,
                computed,
            } => write!(
                f,
                "corrupt {context}: stored crc32 {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::CountMismatch { expected, found } => write!(
                f,
                "record count mismatch: header claims {expected}, file holds {found}"
            ),
            StoreError::GraphMismatch {
                checkpoint_bits,
                graph_bits,
            } => write!(
                f,
                "checkpoint is for a {checkpoint_bits}-vertex graph, not {graph_bits}"
            ),
            StoreError::BackendMismatch { found, expected } => write!(
                f,
                "file holds bitmap representation kind {found}, reader expects {expected}"
            ),
            StoreError::Codec { context } => {
                write!(f, "corrupt {context}: bytes do not decode")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial) of `data` — the per-record integrity
/// check of the spill/checkpoint formats.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encode one sub-list into a length-prefixed binary record.
///
/// Layout: `prefix_len: u32, tails_len: u32, n_bits: u32,
/// prefix: [u32], tails: [u32], cn payload`. For a fixed-width
/// representation (dense: [`NeighborSet::serialized_len`] is `Some`)
/// the payload is written raw — byte-identical to the historical dense
/// format. Variable-width representations (WAH, hybrid) prepend a
/// `payload_len: u32`.
pub fn encode_sublist<S: NeighborSet>(sl: &SubList<S>, buf: &mut BytesMut) {
    let n_bits = sl.cn.nbits();
    buf.put_u32_le(sl.prefix.len() as u32);
    buf.put_u32_le(sl.tails.len() as u32);
    buf.put_u32_le(n_bits as u32);
    for &v in &sl.prefix {
        buf.put_u32_le(v);
    }
    for &t in &sl.tails {
        buf.put_u32_le(t);
    }
    let mut payload = Vec::new();
    sl.cn.serialize_into(&mut payload);
    match S::serialized_len(n_bits) {
        Some(len) => debug_assert_eq!(len, payload.len(), "fixed-width codec drift"),
        None => buf.put_u32_le(payload.len() as u32),
    }
    buf.extend_from_slice(&payload);
}

/// Decode one sub-list from the reader side of [`encode_sublist`].
/// Returns `Ok(None)` at a clean end of input and a typed
/// [`StoreError::Torn`] on a short read — corruption is an error to
/// recover from, not a panic.
pub fn decode_sublist<S: NeighborSet>(buf: &mut Bytes) -> Result<Option<SubList<S>>, StoreError> {
    if buf.remaining() == 0 {
        return Ok(None);
    }
    if buf.remaining() < 12 {
        return Err(StoreError::Torn {
            context: "sub-list header",
            needed: 12,
            have: buf.remaining(),
        });
    }
    let prefix_len = buf.get_u32_le() as usize;
    let tails_len = buf.get_u32_le() as usize;
    let n_bits = buf.get_u32_le() as usize;
    let vec_need = 4 * (prefix_len + tails_len);
    if buf.remaining() < vec_need {
        return Err(StoreError::Torn {
            context: "sub-list body",
            needed: vec_need,
            have: buf.remaining(),
        });
    }
    let prefix: Vec<Vertex> = (0..prefix_len).map(|_| buf.get_u32_le()).collect();
    let tails: Vec<Vertex> = (0..tails_len).map(|_| buf.get_u32_le()).collect();
    let payload_len = match S::serialized_len(n_bits) {
        Some(len) => len,
        None => {
            if buf.remaining() < 4 {
                return Err(StoreError::Torn {
                    context: "sub-list bitmap length",
                    needed: 4,
                    have: buf.remaining(),
                });
            }
            buf.get_u32_le() as usize
        }
    };
    if buf.remaining() < payload_len {
        return Err(StoreError::Torn {
            context: "sub-list bitmap",
            needed: payload_len,
            have: buf.remaining(),
        });
    }
    let cn = S::deserialize(n_bits, &buf.chunk()[..payload_len]).ok_or(StoreError::Codec {
        context: "sub-list bitmap",
    })?;
    buf.advance(payload_len);
    Ok(Some(SubList { prefix, cn, tails }))
}

/// Append one sub-list as a CRC-framed record:
/// `[payload_len: u32][crc32(payload): u32][payload]`. `scratch` is a
/// reusable encode buffer.
pub fn encode_record<S: NeighborSet>(sl: &SubList<S>, out: &mut BytesMut, scratch: &mut BytesMut) {
    scratch.clear();
    encode_sublist(sl, scratch);
    out.put_u32_le(scratch.len() as u32);
    out.put_u32_le(crc32(scratch));
    out.extend_from_slice(scratch);
}

/// Read back one CRC-framed record written by [`encode_record`].
/// Returns `Ok(None)` at a clean end of input; any torn frame or
/// checksum failure is a typed error.
pub fn decode_record<S: NeighborSet>(bytes: &mut Bytes) -> Result<Option<SubList<S>>, StoreError> {
    if bytes.remaining() == 0 {
        return Ok(None);
    }
    if bytes.remaining() < 8 {
        return Err(StoreError::Torn {
            context: "record frame",
            needed: 8,
            have: bytes.remaining(),
        });
    }
    let len = bytes.get_u32_le() as usize;
    let stored = bytes.get_u32_le();
    if bytes.remaining() < len {
        return Err(StoreError::Torn {
            context: "record payload",
            needed: len,
            have: bytes.remaining(),
        });
    }
    let computed = crc32(&bytes.chunk()[..len]);
    if computed != stored {
        return Err(StoreError::Checksum {
            context: "record payload",
            stored,
            computed,
        });
    }
    // The payload checksum passed, so decoding consumes exactly `len`
    // bytes; a disagreement means the frame length itself lied.
    let before = bytes.remaining();
    let sl = decode_sublist(bytes)?.ok_or(StoreError::Torn {
        context: "empty record payload",
        needed: 12,
        have: 0,
    })?;
    if before - bytes.remaining() != len {
        return Err(StoreError::CountMismatch {
            expected: len,
            found: before - bytes.remaining(),
        });
    }
    Ok(Some(sl))
}

/// Spill configuration for enumeration runs.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// In-memory budget, in *formula* bytes, before a level spills.
    pub budget_bytes: usize,
    /// Directory for spill files (a unique file per level is created
    /// inside and deleted on drop).
    pub dir: PathBuf,
}

impl SpillConfig {
    /// Budgeted spilling into the system temp directory.
    pub fn in_temp(budget_bytes: usize) -> Self {
        SpillConfig {
            budget_bytes,
            dir: std::env::temp_dir(),
        }
    }
}

/// One level of candidate sub-lists, resident in memory up to a budget
/// and on disk beyond it. Generic over the bitmap representation: the
/// spill records carry whatever [`NeighborSet`] the run enumerates
/// with, so a WAH run spills compressed bytes.
pub struct LevelStore<S: NeighborSet = BitSet> {
    budget_bytes: usize,
    dir: PathBuf,
    graph_n: usize,
    resident: Vec<SubList<S>>,
    resident_bytes: usize,
    spill: Option<Spill>,
    total: usize,
    scratch: BytesMut,
}

struct Spill {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    records: usize,
    bytes_written: u64,
}

impl<S: NeighborSet> LevelStore<S> {
    /// An empty store for a graph with `graph_n` vertices.
    pub fn new(config: &SpillConfig, graph_n: usize) -> Self {
        LevelStore {
            budget_bytes: config.budget_bytes,
            dir: config.dir.clone(),
            graph_n,
            resident: Vec::new(),
            resident_bytes: 0,
            spill: None,
            total: 0,
            scratch: BytesMut::new(),
        }
    }

    /// Number of sub-lists stored (resident + spilled).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sub-lists currently resident in memory.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Sub-lists spilled to disk.
    pub fn spilled_len(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.records)
    }

    /// Bytes written to the spill file so far (framing included).
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.bytes_written)
    }

    /// Append a sub-list, spilling it to disk (as a CRC-framed record)
    /// if the memory budget is exhausted. The budget is charged in the
    /// paper's *formula* bytes, which are representation-independent,
    /// so dense and compressed runs spill at the same points.
    pub fn push(&mut self, sl: SubList<S>) -> Result<(), StoreError> {
        self.total += 1;
        let cost = sl.formula_bytes(self.graph_n);
        if self.resident_bytes + cost <= self.budget_bytes {
            self.resident_bytes += cost;
            self.resident.push(sl);
            return Ok(());
        }
        // Transient failures before any bytes hit the spill file are
        // retried with backoff; once the buffered writer is involved a
        // partial write can't be blindly replayed, so `write_all`
        // errors below stay fatal (the CRC framing catches torn tails
        // on read-back).
        let retry = crate::supervise::RetryPolicy::default();
        retry.run_io(|| crate::failpoint::inject("spill.write"))?;
        let spill = match &mut self.spill {
            Some(s) => s,
            None => {
                static SPILL_SEQ: std::sync::atomic::AtomicU64 =
                    std::sync::atomic::AtomicU64::new(0);
                let seq = SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let path = self
                    .dir
                    .join(format!("gsb-spill-{}-{seq}.bin", std::process::id()));
                let file = retry.run_io(|| File::create(&path))?;
                self.spill = Some(Spill {
                    path,
                    writer: Some(BufWriter::new(file)),
                    records: 0,
                    bytes_written: 0,
                });
                self.spill.as_mut().expect("just created")
            }
        };
        let mut buf = BytesMut::new();
        encode_record(&sl, &mut buf, &mut self.scratch);
        let writer = spill.writer.as_mut().expect("writer open while pushing");
        writer.write_all(&buf)?;
        spill.bytes_written += buf.len() as u64;
        spill.records += 1;
        Ok(())
    }

    /// Drain the store, applying `f` to every sub-list: resident ones
    /// first (moved out), then spilled ones streamed back from disk.
    /// Torn or corrupt spill records surface as typed errors; the spill
    /// file is removed either way.
    pub fn drain(mut self, mut f: impl FnMut(SubList<S>)) -> Result<DrainReport, StoreError> {
        for sl in self.resident.drain(..) {
            f(sl);
        }
        let mut report = DrainReport {
            read_back: 0,
            bytes_read: 0,
        };
        let Some(mut spill) = self.spill.take() else {
            return Ok(report);
        };
        let result = (|| -> Result<(), StoreError> {
            // flush and reopen for reading
            if let Some(w) = spill.writer.take() {
                w.into_inner()
                    .map_err(std::io::IntoInnerError::into_error)?
                    .sync_all()?;
            }
            let mut reader = BufReader::new(File::open(&spill.path)?);
            let mut raw = Vec::with_capacity(spill.bytes_written as usize);
            reader.read_to_end(&mut raw)?;
            report.bytes_read = raw.len() as u64;
            let mut bytes = Bytes::from(raw);
            while let Some(sl) = decode_record(&mut bytes)? {
                report.read_back += 1;
                f(sl);
            }
            if report.read_back != spill.records {
                return Err(StoreError::CountMismatch {
                    expected: spill.records,
                    found: report.read_back,
                });
            }
            Ok(())
        })();
        let _ = std::fs::remove_file(&spill.path);
        result.map(|()| report)
    }
}

impl<S: NeighborSet> Drop for LevelStore<S> {
    fn drop(&mut self) {
        if let Some(spill) = self.spill.take() {
            drop(spill.writer);
            let _ = std::fs::remove_file(&spill.path);
        }
    }
}

/// What came back from disk during a drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Records streamed back from the spill file.
    pub read_back: usize,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

/// Legacy (v1) checkpoint magic: unframed records, no checksums.
/// Still readable for files written by earlier builds.
const CHECKPOINT_MAGIC_V1: u64 = 0x5343_3035_474C_5631; // "SC05GLV1"
/// Dense (v2) checkpoint magic: CRC-checked header carrying the
/// graph's bitmap width, CRC-framed records. Still written for dense
/// runs, byte-identical to earlier builds.
const CHECKPOINT_MAGIC_V2: u64 = 0x5343_3035_474C_5632; // "SC05GLV2"

/// v3 checkpoint magic: like v2 but the header also records which
/// bitmap representation ([`NeighborSet::KIND`]) the records hold.
/// Written for non-dense runs.
const CHECKPOINT_MAGIC_V3: u64 = 0x5343_3035_474C_5633; // "SC05GLV3"

/// v2 header: magic u64 | k u32 | n_bits u32 | count u64, then a u32
/// CRC over those 24 bytes.
const V2_HEADER_BYTES: usize = 24;

/// v3 header: magic u64 | k u32 | n_bits u32 | count u64 | kind u32,
/// then a u32 CRC over those 28 bytes.
const V3_HEADER_BYTES: usize = 28;

/// Write a whole level (the paper's `L_k`) as a checkpoint file:
/// genome-scale runs took the original authors hours to days, and a
/// levelwise algorithm has a natural consistent cut at every barrier.
///
/// The write is atomic: the bytes go to a sibling temp file which is
/// fsynced and renamed over `path`, so a crash mid-checkpoint leaves
/// either the previous checkpoint or none — never a torn one under the
/// final name. The graph's bitmap width (from the first sub-list) is
/// recorded so resume can reject a checkpoint from a different graph.
/// Returns the bytes written (header + framed records), which the
/// telemetry layer reports as the checkpoint's I/O cost.
///
/// Dense levels are written in the historical v2 format (byte-identical
/// to earlier builds); other representations get a v3 header that also
/// records the representation kind, so resume can reject a checkpoint
/// taken under a different backend.
pub fn write_level<S: NeighborSet>(
    path: &Path,
    level: &crate::sublist::Level<S>,
) -> Result<u64, StoreError> {
    let n_bits = level.sublists.first().map_or(0, |sl| sl.cn.nbits());
    let mut buf = BytesMut::new();
    if S::KIND == gsb_bitset::KIND_DENSE {
        buf.put_u64_le(CHECKPOINT_MAGIC_V2);
        buf.put_u32_le(level.k as u32);
        buf.put_u32_le(n_bits as u32);
        buf.put_u64_le(level.sublists.len() as u64);
        buf.put_u32_le(crc32(&buf[..V2_HEADER_BYTES]));
    } else {
        buf.put_u64_le(CHECKPOINT_MAGIC_V3);
        buf.put_u32_le(level.k as u32);
        buf.put_u32_le(n_bits as u32);
        buf.put_u64_le(level.sublists.len() as u64);
        buf.put_u32_le(u32::from(S::KIND));
        buf.put_u32_le(crc32(&buf[..V3_HEADER_BYTES]));
    }
    let mut scratch = BytesMut::new();
    for sl in &level.sublists {
        encode_record(sl, &mut buf, &mut scratch);
    }
    let tmp = sibling_tmp(path);
    let result = (|| -> Result<u64, StoreError> {
        let mut file = BufWriter::new(File::create(&tmp)?);
        file.write_all(&buf)?;
        file.into_inner()
            .map_err(std::io::IntoInnerError::into_error)?
            .sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself is durable;
        // not all platforms/filesystems allow opening a directory.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(buf.len() as u64)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| "checkpoint".into(), |n| n.to_os_string());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Read a level checkpoint written by [`write_level`] (v3, v2, or
/// legacy v1 files from earlier builds), returning the level and the
/// bitmap width it was taken over (0 when unknown: v1 files and empty
/// levels). v1/v2 files hold dense records; reading them as another
/// representation is a typed [`StoreError::BackendMismatch`].
pub fn read_level_meta<S: NeighborSet>(
    path: &Path,
) -> Result<(crate::sublist::Level<S>, usize), StoreError> {
    let raw = std::fs::read(path)?;
    let mut bytes = Bytes::from(raw);
    if bytes.remaining() < 8 {
        return Err(StoreError::Torn {
            context: "checkpoint magic",
            needed: 8,
            have: bytes.remaining(),
        });
    }
    let magic = bytes.get_u64_le();
    if matches!(magic, CHECKPOINT_MAGIC_V1 | CHECKPOINT_MAGIC_V2)
        && S::KIND != gsb_bitset::KIND_DENSE
    {
        return Err(StoreError::BackendMismatch {
            found: gsb_bitset::KIND_DENSE,
            expected: S::KIND,
        });
    }
    match magic {
        CHECKPOINT_MAGIC_V3 => read_level_v3(bytes),
        CHECKPOINT_MAGIC_V2 => read_level_v2(bytes),
        CHECKPOINT_MAGIC_V1 => read_level_v1(bytes).map(|l| (l, 0)),
        found => Err(StoreError::BadMagic { found }),
    }
}

/// Read a level checkpoint written by [`write_level`].
pub fn read_level<S: NeighborSet>(path: &Path) -> Result<crate::sublist::Level<S>, StoreError> {
    read_level_meta(path).map(|(level, _)| level)
}

fn read_level_v3<S: NeighborSet>(
    mut bytes: Bytes,
) -> Result<(crate::sublist::Level<S>, usize), StoreError> {
    // 20 header bytes after the magic, plus the 4-byte header CRC.
    if bytes.remaining() < 24 {
        return Err(StoreError::Torn {
            context: "checkpoint header",
            needed: 24,
            have: bytes.remaining(),
        });
    }
    let k = bytes.get_u32_le() as usize;
    let n_bits = bytes.get_u32_le() as usize;
    let count = bytes.get_u64_le() as usize;
    let kind = bytes.get_u32_le();
    let stored = bytes.get_u32_le();
    let mut header = BytesMut::new();
    header.put_u64_le(CHECKPOINT_MAGIC_V3);
    header.put_u32_le(k as u32);
    header.put_u32_le(n_bits as u32);
    header.put_u64_le(count as u64);
    header.put_u32_le(kind);
    let computed = crc32(&header);
    if computed != stored {
        return Err(StoreError::Checksum {
            context: "checkpoint header",
            stored,
            computed,
        });
    }
    if kind != u32::from(S::KIND) {
        return Err(StoreError::BackendMismatch {
            found: kind.min(255) as u8,
            expected: S::KIND,
        });
    }
    let mut sublists = Vec::with_capacity(count.min(1 << 20));
    while let Some(sl) = decode_record(&mut bytes)? {
        sublists.push(sl);
        if sublists.len() > count {
            break;
        }
    }
    if sublists.len() != count {
        return Err(StoreError::CountMismatch {
            expected: count,
            found: sublists.len(),
        });
    }
    Ok((crate::sublist::Level { k, sublists }, n_bits))
}

fn read_level_v2<S: NeighborSet>(
    mut bytes: Bytes,
) -> Result<(crate::sublist::Level<S>, usize), StoreError> {
    // 16 header bytes after the magic, plus the 4-byte header CRC.
    if bytes.remaining() < 20 {
        return Err(StoreError::Torn {
            context: "checkpoint header",
            needed: 20,
            have: bytes.remaining(),
        });
    }
    let k = bytes.get_u32_le() as usize;
    let n_bits = bytes.get_u32_le() as usize;
    let count = bytes.get_u64_le() as usize;
    let stored = bytes.get_u32_le();
    let mut header = BytesMut::new();
    header.put_u64_le(CHECKPOINT_MAGIC_V2);
    header.put_u32_le(k as u32);
    header.put_u32_le(n_bits as u32);
    header.put_u64_le(count as u64);
    let computed = crc32(&header);
    if computed != stored {
        return Err(StoreError::Checksum {
            context: "checkpoint header",
            stored,
            computed,
        });
    }
    let mut sublists = Vec::with_capacity(count.min(1 << 20));
    while let Some(sl) = decode_record(&mut bytes)? {
        sublists.push(sl);
        if sublists.len() > count {
            break;
        }
    }
    if sublists.len() != count {
        return Err(StoreError::CountMismatch {
            expected: count,
            found: sublists.len(),
        });
    }
    Ok((crate::sublist::Level { k, sublists }, n_bits))
}

fn read_level_v1<S: NeighborSet>(mut bytes: Bytes) -> Result<crate::sublist::Level<S>, StoreError> {
    if bytes.remaining() < 12 {
        return Err(StoreError::Torn {
            context: "checkpoint header",
            needed: 12,
            have: bytes.remaining(),
        });
    }
    let k = bytes.get_u32_le() as usize;
    let count = bytes.get_u64_le() as usize;
    let mut sublists = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        match decode_sublist(&mut bytes)? {
            Some(sl) => sublists.push(sl),
            None => {
                return Err(StoreError::CountMismatch {
                    expected: count,
                    found: sublists.len(),
                })
            }
        }
    }
    Ok(crate::sublist::Level { k, sublists })
}

/// Convenience: does `dir` exist and accept files? Used by callers to
/// validate a [`SpillConfig`] before a long run.
pub fn dir_writable(dir: &Path) -> bool {
    let probe = dir.join(format!(".gsb-probe-{}", std::process::id()));
    match File::create(&probe) {
        Ok(_) => {
            let _ = std::fs::remove_file(&probe);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_bitset::{HybridSet, WahBitSet};
    use gsb_graph::BitGraph;

    fn sample_sublists(n_graph: usize, count: usize) -> Vec<SubList> {
        let g = BitGraph::complete(n_graph);
        (0..count)
            .map(|i| {
                let a = i % (n_graph - 3);
                let members = vec![a];
                SubList {
                    prefix: vec![a as Vertex],
                    cn: g.common_neighbors(&members),
                    tails: ((a + 1)..(a + 3)).map(|v| v as Vertex).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        for sl in sample_sublists(70, 5) {
            let mut buf = BytesMut::new();
            encode_sublist(&sl, &mut buf);
            let mut bytes = buf.freeze();
            let back: SubList = decode_sublist(&mut bytes).unwrap().expect("one record");
            assert_eq!(back.prefix, sl.prefix);
            assert_eq!(back.tails, sl.tails);
            assert_eq!(back.cn, sl.cn);
            assert!(decode_sublist::<BitSet>(&mut bytes).unwrap().is_none());
        }
    }

    #[test]
    fn multiple_records_stream() {
        let sls = sample_sublists(40, 7);
        let mut buf = BytesMut::new();
        for sl in &sls {
            encode_sublist(sl, &mut buf);
        }
        let mut bytes = buf.freeze();
        let mut back: Vec<SubList> = Vec::new();
        while let Some(sl) = decode_sublist(&mut bytes).unwrap() {
            back.push(sl);
        }
        assert_eq!(back.len(), sls.len());
        for (a, b) in back.iter().zip(&sls) {
            assert_eq!(a.tails, b.tails);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE 802.3 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn framed_record_roundtrip_and_detection() {
        let sl = &sample_sublists(40, 1)[0];
        let mut buf = BytesMut::new();
        let mut scratch = BytesMut::new();
        encode_record(sl, &mut buf, &mut scratch);
        let clean: Vec<u8> = buf.to_vec();

        // clean round-trip
        let mut bytes = Bytes::from(clean.clone());
        let back: SubList = decode_record(&mut bytes).unwrap().expect("one record");
        assert_eq!(back.tails, sl.tails);
        assert!(decode_record::<BitSet>(&mut bytes).unwrap().is_none());

        // every truncation is torn, never a panic or silent success
        for cut in 0..clean.len() {
            let mut bytes = Bytes::from(clean[..cut].to_vec());
            if cut == 0 {
                assert!(decode_record::<BitSet>(&mut bytes).unwrap().is_none());
            } else {
                assert!(decode_record::<BitSet>(&mut bytes).is_err(), "cut at {cut}");
            }
        }

        // every single-bit flip is detected (CRC32 catches all 1-bit
        // errors; flips in the frame fields fail length or crc checks)
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                let mut bytes = Bytes::from(bad);
                assert!(
                    decode_record::<BitSet>(&mut bytes).is_err(),
                    "flip byte {byte} bit {bit} undetected"
                );
            }
        }
    }

    #[test]
    fn wah_and_hybrid_records_roundtrip() {
        for sl in sample_sublists(70, 5) {
            let wah: SubList<WahBitSet> = sl.convert();
            let mut buf = BytesMut::new();
            let mut scratch = BytesMut::new();
            encode_record(&wah, &mut buf, &mut scratch);
            let mut bytes = buf.freeze();
            let back: SubList<WahBitSet> = decode_record(&mut bytes).unwrap().expect("one record");
            assert_eq!(back.prefix, wah.prefix);
            assert_eq!(back.tails, wah.tails);
            assert_eq!(back.cn.to_bitset(), sl.cn);

            let hybrid: SubList<HybridSet> = sl.convert();
            let mut buf = BytesMut::new();
            encode_record(&hybrid, &mut buf, &mut scratch);
            let mut bytes = buf.freeze();
            let back: SubList<HybridSet> = decode_record(&mut bytes).unwrap().expect("one record");
            assert_eq!(back.cn.to_bitset(), sl.cn);
        }
    }

    #[test]
    fn store_all_resident_under_budget() {
        let config = SpillConfig::in_temp(usize::MAX);
        let mut store = LevelStore::new(&config, 40);
        let sls = sample_sublists(40, 10);
        for sl in sls.clone() {
            store.push(sl).unwrap();
        }
        assert_eq!(store.len(), 10);
        assert_eq!(store.resident_len(), 10);
        assert_eq!(store.spilled_len(), 0);
        let mut seen = 0;
        let report = store.drain(|_| seen += 1).unwrap();
        assert_eq!(seen, 10);
        assert_eq!(report.read_back, 0);
    }

    #[test]
    fn store_spills_over_budget_and_reads_back() {
        let config = SpillConfig::in_temp(300); // a few records only
        let mut store = LevelStore::new(&config, 40);
        let sls = sample_sublists(40, 20);
        for sl in sls.clone() {
            store.push(sl).unwrap();
        }
        assert_eq!(store.len(), 20);
        assert!(
            store.spilled_len() > 0,
            "budget should have forced spilling"
        );
        assert!(store.spilled_bytes() > 0);
        let mut tails = Vec::new();
        let report = store.drain(|sl| tails.push(sl.tails.clone())).unwrap();
        assert_eq!(tails.len(), 20);
        assert!(report.read_back > 0);
        // content preserved (resident first, then spilled, same order)
        let expect: Vec<Vec<Vertex>> = sls.iter().map(|s| s.tails.clone()).collect();
        let mut got_sorted = tails.clone();
        let mut expect_sorted = expect.clone();
        got_sorted.sort();
        expect_sorted.sort();
        assert_eq!(got_sorted, expect_sorted);
    }

    #[test]
    fn zero_budget_spills_everything() {
        let config = SpillConfig::in_temp(0);
        let mut store = LevelStore::new(&config, 40);
        for sl in sample_sublists(40, 5) {
            store.push(sl).unwrap();
        }
        assert_eq!(store.resident_len(), 0);
        assert_eq!(store.spilled_len(), 5);
        let mut n = 0;
        let report = store.drain(|_| n += 1).unwrap();
        assert_eq!(n, 5);
        assert_eq!(report.read_back, 5);
        assert!(report.bytes_read > 0);
    }

    #[test]
    fn corrupted_spill_file_yields_typed_error_and_is_removed() {
        let config = SpillConfig::in_temp(0);
        let mut store = LevelStore::new(&config, 40);
        for sl in sample_sublists(40, 4) {
            store.push(sl).unwrap();
        }
        let path = store.spill.as_ref().unwrap().path.clone();
        // flip one payload bit behind the store's back
        if let Some(w) = store.spill.as_mut().unwrap().writer.take() {
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();
        let err = store.drain(|_| {}).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Checksum { .. } | StoreError::CountMismatch { .. }
            ),
            "unexpected error {err}"
        );
        assert!(!path.exists(), "spill file leaked after failed drain");
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let config = SpillConfig::in_temp(0);
        let mut store = LevelStore::new(&config, 40);
        for sl in sample_sublists(40, 3) {
            store.push(sl).unwrap();
        }
        let path = store.spill.as_ref().unwrap().path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "spill file leaked");
    }

    #[test]
    fn dir_writable_checks() {
        assert!(dir_writable(&std::env::temp_dir()));
        assert!(!dir_writable(Path::new("/nonexistent-gsb-dir")));
    }

    #[test]
    fn v1_checkpoints_still_readable() {
        let sls = sample_sublists(40, 3);
        let mut buf = BytesMut::new();
        buf.put_u64_le(CHECKPOINT_MAGIC_V1);
        buf.put_u32_le(3);
        buf.put_u64_le(sls.len() as u64);
        for sl in &sls {
            encode_sublist(sl, &mut buf);
        }
        let path = std::env::temp_dir().join(format!("gsb-v1-compat-{}.lvl", std::process::id()));
        std::fs::write(&path, &buf[..]).unwrap();
        let (level, n_bits) = read_level_meta::<BitSet>(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(level.k, 3);
        assert_eq!(level.sublists.len(), 3);
        assert_eq!(n_bits, 0, "v1 files carry no graph width");
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let level = crate::sublist::Level {
            k: 4,
            sublists: sample_sublists(40, 6),
        };
        let path = std::env::temp_dir().join(format!("gsb-atomic-{}.lvl", std::process::id()));
        write_level(&path, &level).unwrap();
        assert!(!sibling_tmp(&path).exists(), "temp file left behind");
        let (back, n_bits) = read_level_meta::<BitSet>(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.k, 4);
        assert_eq!(back.sublists.len(), 6);
        assert_eq!(n_bits, 40);
    }

    #[test]
    fn v3_checkpoint_roundtrips_wah_and_rejects_wrong_backend() {
        let level: crate::sublist::Level<WahBitSet> = crate::sublist::Level {
            k: 4,
            sublists: sample_sublists(40, 6),
        }
        .convert();
        let path = std::env::temp_dir().join(format!("gsb-v3-{}.lvl", std::process::id()));
        write_level(&path, &level).unwrap();
        let (back, n_bits) = read_level_meta::<WahBitSet>(&path).unwrap();
        assert_eq!(back.k, 4);
        assert_eq!(back.sublists.len(), 6);
        assert_eq!(n_bits, 40);
        for (a, b) in back.sublists.iter().zip(&level.sublists) {
            assert_eq!(a.cn, b.cn);
            assert_eq!(a.tails, b.tails);
        }
        // a dense reader must get a typed mismatch, not garbage
        let err = read_level_meta::<BitSet>(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::BackendMismatch { .. }),
            "unexpected error {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dense_reader_rejects_nothing_but_wah_rejects_v2() {
        let level = crate::sublist::Level {
            k: 3,
            sublists: sample_sublists(40, 2),
        };
        let path = std::env::temp_dir().join(format!("gsb-v2-gate-{}.lvl", std::process::id()));
        write_level(&path, &level).unwrap();
        assert!(read_level_meta::<BitSet>(&path).is_ok());
        let err = read_level_meta::<WahBitSet>(&path).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::BackendMismatch {
                    found: gsb_bitset::KIND_DENSE,
                    ..
                }
            ),
            "unexpected error {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wah_spill_store_roundtrips_compressed_records() {
        let config = SpillConfig::in_temp(0);
        let mut store: LevelStore<WahBitSet> = LevelStore::new(&config, 40);
        let originals: Vec<SubList<WahBitSet>> = sample_sublists(40, 5)
            .iter()
            .map(SubList::convert)
            .collect();
        for sl in originals.clone() {
            store.push(sl).unwrap();
        }
        assert_eq!(store.spilled_len(), 5);
        let mut back = Vec::new();
        let report = store.drain(|sl| back.push(sl)).unwrap();
        assert_eq!(report.read_back, 5);
        let mut got: Vec<_> = back.iter().map(|s| s.tails.clone()).collect();
        let mut want: Vec<_> = originals.iter().map(|s| s.tails.clone()).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }
}
