//! Out-of-core level storage.
//!
//! The paper's motivation (§1): "To deal with such large memory
//! requirements we have previously developed an out-of-core algorithm
//! ... However, the algorithm could not finish after one week of
//! execution ... Intensive disk I/O access has been the major
//! bottleneck" — which is why the Altix's in-core terabytes win. This
//! module supplies both halves of that comparison: a compact binary
//! codec for k-clique sub-lists, and a [`LevelStore`] that keeps a
//! level in memory until a byte budget is exceeded and spills the rest
//! to disk, streaming it back for the next expansion pass. The
//! `ablation_spill` bench quantifies the I/O penalty the paper reports.

use crate::sublist::SubList;
use crate::Vertex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gsb_bitset::BitSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Encode one sub-list into a length-prefixed binary record.
///
/// Layout: `prefix_len: u32, tails_len: u32, n_bits: u32,
/// prefix: [u32], tails: [u32], cn_words: [u64]`.
pub fn encode_sublist(sl: &SubList, buf: &mut BytesMut) {
    buf.put_u32_le(sl.prefix.len() as u32);
    buf.put_u32_le(sl.tails.len() as u32);
    buf.put_u32_le(sl.cn.len() as u32);
    for &v in &sl.prefix {
        buf.put_u32_le(v);
    }
    for &t in &sl.tails {
        buf.put_u32_le(t);
    }
    for &w in sl.cn.words() {
        buf.put_u64_le(w);
    }
}

/// Decode one sub-list from the reader side of [`encode_sublist`].
/// Returns `None` at a clean end of input; panics on a torn record
/// (torn spill files are unrecoverable corruption, not a user error).
pub fn decode_sublist(buf: &mut Bytes) -> Option<SubList> {
    if buf.remaining() == 0 {
        return None;
    }
    assert!(buf.remaining() >= 12, "torn sub-list header");
    let prefix_len = buf.get_u32_le() as usize;
    let tails_len = buf.get_u32_le() as usize;
    let n_bits = buf.get_u32_le() as usize;
    let words = gsb_bitset::words_for(n_bits);
    let need = 4 * (prefix_len + tails_len) + 8 * words;
    assert!(buf.remaining() >= need, "torn sub-list body");
    let prefix: Vec<Vertex> = (0..prefix_len).map(|_| buf.get_u32_le()).collect();
    let tails: Vec<Vertex> = (0..tails_len).map(|_| buf.get_u32_le()).collect();
    let cn_words: Vec<u64> = (0..words).map(|_| buf.get_u64_le()).collect();
    Some(SubList {
        prefix,
        cn: BitSet::from_words(n_bits, cn_words),
        tails,
    })
}

/// Spill configuration for enumeration runs.
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// In-memory budget, in *formula* bytes, before a level spills.
    pub budget_bytes: usize,
    /// Directory for spill files (a unique file per level is created
    /// inside and deleted on drop).
    pub dir: PathBuf,
}

impl SpillConfig {
    /// Budgeted spilling into the system temp directory.
    pub fn in_temp(budget_bytes: usize) -> Self {
        SpillConfig {
            budget_bytes,
            dir: std::env::temp_dir(),
        }
    }
}

/// One level of candidate sub-lists, resident in memory up to a budget
/// and on disk beyond it.
pub struct LevelStore {
    budget_bytes: usize,
    dir: PathBuf,
    graph_n: usize,
    resident: Vec<SubList>,
    resident_bytes: usize,
    spill: Option<Spill>,
    total: usize,
}

struct Spill {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    records: usize,
    bytes_written: u64,
}

impl LevelStore {
    /// An empty store for a graph with `graph_n` vertices.
    pub fn new(config: &SpillConfig, graph_n: usize) -> Self {
        LevelStore {
            budget_bytes: config.budget_bytes,
            dir: config.dir.clone(),
            graph_n,
            resident: Vec::new(),
            resident_bytes: 0,
            spill: None,
            total: 0,
        }
    }

    /// Number of sub-lists stored (resident + spilled).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sub-lists currently resident in memory.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    /// Sub-lists spilled to disk.
    pub fn spilled_len(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.records)
    }

    /// Bytes written to the spill file so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.bytes_written)
    }

    /// Append a sub-list, spilling it to disk if the memory budget is
    /// exhausted.
    pub fn push(&mut self, sl: SubList) -> std::io::Result<()> {
        self.total += 1;
        let cost = sl.formula_bytes(self.graph_n);
        if self.resident_bytes + cost <= self.budget_bytes {
            self.resident_bytes += cost;
            self.resident.push(sl);
            return Ok(());
        }
        let spill = match &mut self.spill {
            Some(s) => s,
            None => {
                static SPILL_SEQ: std::sync::atomic::AtomicU64 =
                    std::sync::atomic::AtomicU64::new(0);
                let seq = SPILL_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let path = self.dir.join(format!(
                    "gsb-spill-{}-{seq}.bin",
                    std::process::id()
                ));
                let file = File::create(&path)?;
                self.spill = Some(Spill {
                    path,
                    writer: Some(BufWriter::new(file)),
                    records: 0,
                    bytes_written: 0,
                });
                self.spill.as_mut().expect("just created")
            }
        };
        let mut buf = BytesMut::new();
        encode_sublist(&sl, &mut buf);
        let writer = spill.writer.as_mut().expect("writer open while pushing");
        writer.write_all(&buf)?;
        spill.bytes_written += buf.len() as u64;
        spill.records += 1;
        Ok(())
    }

    /// Drain the store, applying `f` to every sub-list: resident ones
    /// first (moved out), then spilled ones streamed back from disk.
    pub fn drain(mut self, mut f: impl FnMut(SubList)) -> std::io::Result<DrainReport> {
        for sl in self.resident.drain(..) {
            f(sl);
        }
        let mut report = DrainReport {
            read_back: 0,
            bytes_read: 0,
        };
        if let Some(mut spill) = self.spill.take() {
            // flush and reopen for reading
            if let Some(w) = spill.writer.take() {
                w.into_inner().map_err(std::io::IntoInnerError::into_error)?.sync_all()?;
            }
            let mut reader = BufReader::new(File::open(&spill.path)?);
            let mut raw = Vec::with_capacity(spill.bytes_written as usize);
            reader.read_to_end(&mut raw)?;
            report.bytes_read = raw.len() as u64;
            let mut bytes = Bytes::from(raw);
            while let Some(sl) = decode_sublist(&mut bytes) {
                report.read_back += 1;
                f(sl);
            }
            assert_eq!(report.read_back, spill.records, "spill file truncated");
            let _ = std::fs::remove_file(&spill.path);
        }
        Ok(report)
    }
}

impl Drop for LevelStore {
    fn drop(&mut self) {
        if let Some(spill) = self.spill.take() {
            drop(spill.writer);
            let _ = std::fs::remove_file(&spill.path);
        }
    }
}

/// What came back from disk during a drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Records streamed back from the spill file.
    pub read_back: usize,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

const CHECKPOINT_MAGIC: u64 = 0x5343_3035_474C_5631; // "SC05GLV1"

/// Write a whole level (the paper's `L_k`) as a checkpoint file:
/// genome-scale runs took the original authors hours to days, and a
/// levelwise algorithm has a natural consistent cut at every barrier.
pub fn write_level(path: &Path, level: &crate::sublist::Level) -> std::io::Result<()> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(CHECKPOINT_MAGIC);
    buf.put_u32_le(level.k as u32);
    buf.put_u64_le(level.sublists.len() as u64);
    for sl in &level.sublists {
        encode_sublist(sl, &mut buf);
    }
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(&buf)?;
    file.into_inner()
        .map_err(std::io::IntoInnerError::into_error)?
        .sync_all()
}

/// Read a level checkpoint written by [`write_level`].
pub fn read_level(path: &Path) -> std::io::Result<crate::sublist::Level> {
    let raw = std::fs::read(path)?;
    let mut bytes = Bytes::from(raw);
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    if bytes.remaining() < 20 {
        return Err(bad("truncated checkpoint header"));
    }
    if bytes.get_u64_le() != CHECKPOINT_MAGIC {
        return Err(bad("not a gsb level checkpoint"));
    }
    let k = bytes.get_u32_le() as usize;
    let count = bytes.get_u64_le() as usize;
    let mut sublists = Vec::with_capacity(count);
    for _ in 0..count {
        match decode_sublist(&mut bytes) {
            Some(sl) => sublists.push(sl),
            None => return Err(bad("checkpoint shorter than its header claims")),
        }
    }
    Ok(crate::sublist::Level { k, sublists })
}

/// Convenience: does `dir` exist and accept files? Used by callers to
/// validate a [`SpillConfig`] before a long run.
pub fn dir_writable(dir: &Path) -> bool {
    let probe = dir.join(format!(".gsb-probe-{}", std::process::id()));
    match File::create(&probe) {
        Ok(_) => {
            let _ = std::fs::remove_file(&probe);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::BitGraph;

    fn sample_sublists(n_graph: usize, count: usize) -> Vec<SubList> {
        let g = BitGraph::complete(n_graph);
        (0..count)
            .map(|i| {
                let a = i % (n_graph - 3);
                let members = vec![a];
                SubList {
                    prefix: vec![a as Vertex],
                    cn: g.common_neighbors(&members),
                    tails: ((a + 1)..(a + 3)).map(|v| v as Vertex).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn codec_roundtrip() {
        for sl in sample_sublists(70, 5) {
            let mut buf = BytesMut::new();
            encode_sublist(&sl, &mut buf);
            let mut bytes = buf.freeze();
            let back = decode_sublist(&mut bytes).expect("one record");
            assert_eq!(back.prefix, sl.prefix);
            assert_eq!(back.tails, sl.tails);
            assert_eq!(back.cn, sl.cn);
            assert!(decode_sublist(&mut bytes).is_none());
        }
    }

    #[test]
    fn multiple_records_stream() {
        let sls = sample_sublists(40, 7);
        let mut buf = BytesMut::new();
        for sl in &sls {
            encode_sublist(sl, &mut buf);
        }
        let mut bytes = buf.freeze();
        let mut back = Vec::new();
        while let Some(sl) = decode_sublist(&mut bytes) {
            back.push(sl);
        }
        assert_eq!(back.len(), sls.len());
        for (a, b) in back.iter().zip(&sls) {
            assert_eq!(a.tails, b.tails);
        }
    }

    #[test]
    fn store_all_resident_under_budget() {
        let config = SpillConfig::in_temp(usize::MAX);
        let mut store = LevelStore::new(&config, 40);
        let sls = sample_sublists(40, 10);
        for sl in sls.clone() {
            store.push(sl).unwrap();
        }
        assert_eq!(store.len(), 10);
        assert_eq!(store.resident_len(), 10);
        assert_eq!(store.spilled_len(), 0);
        let mut seen = 0;
        let report = store.drain(|_| seen += 1).unwrap();
        assert_eq!(seen, 10);
        assert_eq!(report.read_back, 0);
    }

    #[test]
    fn store_spills_over_budget_and_reads_back() {
        let config = SpillConfig::in_temp(300); // a few records only
        let mut store = LevelStore::new(&config, 40);
        let sls = sample_sublists(40, 20);
        for sl in sls.clone() {
            store.push(sl).unwrap();
        }
        assert_eq!(store.len(), 20);
        assert!(store.spilled_len() > 0, "budget should have forced spilling");
        assert!(store.spilled_bytes() > 0);
        let mut tails = Vec::new();
        let report = store.drain(|sl| tails.push(sl.tails.clone())).unwrap();
        assert_eq!(tails.len(), 20);
        assert!(report.read_back > 0);
        // content preserved (resident first, then spilled, same order)
        let expect: Vec<Vec<Vertex>> = sls.iter().map(|s| s.tails.clone()).collect();
        let mut got_sorted = tails.clone();
        let mut expect_sorted = expect.clone();
        got_sorted.sort();
        expect_sorted.sort();
        assert_eq!(got_sorted, expect_sorted);
    }

    #[test]
    fn zero_budget_spills_everything() {
        let config = SpillConfig::in_temp(0);
        let mut store = LevelStore::new(&config, 40);
        for sl in sample_sublists(40, 5) {
            store.push(sl).unwrap();
        }
        assert_eq!(store.resident_len(), 0);
        assert_eq!(store.spilled_len(), 5);
        let mut n = 0;
        let report = store.drain(|_| n += 1).unwrap();
        assert_eq!(n, 5);
        assert_eq!(report.read_back, 5);
        assert!(report.bytes_read > 0);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let config = SpillConfig::in_temp(0);
        let mut store = LevelStore::new(&config, 40);
        for sl in sample_sublists(40, 3) {
            store.push(sl).unwrap();
        }
        let path = store.spill.as_ref().unwrap().path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "spill file leaked");
    }

    #[test]
    fn dir_writable_checks() {
        assert!(dir_writable(&std::env::temp_dir()));
        assert!(!dir_writable(Path::new("/nonexistent-gsb-dir")));
    }
}
