//! Per-level memory accounting (the data behind the paper's Fig. 9).
//!
//! §2.3's space analysis: "at each step k, the algorithm would need
//! `M[k]·c + N[k]·((k−1)·c + ⌈n/8⌉)` bytes to hold all the candidate
//! k-cliques, and `N[k]·sizeof(pointers)` more bytes to keep the
//! pointers to the sub-lists", where `c` is the bytes per vertex index.
//! We report both that formula and the bytes the structures actually
//! hold on the heap.

use crate::sublist::{Level, SubList};
use crate::Vertex;
use gsb_bitset::NeighborSet;

/// Memory held by one level of candidate cliques.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelMemory {
    /// The paper's `N[k]`.
    pub n_sublists: usize,
    /// The paper's `M[k]`.
    pub n_cliques: usize,
    /// Bytes according to the paper's formula.
    pub formula_bytes: usize,
    /// Bytes actually held on the heap by the structures.
    pub heap_bytes: usize,
}

impl LevelMemory {
    /// Account for one level over an `n`-vertex graph.
    ///
    /// `formula_bytes` uses the paper's dense cost model regardless of
    /// the bitmap representation `S`; `heap_bytes` reflects what `S`
    /// actually holds, so a compressed level reports a smaller heap.
    pub fn account<S: NeighborSet>(level: &Level<S>, n: usize) -> Self {
        let c = std::mem::size_of::<Vertex>();
        let n_sublists = level.n_sublists();
        let n_cliques = level.n_cliques();
        let k = level.k.max(1);
        let formula_bytes = n_cliques * c
            + n_sublists * ((k - 1) * c + n.div_ceil(8))
            + n_sublists * std::mem::size_of::<usize>();
        let heap_bytes = level
            .sublists
            .iter()
            .map(SubList::heap_bytes)
            .sum::<usize>()
            + level.sublists.capacity() * std::mem::size_of::<SubList<S>>();
        LevelMemory {
            n_sublists,
            n_cliques,
            formula_bytes,
            heap_bytes,
        }
    }

    /// Combined bytes for holding this level and the next
    /// simultaneously — the transient peak of the level step (the paper
    /// reports "607 GB ... to hold new generated (k+1)-cliques and
    /// 404 GB to hold k-cliques").
    pub fn with_next(&self, next: &LevelMemory) -> usize {
        self.formula_bytes + next.formula_bytes
    }

    /// Conservative projection of the *next* level's formula bytes,
    /// before building it.
    ///
    /// The paper's growth bound (§2.3): each sub-list with `t` tails
    /// yields at most `t·(t−1)/2 ≤ (t−1)²` children, but the only
    /// quantity known without expanding is the candidate count, which
    /// satisfies `N[k+1] ≤ M[k] − 2·N[k]` (every child sub-list consumes
    /// a tail pair). We take `N' = M[k] − 2·N[k]` (clamped at 0) for the
    /// sub-list count and `M' ≈ M[k]` for the clique count — a heuristic,
    /// not a bound: dense levels can exceed it. It is meant as a cheap
    /// degradation trigger, not an admission-control guarantee.
    pub fn projected_next_bytes(&self, k: usize, n: usize) -> usize {
        let c = std::mem::size_of::<Vertex>();
        let n_next = self.n_cliques.saturating_sub(2 * self.n_sublists);
        let m_next = self.n_cliques;
        m_next * c + n_next * (k.max(1) * c + n.div_ceil(8)) + n_next * std::mem::size_of::<usize>()
    }

    /// Projected transient peak of the upcoming level step: this level
    /// plus the projected next one, both resident while expanding.
    pub fn projected_peak_bytes(&self, k: usize, n: usize) -> usize {
        self.formula_bytes
            .saturating_add(self.projected_next_bytes(k, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sublist::SubList;
    use gsb_bitset::BitSet;
    use gsb_graph::BitGraph;

    #[test]
    fn formula_matches_hand_computation() {
        let g = BitGraph::complete(5);
        let cn01 = g.common_neighbors(&[0, 1]);
        let cn02 = g.common_neighbors(&[0, 2]);
        let level = Level {
            k: 3,
            sublists: vec![
                SubList {
                    prefix: vec![0, 1],
                    cn: cn01,
                    tails: vec![2, 3, 4],
                },
                SubList {
                    prefix: vec![0, 2],
                    cn: cn02,
                    tails: vec![3, 4],
                },
            ],
        };
        let mem = LevelMemory::account(&level, 5);
        assert_eq!(mem.n_sublists, 2);
        assert_eq!(mem.n_cliques, 5);
        // M*c = 5*4; N*((k-1)*c + ceil(5/8)) = 2*(2*4+1); N*ptr = 2*8
        assert_eq!(mem.formula_bytes, 20 + 18 + 16);
        assert!(mem.heap_bytes > 0);
    }

    #[test]
    fn empty_level_is_cheap() {
        let mem = LevelMemory::account(
            &Level::<BitSet> {
                k: 4,
                sublists: Vec::new(),
            },
            100,
        );
        assert_eq!(mem.formula_bytes, 0);
        assert_eq!(mem.n_cliques, 0);
    }

    #[test]
    fn with_next_sums() {
        let a = LevelMemory {
            formula_bytes: 100,
            ..Default::default()
        };
        let b = LevelMemory {
            formula_bytes: 50,
            ..Default::default()
        };
        assert_eq!(a.with_next(&b), 150);
    }

    #[test]
    fn projection_is_monotone_and_zero_safe() {
        let empty = LevelMemory::default();
        assert_eq!(empty.projected_next_bytes(3, 100), 0);
        let mem = LevelMemory {
            n_sublists: 2,
            n_cliques: 10,
            formula_bytes: 500,
            heap_bytes: 600,
        };
        // N' = 10 - 4 = 6, M' = 10, c = 4, n = 80 → ceil(80/8) = 10
        // 10*4 + 6*(3*4 + 10) + 6*8 = 40 + 132 + 48
        assert_eq!(mem.projected_next_bytes(3, 80), 220);
        assert_eq!(mem.projected_peak_bytes(3, 80), 720);
        // more sub-lists than pairs: projection clamps to the M' term
        let tight = LevelMemory {
            n_sublists: 10,
            n_cliques: 10,
            ..Default::default()
        };
        assert_eq!(tight.projected_next_bytes(3, 80), 40);
    }

    #[test]
    fn bitset_dominates_for_large_n() {
        // For genome-scale n the per-sub-list ceil(n/8) bitmap dominates,
        // which is why the paper keeps one per sub-list, not per clique.
        let n = 12_422;
        let g = BitGraph::new(n);
        let level = Level {
            k: 3,
            sublists: vec![SubList {
                prefix: vec![0, 1],
                cn: BitSet::new(n),
                tails: vec![2, 3],
            }],
        };
        let _ = g;
        let mem = LevelMemory::account(&level, n);
        assert!(mem.formula_bytes > n / 8);
        assert!(mem.formula_bytes < n); // but only once, not per clique
    }
}
