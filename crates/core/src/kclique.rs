//! The k-clique enumerator (§2.2): all cliques of exactly size k, in
//! canonical order, split into maximal and non-maximal.
//!
//! This is Base BK altered in the two ways the paper describes:
//!
//! 1. vertices that cannot be in any k-clique (degree < k−1, iterated —
//!    i.e. outside the (k−1)-core) are eliminated in preprocessing
//!    instead of pivot selection;
//! 2. a boundary condition abandons any branch where
//!    |COMPSUB ∪ CANDIDATES| < k, and recursion stops at |COMPSUB| = k,
//!    where empty NEW_CANDIDATES and NEW_NOT mean the k-clique is
//!    maximal and anything else means it is a non-maximal seed for the
//!    Clique Enumerator.

use crate::sublist::{Level, SubList};
use crate::{Clique, Vertex};
use gsb_bitset::{BitSet, NeighborSet};
use gsb_graph::reduce::prune_for_k_clique;
use gsb_graph::BitGraph;
use std::collections::BTreeMap;

/// Output of the k-clique enumerator.
#[derive(Clone, Debug, Default)]
pub struct KCliques {
    /// Cliques of size k that are maximal in the input graph, canonical
    /// (lexicographic) order.
    pub maximal: Vec<Clique>,
    /// Cliques of size k contained in some larger clique, canonical
    /// order.
    pub non_maximal: Vec<Clique>,
}

impl KCliques {
    /// Total number of k-cliques found.
    pub fn total(&self) -> usize {
        self.maximal.len() + self.non_maximal.len()
    }
}

/// Enumerate every clique of exactly size `k` (maximal and not).
pub fn enumerate_k_cliques(g: &BitGraph, k: usize) -> KCliques {
    assert!(k >= 1, "k must be positive");
    let mut out = KCliques::default();
    // Preprocessing: only the (k-1)-core can host k-cliques, and pruning
    // cannot change any surviving k-clique's maximality (every common
    // neighbor of a k-clique is inside the core too).
    let (h, ids) = prune_for_k_clique(g, k);
    if h.n() < k {
        return out;
    }
    let mut compsub: Vec<usize> = Vec::with_capacity(k);
    let candidates = BitSet::full(h.n());
    let not = BitSet::new(h.n());
    extend(&h, k, &mut compsub, candidates, not, &ids, &mut out);
    out
}

fn extend(
    h: &BitGraph,
    k: usize,
    compsub: &mut Vec<usize>,
    mut candidates: BitSet,
    mut not: BitSet,
    ids: &[usize],
    out: &mut KCliques,
) {
    // Boundary condition: not enough vertices left to reach size k.
    if compsub.len() + candidates.count_ones() < k {
        return;
    }
    while let Some(v) = candidates.first_one() {
        candidates.remove(v);
        compsub.push(v);
        let new_candidates = candidates.and(h.neighbors(v));
        let new_not = not.and(h.neighbors(v));
        if compsub.len() == k {
            let clique: Clique = compsub.iter().map(|&u| ids[u] as Vertex).collect();
            if new_candidates.none() && new_not.none() {
                out.maximal.push(clique);
            } else {
                out.non_maximal.push(clique);
            }
        } else {
            extend(h, k, compsub, new_candidates, new_not, ids, out);
        }
        compsub.pop();
        not.insert(v);
        // Re-check the boundary after shrinking CANDIDATES.
        if compsub.len() + candidates.count_ones() < k {
            return;
        }
    }
}

/// Build the Clique Enumerator's level-k input from the non-maximal
/// k-cliques: group by (k−1)-prefix into sub-lists with the prefix's
/// common-neighbor bitmap (converted into whichever [`NeighborSet`]
/// representation the caller enumerates with). Maximal k-cliques are
/// returned alongside so the caller can report them (they seed
/// nothing).
pub fn seed_level<S: NeighborSet>(g: &BitGraph, k: usize) -> (Level<S>, Vec<Clique>) {
    assert!(k >= 2, "seeding needs k >= 2");
    let found = enumerate_k_cliques(g, k);
    let mut groups: BTreeMap<Vec<Vertex>, Vec<Vertex>> = BTreeMap::new();
    for clique in &found.non_maximal {
        let (tail, prefix) = clique.split_last().expect("k >= 2");
        groups.entry(prefix.to_vec()).or_default().push(*tail);
    }
    let sublists = groups
        .into_iter()
        .map(|(prefix, tails)| {
            debug_assert!(tails.windows(2).all(|w| w[0] < w[1]));
            let members: Vec<usize> = prefix.iter().map(|&v| v as usize).collect();
            let cn = S::from_bitset(&g.common_neighbors(&members));
            SubList { prefix, cn, tails }
        })
        .collect();
    (Level { k, sublists }, found.maximal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsb_graph::generators::gnp;

    /// Brute-force oracle: every size-k subset that is a clique.
    fn oracle(g: &BitGraph, k: usize) -> (Vec<Clique>, Vec<Clique>) {
        fn rec(
            g: &BitGraph,
            k: usize,
            start: usize,
            cur: &mut Vec<usize>,
            max_out: &mut Vec<Clique>,
            non_out: &mut Vec<Clique>,
        ) {
            if cur.len() == k {
                let c: Clique = cur.iter().map(|&v| v as Vertex).collect();
                if g.is_maximal_clique(cur) {
                    max_out.push(c);
                } else {
                    non_out.push(c);
                }
                return;
            }
            for v in start..g.n() {
                if cur.iter().all(|&u| g.has_edge(u, v)) {
                    cur.push(v);
                    rec(g, k, v + 1, cur, max_out, non_out);
                    cur.pop();
                }
            }
        }
        let mut maxi = Vec::new();
        let mut non = Vec::new();
        rec(g, k, 0, &mut Vec::new(), &mut maxi, &mut non);
        (maxi, non)
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..6 {
            let g = gnp(18, 0.45, seed);
            for k in 1..=5 {
                let got = enumerate_k_cliques(&g, k);
                let (maxi, non) = oracle(&g, k);
                assert_eq!(got.maximal, maxi, "maximal k={k} seed={seed}");
                assert_eq!(got.non_maximal, non, "non-maximal k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn canonical_order() {
        let g = gnp(20, 0.5, 3);
        let got = enumerate_k_cliques(&g, 3);
        let mut sorted = got.non_maximal.clone();
        sorted.sort();
        assert_eq!(got.non_maximal, sorted);
    }

    #[test]
    fn k1_isolated_vertices() {
        let g = BitGraph::from_edges(4, [(0, 1)]);
        let got = enumerate_k_cliques(&g, 1);
        assert_eq!(got.maximal, vec![vec![2], vec![3]]);
        assert_eq!(got.non_maximal, vec![vec![0], vec![1]]);
    }

    #[test]
    fn k_larger_than_max_clique() {
        let g = BitGraph::complete(4);
        let got = enumerate_k_cliques(&g, 5);
        assert_eq!(got.total(), 0);
        let got = enumerate_k_cliques(&g, 4);
        assert_eq!(got.maximal, vec![vec![0, 1, 2, 3]]);
        assert!(got.non_maximal.is_empty());
    }

    #[test]
    fn seed_level_structure() {
        // K5: all C(5,3)=10 3-cliques are non-maximal; prefixes (a,b)
        // with a<b<4 group them.
        let g = BitGraph::complete(5);
        let (level, maximal) = seed_level::<BitSet>(&g, 3);
        assert!(maximal.is_empty());
        assert_eq!(level.k, 3);
        assert_eq!(level.n_cliques(), 10);
        for sl in &level.sublists {
            sl.validate(&g);
        }
        // prefix (0,1) has tails 2,3,4
        let first = &level.sublists[0];
        assert_eq!(first.prefix, vec![0, 1]);
        assert_eq!(first.tails, vec![2, 3, 4]);
    }

    #[test]
    fn seed_level_reports_maximal_k_cliques() {
        // Triangle + K4 sharing nothing: at k=3 the triangle is maximal,
        // the K4's triangles are seeds.
        let mut g = BitGraph::new(7);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            g.add_edge(u, v);
        }
        for u in 3..7 {
            for v in u + 1..7 {
                g.add_edge(u, v);
            }
        }
        let (level, maximal) = seed_level::<BitSet>(&g, 3);
        assert_eq!(maximal, vec![vec![0, 1, 2]]);
        assert_eq!(level.n_cliques(), 4); // C(4,3) triangles of the K4
    }
}
