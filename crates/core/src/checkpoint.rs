//! Crash-safe automated checkpointing at level barriers.
//!
//! The levelwise algorithm has a natural consistent cut: when level
//! `k` is fully built, every maximal clique of size `< k` has already
//! been emitted and the level alone determines the rest of the run.
//! Persisting `L_k` at (some) barriers turns a multi-day genome-scale
//! enumeration into a resumable one — a crash costs at most the work
//! since the newest checkpoint, not the whole run.
//!
//! [`CheckpointManager`] owns the directory, applies a
//! [`CheckpointPolicy`] (every level, every N seconds of wall clock, or
//! off), prunes old files, and exposes [`latest_checkpoint`] for the
//! resume path, which walks checkpoints newest-first and falls back
//! past corrupt ones. [`RunMeta`] records the run parameters next to
//! the checkpoints so `gsb resume` can re-derive the original
//! invocation.

use crate::backend::BackendChoice;
use crate::parallel::Scheduler;
use crate::store::{self, StoreError};
use crate::sublist::Level;
use crate::supervise::RetryPolicy;
use gsb_bitset::NeighborSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The cost of one checkpoint write, for telemetry export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointWrite {
    /// Wall time of the write (encode + fsync + rename), ns.
    pub ns: u64,
    /// Bytes written (header + framed records).
    pub bytes: u64,
}

/// When to persist a level checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// Never checkpoint (the manager still writes on [`CheckpointManager::force`]).
    Off,
    /// Checkpoint at every level barrier — cheapest recovery, most I/O.
    EveryLevel,
    /// Checkpoint at the first barrier after this much wall-clock time
    /// has elapsed since the previous checkpoint.
    Every(Duration),
}

/// Where and how often to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding `ckpt-k*.lvl` files and `run.meta`.
    pub dir: PathBuf,
    /// Cadence policy.
    pub policy: CheckpointPolicy,
    /// How many newest checkpoints to keep (older ones are pruned).
    /// Keeping more than one lets resume fall back when the newest
    /// file is corrupt. Clamped to at least 1.
    pub keep: usize,
    /// Retry policy for transient checkpoint-write failures.
    pub retry: RetryPolicy,
    /// Total bytes of checkpoint files to keep on disk (`None` =
    /// unbounded). When the budget is exceeded — or a write hits
    /// `ENOSPC` — the manager prunes old checkpoints down to the
    /// newest one before giving up, trading recovery depth for the
    /// ability to keep running.
    pub disk_budget: Option<u64>,
}

impl CheckpointConfig {
    /// Checkpoint at every level barrier into `dir`, keeping two files.
    pub fn every_level(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            policy: CheckpointPolicy::EveryLevel,
            keep: 2,
            retry: RetryPolicy::default(),
            disk_budget: None,
        }
    }

    /// Checkpoint at the first barrier after each `secs` seconds.
    pub fn every_secs(dir: impl Into<PathBuf>, secs: u64) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            policy: CheckpointPolicy::Every(Duration::from_secs(secs)),
            keep: 2,
            retry: RetryPolicy::default(),
            disk_budget: None,
        }
    }

    /// Cap the total bytes of checkpoint files kept on disk.
    pub fn disk_budget(mut self, bytes: u64) -> Self {
        self.disk_budget = Some(bytes);
        self
    }
}

fn checkpoint_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("ckpt-k{k:05}.lvl"))
}

/// Parse `ckpt-k00007.lvl` → `7`.
fn parse_checkpoint_name(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("ckpt-k")?.strip_suffix(".lvl")?;
    rest.parse().ok()
}

/// Drives checkpoint writes during an enumeration run.
pub struct CheckpointManager {
    config: CheckpointConfig,
    last_write: Instant,
    written: Vec<usize>,
    written_bytes: Vec<u64>,
}

impl CheckpointManager {
    /// Create the checkpoint directory and a manager over it. Orphaned
    /// `*.tmp` files from a previous crash mid-write are swept here:
    /// every durable file in the directory is written tmp-then-rename,
    /// so a surviving `.tmp` is garbage by definition.
    pub fn new(config: CheckpointConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(&config.dir)?;
        sweep_tmp_files(&config.dir);
        Ok(CheckpointManager {
            config,
            last_write: Instant::now(),
            written: Vec::new(),
            written_bytes: Vec::new(),
        })
    }

    /// The directory this manager writes into.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Levels checkpointed so far (ascending).
    pub fn written(&self) -> &[usize] {
        &self.written
    }

    /// Called at each level barrier with the freshly built level.
    /// Writes a checkpoint when the policy says so; returns the write's
    /// cost when one was written, `None` when the policy skipped it.
    pub fn observe_level<S: NeighborSet>(
        &mut self,
        level: &Level<S>,
    ) -> Result<Option<CheckpointWrite>, StoreError> {
        let due = match self.config.policy {
            CheckpointPolicy::Off => false,
            CheckpointPolicy::EveryLevel => true,
            CheckpointPolicy::Every(interval) => self.last_write.elapsed() >= interval,
        };
        if !due {
            return Ok(None);
        }
        self.force(level).map(Some)
    }

    /// Write a checkpoint for `level` regardless of policy, then prune
    /// to the `keep` newest files. Returns the write's latency and
    /// size for the telemetry layer.
    ///
    /// Transient I/O failures are retried per the config's
    /// [`RetryPolicy`]; a disk-full failure (`ENOSPC`) prunes every
    /// checkpoint but the newest and retries once more before
    /// surfacing the error.
    pub fn force<S: NeighborSet>(
        &mut self,
        level: &Level<S>,
    ) -> Result<CheckpointWrite, StoreError> {
        let start = Instant::now();
        self.enforce_disk_budget();
        let path = checkpoint_path(&self.config.dir, level.k);
        let retry = self.config.retry;
        let attempt = || -> Result<u64, StoreError> {
            crate::failpoint::inject("checkpoint.write")?;
            store::write_level(&path, level)
        };
        let bytes = match retry.run_store(attempt) {
            Ok(bytes) => bytes,
            Err(e) if store_is_disk_full(&e) && self.written.len() > 1 => {
                // Trade recovery depth for survival: free everything
                // but the newest checkpoint, then try once more.
                while self.written.len() > 1 {
                    self.remove_oldest();
                }
                retry.run_store(attempt)?
            }
            Err(e) => return Err(e),
        };
        let write = CheckpointWrite {
            ns: start.elapsed().as_nanos() as u64,
            bytes,
        };
        self.last_write = Instant::now();
        if self.written.last() == Some(&level.k) {
            *self.written_bytes.last_mut().expect("aligned with written") = bytes;
        } else {
            self.written.push(level.k);
            self.written_bytes.push(bytes);
        }
        self.prune();
        self.enforce_disk_budget();
        Ok(write)
    }

    fn prune(&mut self) {
        let keep = self.config.keep.max(1);
        while self.written.len() > keep {
            self.remove_oldest();
        }
    }

    /// While the checkpoint files this manager wrote exceed the disk
    /// budget, drop the oldest — but never the newest, which is the
    /// resume point.
    fn enforce_disk_budget(&mut self) {
        let Some(budget) = self.config.disk_budget else {
            return;
        };
        while self.written.len() > 1 && self.written_bytes.iter().sum::<u64>() > budget {
            self.remove_oldest();
        }
    }

    fn remove_oldest(&mut self) {
        let k = self.written.remove(0);
        self.written_bytes.remove(0);
        let _ = std::fs::remove_file(checkpoint_path(&self.config.dir, k));
    }

    /// The run completed: checkpoints are no longer needed. Best-effort
    /// removal of every `ckpt-k*.lvl` and `run.meta` in the directory
    /// (not only the ones this manager wrote), so a later `resume` on
    /// the same directory reports "nothing to resume" instead of
    /// silently redoing finished work.
    pub fn finish(self) {
        let Ok(entries) = std::fs::read_dir(&self.config.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if parse_checkpoint_name(&name).is_some()
                || name == RUN_META_FILE
                || name == PROGRESS_FILE
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Remove orphaned `*.tmp` files (crash mid-write: every durable file
/// here is written tmp-then-rename, so a leftover tmp is never valid).
fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn store_is_disk_full(e: &StoreError) -> bool {
    matches!(e, StoreError::Io(io) if crate::supervise::is_disk_full(io))
}

/// Find the newest usable checkpoint in `dir` for a graph with
/// `graph_n` vertices.
///
/// Scans `ckpt-k*.lvl` files k-descending. A corrupt file (torn,
/// checksum failure, bad magic) is skipped and the next-older one is
/// tried — that is why the manager keeps more than one. A checkpoint
/// that parses but was taken over a *different graph* is a hard
/// [`StoreError::GraphMismatch`]: falling back would silently enumerate
/// the wrong problem, and one written under a different bitmap
/// representation is [`StoreError::BackendMismatch`]: `gsb resume`
/// re-derives the original backend from [`RunMeta`] before calling
/// this. Returns `Ok(None)` when the directory holds no checkpoint
/// files at all, and the last decode error when every candidate is
/// corrupt.
pub fn latest_checkpoint<S: NeighborSet>(
    dir: &Path,
    graph_n: usize,
) -> Result<Option<(usize, Level<S>)>, StoreError> {
    let mut ks: Vec<usize> = std::fs::read_dir(dir)?
        .flatten()
        .filter_map(|e| parse_checkpoint_name(&e.file_name().to_string_lossy()))
        .collect();
    ks.sort_unstable();
    let mut last_err = None;
    for k in ks.into_iter().rev() {
        match store::read_level_meta::<S>(&checkpoint_path(dir, k)) {
            Ok((level, n_bits)) => {
                if n_bits != 0 && n_bits != graph_n {
                    return Err(StoreError::GraphMismatch {
                        checkpoint_bits: n_bits,
                        graph_bits: graph_n,
                    });
                }
                return Ok(Some((k, level)));
            }
            Err(e @ StoreError::GraphMismatch { .. }) => return Err(e),
            Err(e @ StoreError::BackendMismatch { .. }) => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

const RUN_META_FILE: &str = "run.meta";

/// Why a supervised run stopped before completing, recorded into
/// `run.meta` so `gsb resume` can tell the operator what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// Graceful shutdown on this signal (2 = SIGINT, 15 = SIGTERM).
    Signal(i32),
    /// A parallel level failed after its retry (and quarantine probing,
    /// when enabled); the run aborted with a final checkpoint.
    WorkerFailure,
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCause::Signal(2) => write!(f, "interrupted by SIGINT"),
            StopCause::Signal(15) => write!(f, "terminated by SIGTERM"),
            StopCause::Signal(sig) => write!(f, "stopped by signal {sig}"),
            StopCause::WorkerFailure => write!(f, "aborted on persistent worker failure"),
        }
    }
}

/// Record why the run stopped as a `stopped=` line in `run.meta`,
/// preserving every other line (atomic tmp-then-rename, replacing any
/// previous stop cause). Creates the file when none exists — stop
/// causes are useful even for runs checkpointing without CLI metadata.
pub fn record_stop_cause(dir: &Path, cause: StopCause) -> Result<(), StoreError> {
    let path = dir.join(RUN_META_FILE);
    let mut text = std::fs::read_to_string(&path)
        .unwrap_or_default()
        .lines()
        .filter(|l| !l.starts_with("stopped="))
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
    match cause {
        StopCause::Signal(sig) => text.push_str(&format!("stopped=signal:{sig}\n")),
        StopCause::WorkerFailure => text.push_str("stopped=worker-failure\n"),
    }
    let tmp = dir.join(format!("{RUN_META_FILE}.tmp"));
    std::fs::write(&tmp, text.as_bytes())?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Read the recorded stop cause, if any. `None` means the previous run
/// either completed (files cleaned up) or died without reaching a
/// barrier — for an existing checkpoint directory that distinction is
/// "crash or hard kill".
pub fn load_stop_cause(dir: &Path) -> Option<StopCause> {
    let text = std::fs::read_to_string(dir.join(RUN_META_FILE)).ok()?;
    let value = text.lines().find_map(|l| l.strip_prefix("stopped="))?;
    if value == "worker-failure" {
        return Some(StopCause::WorkerFailure);
    }
    value
        .strip_prefix("signal:")?
        .parse()
        .ok()
        .map(StopCause::Signal)
}

/// Parameters of a checkpointed run, persisted as `run.meta` next to
/// the checkpoints so `gsb resume <dir>` needs no other arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Path of the input graph file.
    pub graph: String,
    /// Minimum clique size reported.
    pub min_k: usize,
    /// Maximum clique size reported (`None` = unbounded).
    pub max_k: Option<usize>,
    /// Worker threads (0 = sequential).
    pub threads: usize,
    /// Output file path (`None` = stdout; resume requires a file).
    pub out: Option<String>,
    /// Bitmap representation the run enumerated with. A `run.meta`
    /// written by an older build has no `backend=` line and loads as
    /// [`BackendChoice::Dense`] — exactly what those builds ran.
    pub backend: BackendChoice,
    /// Parallel scheduler the run was started with. A `run.meta`
    /// written before the work-stealing runtime existed has no
    /// `scheduler=` line and loads as [`Scheduler::Barrier`] — exactly
    /// what those builds ran — even though fresh runs now default to
    /// [`Scheduler::Steal`].
    pub scheduler: Scheduler,
}

impl RunMeta {
    /// Persist atomically as simple `key=value` lines.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let mut text = String::new();
        text.push_str(&format!("graph={}\n", self.graph));
        text.push_str(&format!("min_k={}\n", self.min_k));
        if let Some(max_k) = self.max_k {
            text.push_str(&format!("max_k={max_k}\n"));
        }
        text.push_str(&format!("threads={}\n", self.threads));
        if let Some(out) = &self.out {
            text.push_str(&format!("out={out}\n"));
        }
        text.push_str(&format!("backend={}\n", self.backend));
        text.push_str(&format!("scheduler={}\n", self.scheduler));
        let path = dir.join(RUN_META_FILE);
        let tmp = dir.join(format!("{RUN_META_FILE}.tmp"));
        RetryPolicy::default().run_store(|| {
            crate::failpoint::inject("checkpoint.meta")?;
            std::fs::write(&tmp, text.as_bytes())?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        })
    }

    /// Load `run.meta` from `dir`. Unknown keys are ignored so older
    /// builds can read files written by newer ones.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(dir.join(RUN_META_FILE))?;
        let mut meta = RunMeta {
            // Pre-steal-runtime builds wrote no scheduler line; they
            // ran barrier rounds, so that (not the fresh-run default)
            // is what an absent key must mean.
            scheduler: Scheduler::Barrier,
            ..RunMeta::default()
        };
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "graph" => meta.graph = value.to_string(),
                "min_k" => meta.min_k = value.parse().unwrap_or(0),
                "max_k" => meta.max_k = value.parse().ok(),
                "threads" => meta.threads = value.parse().unwrap_or(0),
                "out" => meta.out = Some(value.to_string()),
                "backend" => meta.backend = value.parse().unwrap_or_default(),
                "scheduler" => {
                    meta.scheduler = value.parse().unwrap_or(Scheduler::Barrier);
                }
                _ => {}
            }
        }
        Ok(meta)
    }
}

const PROGRESS_FILE: &str = "progress.meta";

/// Cumulative run telemetry persisted as `progress.meta` next to the
/// checkpoints at every checkpoint barrier, so `gsb resume` can report
/// how far the interrupted run had gotten and the resumed run's
/// telemetry totals continue from there instead of restarting at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunProgress {
    /// Maximal cliques emitted up to (and including) the checkpointed
    /// level barrier.
    pub cliques_emitted: u64,
    /// Level barriers completed.
    pub levels_done: u64,
    /// Wall-clock time spent so far, milliseconds.
    pub wall_ms: u64,
}

impl RunProgress {
    /// Persist atomically as simple `key=value` lines.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let text = format!(
            "cliques_emitted={}\nlevels_done={}\nwall_ms={}\n",
            self.cliques_emitted, self.levels_done, self.wall_ms
        );
        let path = dir.join(PROGRESS_FILE);
        let tmp = dir.join(format!("{PROGRESS_FILE}.tmp"));
        RetryPolicy::default().run_store(|| {
            crate::failpoint::inject("checkpoint.meta")?;
            std::fs::write(&tmp, text.as_bytes())?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        })
    }

    /// Load `progress.meta` from `dir`. Unknown keys are ignored so
    /// older builds can read files written by newer ones.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let text = std::fs::read_to_string(dir.join(PROGRESS_FILE))?;
        let mut progress = RunProgress::default();
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "cliques_emitted" => progress.cliques_emitted = value.parse().unwrap_or(0),
                "levels_done" => progress.levels_done = value.parse().unwrap_or(0),
                "wall_ms" => progress.wall_ms = value.parse().unwrap_or(0),
                _ => {}
            }
        }
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sublist::SubList;
    use gsb_bitset::BitSet;
    use gsb_graph::BitGraph;

    fn temp_ckpt_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gsb-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn level_for(g: &BitGraph, k: usize) -> Level {
        let sublists = (0..3)
            .map(|i| SubList {
                prefix: vec![i],
                cn: g.common_neighbors(&[i as usize]),
                tails: vec![i + 1],
            })
            .collect();
        Level { k, sublists }
    }

    #[test]
    fn every_level_policy_writes_and_prunes() {
        let dir = temp_ckpt_dir("prune");
        let g = BitGraph::complete(10);
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        for k in 2..6 {
            let write = mgr.observe_level(&level_for(&g, k)).unwrap();
            assert!(write.expect("every-level policy writes").bytes > 0);
        }
        // keep=2: only k=4 and k=5 remain
        assert_eq!(mgr.written(), &[4, 5]);
        assert!(!checkpoint_path(&dir, 2).exists());
        assert!(!checkpoint_path(&dir, 3).exists());
        assert!(checkpoint_path(&dir, 4).exists());
        assert!(checkpoint_path(&dir, 5).exists());
        let (k, level) = latest_checkpoint::<BitSet>(&dir, 10)
            .unwrap()
            .expect("has checkpoint");
        assert_eq!(k, 5);
        assert_eq!(level.sublists.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn off_policy_never_writes_but_force_does() {
        let dir = temp_ckpt_dir("off");
        let g = BitGraph::complete(10);
        let mut config = CheckpointConfig::every_level(&dir);
        config.policy = CheckpointPolicy::Off;
        let mut mgr = CheckpointManager::new(config).unwrap();
        assert!(mgr.observe_level(&level_for(&g, 2)).unwrap().is_none());
        assert!(latest_checkpoint::<BitSet>(&dir, 10).unwrap().is_none());
        mgr.force(&level_for(&g, 2)).unwrap();
        assert!(latest_checkpoint::<BitSet>(&dir, 10).unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = temp_ckpt_dir("fallback");
        let g = BitGraph::complete(10);
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.observe_level(&level_for(&g, 3)).unwrap();
        mgr.observe_level(&level_for(&g, 4)).unwrap();
        // corrupt the newest one
        let newest = checkpoint_path(&dir, 4);
        let mut raw = std::fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x04;
        std::fs::write(&newest, &raw).unwrap();
        let (k, _) = latest_checkpoint::<BitSet>(&dir, 10)
            .unwrap()
            .expect("fallback");
        assert_eq!(k, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_is_an_error_not_a_panic() {
        let dir = temp_ckpt_dir("allbad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(checkpoint_path(&dir, 2), b"garbage").unwrap();
        assert!(latest_checkpoint::<BitSet>(&dir, 10).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn graph_mismatch_is_a_hard_error() {
        let dir = temp_ckpt_dir("mismatch");
        let g = BitGraph::complete(10);
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.observe_level(&level_for(&g, 3)).unwrap();
        let err = latest_checkpoint::<BitSet>(&dir, 99).unwrap_err();
        assert!(matches!(err, StoreError::GraphMismatch { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finish_removes_checkpoints_and_meta() {
        let dir = temp_ckpt_dir("finish");
        let g = BitGraph::complete(10);
        let mut mgr = CheckpointManager::new(CheckpointConfig::every_level(&dir)).unwrap();
        mgr.observe_level(&level_for(&g, 3)).unwrap();
        RunMeta {
            graph: "g.graph".into(),
            min_k: 3,
            max_k: None,
            threads: 0,
            out: Some("out.txt".into()),
            backend: BackendChoice::Dense,
            scheduler: Scheduler::Steal,
        }
        .save(&dir)
        .unwrap();
        RunProgress {
            cliques_emitted: 7,
            levels_done: 2,
            wall_ms: 13,
        }
        .save(&dir)
        .unwrap();
        mgr.finish();
        assert!(latest_checkpoint::<BitSet>(&dir, 10).unwrap().is_none());
        assert!(RunMeta::load(&dir).is_err());
        assert!(RunProgress::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_progress_roundtrip_and_unknown_keys() {
        let dir = temp_ckpt_dir("progress");
        std::fs::create_dir_all(&dir).unwrap();
        let progress = RunProgress {
            cliques_emitted: 12345,
            levels_done: 9,
            wall_ms: 60_001,
        };
        progress.save(&dir).unwrap();
        assert_eq!(RunProgress::load(&dir).unwrap(), progress);
        // forward compatibility: unknown keys are skipped
        let path = dir.join(PROGRESS_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("future_field=42\n");
        std::fs::write(&path, text).unwrap();
        assert_eq!(RunProgress::load(&dir).unwrap(), progress);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_meta_roundtrip() {
        let dir = temp_ckpt_dir("meta");
        std::fs::create_dir_all(&dir).unwrap();
        let meta = RunMeta {
            graph: "data/y2h.graph".into(),
            min_k: 4,
            max_k: Some(12),
            threads: 8,
            out: Some("cliques.tsv".into()),
            backend: BackendChoice::Wah,
            scheduler: Scheduler::Steal,
        };
        meta.save(&dir).unwrap();
        assert_eq!(RunMeta::load(&dir).unwrap(), meta);
        // a meta written by an older build has no backend line → dense,
        // and no scheduler line → the barrier runtime those builds ran.
        let path = dir.join(RUN_META_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("backend=") && !l.starts_with("scheduler="))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        std::fs::write(&path, stripped).unwrap();
        let old = RunMeta::load(&dir).unwrap();
        assert_eq!(old.backend, BackendChoice::Dense);
        assert_eq!(old.scheduler, Scheduler::Barrier);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timed_policy_respects_interval() {
        let dir = temp_ckpt_dir("timed");
        let g = BitGraph::complete(10);
        let config = CheckpointConfig::every_secs(&dir, 3600);
        let mut mgr = CheckpointManager::new(config).unwrap();
        // interval far in the future: no write at the barrier
        assert!(mgr.observe_level(&level_for(&g, 2)).unwrap().is_none());
        // zero interval: always due
        let mut config = CheckpointConfig::every_secs(&dir, 0);
        config.keep = 1;
        let mut mgr = CheckpointManager::new(config).unwrap();
        assert!(mgr.observe_level(&level_for(&g, 2)).unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
