//! Paraclique extraction.
//!
//! The paper (§1): "The ability to generate cliques, paracliques and
//! other forms of densely-connected subgraphs allows us to separate
//! these causes" — noisy expression data erodes edges, so the
//! biologically meaningful unit is a clique plus the vertices *almost*
//! adjacent to it. Following the Langston-group construction: starting
//! from a (usually maximum) clique `C`, repeatedly absorb any outside
//! vertex adjacent to at least `⌈p·|C|⌉` current members.

use crate::{Clique, Vertex};
use gsb_graph::BitGraph;

/// Grow a paraclique from `seed` with proportional glom factor `p` in
/// (0, 1]: each absorbed vertex must neighbor at least `⌈p·|current|⌉`
/// current members (p = 1.0 only absorbs vertices adjacent to *all*
/// members, i.e. completes the clique to maximality). Vertices are
/// absorbed greedily, highest-connectivity first, until a fixed point.
pub fn paraclique(g: &BitGraph, seed: &[Vertex], p: f64) -> Clique {
    assert!((0.0..=1.0).contains(&p) && p > 0.0, "glom factor in (0,1]");
    let mut members: Vec<usize> = seed.iter().map(|&v| v as usize).collect();
    debug_assert!(g.is_clique(&members), "seed must be a clique");
    let mut in_set = vec![false; g.n()];
    for &v in &members {
        in_set[v] = true;
    }
    loop {
        let need = (p * members.len() as f64).ceil() as usize;
        // connectivity of every outside vertex into the current set
        let best = (0..g.n())
            .filter(|&v| !in_set[v])
            .map(|v| {
                let links = members.iter().filter(|&&m| g.has_edge(v, m)).count();
                (links, v)
            })
            .filter(|&(links, _)| links >= need)
            .max_by_key(|&(links, v)| (links, usize::MAX - v));
        match best {
            Some((_, v)) => {
                in_set[v] = true;
                members.push(v);
            }
            None => break,
        }
    }
    members.sort_unstable();
    members.iter().map(|&v| v as Vertex).collect()
}

/// Density of the subgraph induced by `vs` (1.0 for cliques).
pub fn subgraph_density(g: &BitGraph, vs: &[Vertex]) -> f64 {
    let k = vs.len();
    if k < 2 {
        return 1.0;
    }
    let mut edges = 0usize;
    for (i, &u) in vs.iter().enumerate() {
        for &v in &vs[i + 1..] {
            if g.has_edge(u as usize, v as usize) {
                edges += 1;
            }
        }
    }
    edges as f64 / (k * (k - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxclique::maximum_clique;
    use gsb_graph::generators::{planted, Module};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn p1_absorbs_only_full_neighbors() {
        // K4 plus a vertex adjacent to 3 of 4: p=1.0 leaves it out.
        let mut g = BitGraph::complete(4);
        let mut h = BitGraph::new(5);
        for (u, v) in g.edges() {
            h.add_edge(u, v);
        }
        h.add_edge(4, 0);
        h.add_edge(4, 1);
        h.add_edge(4, 2);
        g = h;
        let pc = paraclique(&g, &[0, 1, 2, 3], 1.0);
        assert_eq!(pc, vec![0, 1, 2, 3]);
        // p=0.75 lets it in
        let pc = paraclique(&g, &[0, 1, 2, 3], 0.75);
        assert_eq!(pc, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recovers_eroded_module() {
        // Plant a near-clique (density 0.9) and erode: the paraclique of
        // the maximum clique should recover most members.
        let g = planted(
            60,
            0.02,
            &[Module {
                size: 12,
                density: 0.9,
            }],
            5,
        );
        let seed = maximum_clique(&g);
        let pc = paraclique(&g, &seed, 0.8);
        assert!(pc.len() >= seed.len());
        assert!(subgraph_density(&g, &pc) >= 0.7);
    }

    #[test]
    fn paraclique_contains_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let g = planted(40, 0.1, &[Module::clique(6)], rng.gen());
            let seed = maximum_clique(&g);
            let pc = paraclique(&g, &seed, 0.9);
            for v in &seed {
                assert!(pc.contains(v));
            }
        }
    }

    #[test]
    fn density_helpers() {
        let g = BitGraph::complete(4);
        assert_eq!(subgraph_density(&g, &[0, 1, 2, 3]), 1.0);
        assert_eq!(subgraph_density(&g, &[2]), 1.0);
        let path = BitGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!((subgraph_density(&path, &[0, 1, 2]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
