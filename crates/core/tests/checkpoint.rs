//! Checkpoint/resume: interrupting an enumeration at any level barrier
//! and resuming from the persisted level must reproduce the full run.
//!
//! All on-disk state lives in a [`util::TempDirGuard`] so a failing
//! assertion cannot leak checkpoint files into the system temp dir.

mod util;

use gsb_core::sink::CollectSink;
use gsb_core::store::{read_level, write_level};
use gsb_core::{CliqueEnumerator, EnumConfig, Vertex};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use util::TempDirGuard;

fn full_run(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::default().enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

#[test]
fn interrupt_resume_at_every_level() {
    let dir = TempDirGuard::new("ckpt-every-level");
    let g = planted(36, 0.08, &[Module::clique(9), Module::clique(6)], 7);
    let expect = full_run(&g);
    let enumerator = CliqueEnumerator::default();

    // Drive the run manually; at each barrier, checkpoint, reload, and
    // race a resumed run to completion — results must always match.
    let mut sink = CollectSink::default();
    let mut stats_shim = gsb_core::EnumStats::default();
    let mut level = enumerator.init_level(&g, &mut sink, &mut stats_shim);
    let mut checkpoints = 0;
    while !level.is_empty() {
        // checkpoint here
        let path = dir.file(&format!("ckpt-{}.lvl", level.k));
        write_level(&path, &level).unwrap();
        let restored = read_level(&path).unwrap();
        assert_eq!(restored.k, level.k);
        assert_eq!(restored.n_cliques(), level.n_cliques());

        // resumed run from the restored level
        let mut resumed_sink = CollectSink::default();
        enumerator.enumerate_from_level(&g, restored, &mut resumed_sink);
        let mut combined = sink.cliques.clone();
        combined.extend(resumed_sink.cliques);
        combined.sort();
        assert_eq!(combined, expect, "checkpoint at level {}", level.k);
        checkpoints += 1;

        // advance the primary run one level
        let (next, _) = enumerator.step(&g, &level, &mut sink);
        level = next;
    }
    assert!(
        checkpoints >= 3,
        "workload too shallow: {checkpoints} levels"
    );
    // primary run, driven level by level, also matches
    let mut all = sink.cliques;
    all.sort();
    assert_eq!(all, expect);
}

#[test]
fn seeded_level_roundtrips_through_disk() {
    let dir = TempDirGuard::new("ckpt-seed");
    let g = planted(30, 0.1, &[Module::clique(8)], 2);
    let (level, _) = gsb_core::kclique::seed_level(&g, 4);
    let path = dir.file("seed.lvl");
    write_level(&path, &level).unwrap();
    let restored = read_level(&path).unwrap();
    assert_eq!(restored.k, level.k);
    assert_eq!(restored.n_sublists(), level.n_sublists());
    for (a, b) in restored.sublists.iter().zip(&level.sublists) {
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.tails, b.tails);
        assert_eq!(a.cn, b.cn);
    }
    // resuming from the seed equals a seeded full run
    let mut from_restored = CollectSink::default();
    CliqueEnumerator::default().enumerate_from_level(&g, restored, &mut from_restored);
    let mut seeded = CollectSink::default();
    CliqueEnumerator::new(EnumConfig {
        min_k: 4,
        ..Default::default()
    })
    .enumerate(&g, &mut seeded);
    // the direct seeded run also reports maximal 4-cliques found at
    // seeding; filter both down to sizes > 4 for a fair comparison
    let trim = |v: &CollectSink| {
        let mut c: Vec<_> = v.cliques.iter().filter(|c| c.len() > 4).cloned().collect();
        c.sort();
        c
    };
    assert_eq!(trim(&from_restored), trim(&seeded));
}

#[test]
fn corrupt_checkpoints_are_rejected() {
    let dir = TempDirGuard::new("ckpt-bad");
    let path = dir.file("bad.lvl");
    std::fs::write(&path, b"not a checkpoint").unwrap();
    assert!(read_level::<gsb_bitset::BitSet>(&path).is_err());
    std::fs::write(&path, 0x5343_3035_474C_5631u64.to_le_bytes()).unwrap();
    assert!(read_level::<gsb_bitset::BitSet>(&path).is_err()); // truncated after magic
}
