//! Fault-tolerance integration tests: corrupted checkpoints must fail
//! with typed errors (never a panic), the memory watchdog must degrade
//! without changing the answer, and — with the `failpoints` feature —
//! injected crashes at every site must leave the runtime resumable.
//!
//! Run the gated half with:
//! `cargo test -p gsb-core --test resilience --features failpoints`

mod util;

use gsb_core::sink::CollectSink;
use gsb_core::store::{read_level, write_level};
use gsb_core::{CliqueEnumerator, CliquePipeline, EnumStats, Vertex};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use util::TempDirGuard;

fn workload() -> BitGraph {
    planted(30, 0.1, &[Module::clique(7), Module::clique(5)], 11)
}

fn plain_sorted(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let mut sink = CollectSink::default();
    CliquePipeline::new().min_size(3).run(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

/// A real (small) checkpoint file to mutilate.
fn checkpoint_bytes(dir: &TempDirGuard) -> Vec<u8> {
    let g = planted(16, 0.15, &[Module::clique(5)], 3);
    let seq = CliqueEnumerator::default();
    let mut sink = CollectSink::default();
    let mut stats = EnumStats::default();
    let level = seq.init_level(&g, &mut sink, &mut stats);
    assert!(!level.sublists.is_empty());
    let path = dir.file("pristine.lvl");
    write_level(&path, &level).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let restored = read_level::<gsb_bitset::BitSet>(&path).unwrap();
    assert_eq!(restored.k, level.k);
    assert_eq!(restored.n_sublists(), level.n_sublists());
    bytes
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error() {
    let dir = TempDirGuard::new("res-trunc");
    let full = checkpoint_bytes(&dir);
    let path = dir.file("truncated.lvl");
    // Every proper prefix — a crash mid-write can tear the file
    // anywhere — must produce Err, never a panic and never a
    // partially-believed level.
    for len in 0..full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        assert!(
            read_level::<gsb_bitset::BitSet>(&path).is_err(),
            "truncation at byte {len}/{} was accepted",
            full.len()
        );
    }
}

#[test]
fn single_bit_corruption_is_always_detected() {
    let dir = TempDirGuard::new("res-bitflip");
    let full = checkpoint_bytes(&dir);
    let path = dir.file("flipped.lvl");
    for byte in 0..full.len() {
        for bit in 0..8 {
            let mut bad = full.clone();
            bad[byte] ^= 1 << bit;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                read_level::<gsb_bitset::BitSet>(&path).is_err(),
                "flip of bit {bit} in byte {byte} went undetected"
            );
        }
    }
}

#[test]
fn degraded_runs_match_in_core_runs_at_any_thread_count() {
    let g = workload();
    let expect = plain_sorted(&g);
    for threads in [1usize, 4] {
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .threads(threads)
            .memory_budget(64)
            .try_run(&g, &mut sink)
            .expect("degraded run");
        assert!(
            report.degraded_at.is_some(),
            "threads={threads}: tiny budget never degraded"
        );
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect, "threads={threads}");
    }
}

#[test]
fn orphaned_tmp_files_are_swept_at_manager_startup() {
    use gsb_core::checkpoint::{CheckpointConfig, CheckpointManager};
    let dir = TempDirGuard::new("res-sweep");
    // Every durable file in a checkpoint directory is written
    // tmp-then-rename, so any surviving `.tmp` is a torn write from a
    // crash and must be swept when the next manager opens the dir.
    std::fs::write(dir.file("ckpt-k00003.lvl.tmp"), b"torn").unwrap();
    std::fs::write(dir.file("run.meta.tmp"), b"torn").unwrap();
    std::fs::write(dir.file("ckpt-k00002.lvl"), b"durable").unwrap();
    let _mgr = CheckpointManager::new(CheckpointConfig::every_level(dir.path())).unwrap();
    assert!(!dir.file("ckpt-k00003.lvl.tmp").exists(), "orphan kept");
    assert!(!dir.file("run.meta.tmp").exists(), "orphan kept");
    assert!(
        dir.file("ckpt-k00002.lvl").exists(),
        "sweep must not touch durable files"
    );
}

#[test]
fn disk_budget_prunes_old_checkpoints_but_keeps_the_newest() {
    use gsb_core::checkpoint::{latest_checkpoint, CheckpointConfig, CheckpointManager};
    let dir = TempDirGuard::new("res-diskbudget");
    let g = workload();
    let seq = CliqueEnumerator::default();
    let mut sink = CollectSink::default();
    let mut stats = EnumStats::default();
    let mut level = seq.init_level(&g, &mut sink, &mut stats);
    // A 1-byte budget can never fit even one checkpoint: the manager
    // must degrade to keeping exactly the newest (the resume point),
    // never zero.
    let mut mgr =
        CheckpointManager::new(CheckpointConfig::every_level(dir.path()).disk_budget(1)).unwrap();
    let mut forced = Vec::new();
    while !level.is_empty() && forced.len() < 8 {
        mgr.force(&level).unwrap();
        forced.push(level.k);
        assert_eq!(
            mgr.written(),
            &[level.k],
            "budget must prune every checkpoint but the newest"
        );
        let lvl_files = std::fs::read_dir(dir.path())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".lvl"))
            .count();
        assert_eq!(lvl_files, 1, "stale checkpoint files survived pruning");
        let (next, _) = seq.step(&g, &level, &mut sink);
        level = next;
    }
    assert!(forced.len() >= 3, "workload too shallow: {forced:?}");
    // The survivor is the newest checkpoint and still loads.
    let (k, _) = latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n())
        .unwrap()
        .expect("the newest checkpoint must survive the budget");
    assert_eq!(Some(&k), forced.last());
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use gsb_core::checkpoint::{latest_checkpoint, CheckpointConfig};
    use gsb_core::failpoint::{FailAction, FailGuard};
    use gsb_core::sink::CliqueSink;
    use gsb_core::store::SpillConfig;
    use gsb_core::{PipelineError, Scheduler};
    use std::panic::AssertUnwindSafe;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    /// Failpoints are process-global; the harness runs tests on
    /// parallel threads, so every failpoint test takes this lock.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A sink whose collected cliques survive an unwinding panic — the
    /// in-process stand-in for the output a killed run left on disk.
    #[derive(Clone)]
    struct SharedSink(Arc<Mutex<Vec<Vec<Vertex>>>>);

    impl CliqueSink for SharedSink {
        fn maximal(&mut self, clique: &[Vertex]) {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(clique.to_vec());
        }
    }

    #[test]
    fn spill_write_failure_is_a_typed_error() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-spill");
        let _fp = FailGuard::new("spill.write", FailAction::error_always());
        let g = workload();
        let spill = SpillConfig {
            budget_bytes: 0, // force every level through the spill path
            dir: dir.path().to_path_buf(),
        };
        let err = CliqueEnumerator::default()
            .enumerate_spilled(&g, &mut CollectSink::default(), &spill)
            .unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
    }

    #[test]
    fn checkpoint_write_failure_aborts_with_store_error() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-ckpt-write");
        let _fp = FailGuard::new("checkpoint.write", FailAction::error_always());
        let g = workload();
        let err = CliquePipeline::new()
            .min_size(3)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut CollectSink::default())
            .unwrap_err();
        assert!(matches!(err, PipelineError::Store(_)), "{err}");
    }

    #[test]
    fn memory_budget_probe_failure_aborts() {
        let _serial = serialize();
        let _fp = FailGuard::new("memory.budget", FailAction::error_always());
        let g = workload();
        let err = CliquePipeline::new()
            .min_size(3)
            .memory_budget(usize::MAX)
            .try_run(&g, &mut CollectSink::default())
            .unwrap_err();
        assert!(matches!(err, PipelineError::Store(_)), "{err}");
    }

    /// The acceptance scenario: kill the run at each successive level
    /// barrier (panic fires *after* the checkpoint is on disk), resume
    /// from the surviving files, and require the union of pre-crash and
    /// post-resume output to equal an uninterrupted run — at every
    /// single barrier.
    #[test]
    fn crash_at_every_barrier_resumes_to_identical_output() {
        let _serial = serialize();
        let g = workload();
        let expect = plain_sorted(&g);
        for (crashes, barrier) in (0..32).enumerate() {
            let dir = TempDirGuard::new("fp-barrier");
            let store = Arc::new(Mutex::new(Vec::new()));
            let mut sink = SharedSink(store.clone());
            let pipe = CliquePipeline::new()
                .min_size(3)
                .checkpoint(CheckpointConfig::every_level(dir.path()));
            let crashed = {
                let _fp = FailGuard::new("pipeline.barrier", FailAction::panic_after(barrier));
                std::panic::catch_unwind(AssertUnwindSafe(|| pipe.try_run(&g, &mut sink))).is_err()
            };
            if !crashed {
                // The run outlived the armed barrier index: every
                // barrier has now been crash-tested.
                assert!(crashes >= 2, "workload too shallow: {crashes} barriers");
                let mut got = store
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone();
                got.sort();
                assert_eq!(got, expect, "uncrashed control run diverged");
                return;
            }
            let (k, _) = latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n())
                .expect("checkpoint dir readable")
                .expect("crash left no checkpoint");
            let mut post = CollectSink::default();
            let report = pipe.resume(&g, &mut post).expect("resume");
            assert_eq!(report.resumed_from, Some(k));
            assert!(post.cliques.iter().all(|c| c.len() > k));
            let pre = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            let mut combined: Vec<Vec<Vertex>> = pre
                .into_iter()
                .filter(|c| c.len() <= k)
                .chain(post.cliques)
                .collect();
            combined.sort();
            assert_eq!(combined, expect, "barrier {barrier} (checkpoint level {k})");
        }
        panic!("run never completed: more than 32 barriers?");
    }

    #[test]
    fn worker_panic_is_retried_and_output_is_unchanged() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-worker-once");
        let g = workload();
        let expect = plain_sorted(&g);
        let _fp = FailGuard::new("parallel.worker", FailAction::panic_once());
        let mut sink = CollectSink::default();
        // Pinned to the barrier scheduler: its retry unit is a whole
        // round, observable via `retried_levels`. The steal runtime's
        // finer-grained retry is covered by the counterpart below.
        let report = CliquePipeline::new()
            .min_size(3)
            .threads(4)
            .scheduler(Scheduler::Barrier)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut sink)
            .expect("transient worker panic must not fail the run");
        let stats = report.parallel_stats.expect("parallel run");
        assert!(
            !stats.retried_levels.is_empty(),
            "panic was injected but no level was retried"
        );
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn worker_panic_under_steal_is_retried_per_task() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-worker-once-steal");
        let g = workload();
        let expect = plain_sorted(&g);
        let _fp = FailGuard::new("parallel.worker", FailAction::panic_once());
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .threads(4)
            .scheduler(Scheduler::Steal)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut sink)
            .expect("transient worker panic must not fail the run");
        let stats = report.parallel_stats.expect("parallel run");
        // The steal runtime retries the poisoned task inline instead
        // of replaying the whole level: the task counter moves, the
        // level counter stays empty.
        assert!(
            stats.retried_tasks > 0,
            "panic was injected but no task was retried"
        );
        assert!(
            stats.retried_levels.is_empty(),
            "a single transient panic must not cost a level replay"
        );
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn persistent_worker_panic_fails_but_leaves_a_checkpoint() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-worker-always");
        let g = workload();
        let _fp = FailGuard::new("parallel.worker", FailAction::panic_always());
        let err = CliquePipeline::new()
            .min_size(3)
            .threads(4)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut CollectSink::default())
            .unwrap_err();
        let PipelineError::Workers { k, error } = err else {
            panic!("expected Workers error, got: {err}");
        };
        assert!(!error.failures.is_empty());
        // The abort wrote a final checkpoint of the failed level: the
        // run is resumable once the fault is gone.
        let (k_ckpt, _) = latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n())
            .expect("checkpoint dir readable")
            .expect("no final checkpoint after worker abort");
        assert_eq!(k_ckpt, k);
    }

    /// Every fallible write site: one transient error must be absorbed
    /// by the backoff retry with the output unchanged; a persistent
    /// error must exhaust the retry budget and surface as a typed
    /// storage error — never a panic, never silent corruption.
    #[test]
    fn every_write_site_retries_transient_errors_and_types_persistent_ones() {
        let _serial = serialize();
        let g = workload();
        let expect = plain_sorted(&g);
        let run = |site: &str| -> Result<Vec<Vec<Vertex>>, PipelineError> {
            let dir = TempDirGuard::new("fp-io-site");
            let mut sink = CollectSink::default();
            if site == "spill.write" {
                let spill = SpillConfig {
                    budget_bytes: 0, // force every level through the spill path
                    dir: dir.path().to_path_buf(),
                };
                CliqueEnumerator::default()
                    .enumerate_spilled(&g, &mut sink, &spill)
                    .map_err(PipelineError::Store)?;
            } else {
                CliquePipeline::new()
                    .min_size(3)
                    .checkpoint(CheckpointConfig::every_level(dir.path()))
                    .try_run(&g, &mut sink)?;
            }
            let mut got = sink.cliques;
            got.sort();
            Ok(got)
        };
        for site in ["spill.write", "checkpoint.write", "checkpoint.meta"] {
            let retries_before = gsb_core::supervise::io_retries();
            let got = {
                let _fp = FailGuard::new(site, FailAction::error_once());
                run(site).unwrap_or_else(|e| panic!("{site}: transient error not retried: {e}"))
            };
            assert_eq!(got, expect, "{site}: output changed after a retried error");
            assert!(
                gsb_core::supervise::io_retries() > retries_before,
                "{site}: the retry counter never moved"
            );
            let err = {
                let _fp = FailGuard::new(site, FailAction::error_always());
                run(site).expect_err("a persistent write failure cannot succeed")
            };
            assert!(matches!(err, PipelineError::Store(_)), "{site}: {err}");
            assert!(err.to_string().contains("failpoint"), "{site}: {err}");
        }
    }

    /// The sub-list whose solo re-enumeration contributes the most
    /// maximal cliques — a victim that provably owns descendants.
    fn richest_sublist(
        g: &BitGraph,
        seq: &CliqueEnumerator,
    ) -> gsb_core::SubList<gsb_bitset::BitSet> {
        let mut stats = EnumStats::default();
        let init = seq.init_level(g, &mut CollectSink::default(), &mut stats);
        init.sublists
            .iter()
            .max_by_key(|sl| {
                let mut sink = CollectSink::default();
                seq.enumerate_from_level(
                    g,
                    gsb_core::Level {
                        k: init.k,
                        sublists: vec![(*sl).clone()],
                    },
                    &mut sink,
                );
                sink.cliques.len()
            })
            .expect("workload has sub-lists")
            .clone()
    }

    fn prefix_tag(sl: &gsb_core::SubList<gsb_bitset::BitSet>) -> String {
        sl.prefix
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }

    /// The full quarantine round-trip: a deterministically poisoned
    /// sub-list is skipped (the run completes), logged to the sidecar,
    /// surfaced in the stats, and re-enumerating exactly the recorded
    /// prefix recovers precisely the missing cliques.
    #[test]
    fn quarantined_sublist_is_skipped_logged_and_recoverable() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-quarantine");
        let g = workload();
        let expect = plain_sorted(&g);
        let seq = CliqueEnumerator::default();
        let victim = richest_sublist(&g, &seq);
        let tag = prefix_tag(&victim);
        let qpath = dir.file("quarantine.jsonl");
        let mut sink = CollectSink::default();
        let report = {
            let _fp = FailGuard::tagged("parallel.sublist", &tag, FailAction::panic_always());
            CliquePipeline::new()
                .min_size(3)
                .threads(4)
                .checkpoint(CheckpointConfig::every_level(dir.path()))
                .quarantine(qpath.clone())
                .try_run(&g, &mut sink)
                .expect("quarantine mode must complete despite the poison sub-list")
        };
        let stats = report.parallel_stats.expect("parallel run");
        assert_eq!(stats.quarantined, 1, "exactly the victim is quarantined");
        let entries = gsb_core::quarantine::load_entries(&qpath).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].prefix, victim.prefix);
        assert!(
            entries[0].reason.contains("failpoint"),
            "reason must carry the panic message: {:?}",
            entries[0].reason
        );
        let mut got = sink.cliques;
        got.sort();
        assert_ne!(
            got, expect,
            "the victim owned descendants; some must be missing"
        );
        // Degraded-exact: everything emitted is a real maximal clique.
        assert!(
            got.iter().all(|c| expect.binary_search(c).is_ok()),
            "quarantine run emitted a clique the clean run does not have"
        );
        // Re-enumerate exactly the recorded work unit; no dedup below,
        // so the recovery must also not double-emit anything.
        let mut recovered = CollectSink::default();
        seq.enumerate_from_level(
            &g,
            gsb_core::Level {
                k: entries[0].k as usize,
                sublists: entries
                    .iter()
                    .map(|e| e.to_sublist::<gsb_bitset::BitSet>(&g))
                    .collect(),
            },
            &mut recovered,
        );
        assert!(!recovered.cliques.is_empty());
        got.extend(recovered.cliques);
        got.sort();
        assert_eq!(
            got, expect,
            "re-enumerating the quarantined prefix must recover exactly the loss"
        );
    }

    /// A worker that stops making progress (here: wedged by an
    /// injected stall far beyond the deadline) is detected via missed
    /// heartbeats, its sub-list quarantined, and the run completes.
    #[test]
    fn stuck_worker_misses_its_deadline_and_is_quarantined() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-deadline");
        let g = workload();
        let expect = plain_sorted(&g);
        let seq = CliqueEnumerator::default();
        let victim = richest_sublist(&g, &seq);
        let tag = prefix_tag(&victim);
        let qpath = dir.file("quarantine.jsonl");
        let mut sink = CollectSink::default();
        let report = {
            let _fp = FailGuard::tagged(
                "parallel.sublist",
                &tag,
                FailAction::Delay {
                    skip: 0,
                    times: u32::MAX,
                    ms: 2_000,
                },
            );
            CliquePipeline::new()
                .min_size(3)
                .threads(4)
                .checkpoint(CheckpointConfig::every_level(dir.path()))
                .quarantine(qpath.clone())
                .worker_deadline(std::time::Duration::from_millis(150))
                .try_run(&g, &mut sink)
                .expect("a wedged sub-list must be quarantined, not hang the run")
        };
        let stats = report.parallel_stats.expect("parallel run");
        assert_eq!(stats.quarantined, 1);
        let entries = gsb_core::quarantine::load_entries(&qpath).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].prefix, victim.prefix);
        assert!(
            entries[0].reason.contains("deadline"),
            "reason must name the missed deadline: {:?}",
            entries[0].reason
        );
        // Degraded-exact, and the loss is recoverable as usual.
        let mut got = sink.cliques;
        let mut recovered = CollectSink::default();
        seq.enumerate_from_level(
            &g,
            gsb_core::Level {
                k: entries[0].k as usize,
                sublists: vec![entries[0].to_sublist::<gsb_bitset::BitSet>(&g)],
            },
            &mut recovered,
        );
        got.extend(recovered.cliques);
        got.sort();
        assert_eq!(got, expect);
    }

    /// Graceful shutdown: a requested signal halts the run at the next
    /// barrier with `PipelineError::Interrupted`, a forced checkpoint,
    /// and the stop cause on record — and resuming completes the run
    /// to byte-identical output, on both drivers.
    #[test]
    fn shutdown_request_halts_with_checkpoint_and_resumes_identically() {
        let _serial = serialize();
        use gsb_core::checkpoint::{load_stop_cause, StopCause};
        use gsb_core::ShutdownToken;
        let g = workload();
        let expect = plain_sorted(&g);
        for threads in [1usize, 4] {
            let dir = TempDirGuard::new("fp-shutdown");
            let token = ShutdownToken::new();
            token.request(2); // SIGINT, before the first barrier
            let mut pre = CollectSink::default();
            let err = CliquePipeline::new()
                .min_size(3)
                .threads(threads)
                .checkpoint(CheckpointConfig::every_level(dir.path()))
                .shutdown(token)
                .try_run(&g, &mut pre)
                .expect_err("a requested shutdown must interrupt the run");
            assert!(
                matches!(err, PipelineError::Interrupted { signal: 2 }),
                "threads={threads}: {err}"
            );
            assert_eq!(
                load_stop_cause(dir.path()),
                Some(StopCause::Signal(2)),
                "threads={threads}: stop cause not on record"
            );
            // The halt forced a final checkpoint: the dir is
            // immediately resume-ready.
            let (k, _) = latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n())
                .expect("checkpoint dir readable")
                .expect("graceful shutdown must leave a checkpoint");
            let mut post = CollectSink::default();
            let report = CliquePipeline::new()
                .min_size(3)
                .threads(threads)
                .checkpoint(CheckpointConfig::every_level(dir.path()))
                .resume(&g, &mut post)
                .expect("resume after graceful shutdown");
            assert_eq!(report.resumed_from, Some(k));
            let mut combined: Vec<Vec<Vertex>> = pre
                .cliques
                .into_iter()
                .filter(|c| c.len() <= k)
                .chain(post.cliques)
                .collect();
            combined.sort();
            assert_eq!(combined, expect, "threads={threads}");
        }
    }
}
