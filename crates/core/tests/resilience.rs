//! Fault-tolerance integration tests: corrupted checkpoints must fail
//! with typed errors (never a panic), the memory watchdog must degrade
//! without changing the answer, and — with the `failpoints` feature —
//! injected crashes at every site must leave the runtime resumable.
//!
//! Run the gated half with:
//! `cargo test -p gsb-core --test resilience --features failpoints`

mod util;

use gsb_core::sink::CollectSink;
use gsb_core::store::{read_level, write_level};
use gsb_core::{CliqueEnumerator, CliquePipeline, EnumStats, Vertex};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use util::TempDirGuard;

fn workload() -> BitGraph {
    planted(30, 0.1, &[Module::clique(7), Module::clique(5)], 11)
}

fn plain_sorted(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let mut sink = CollectSink::default();
    CliquePipeline::new().min_size(3).run(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

/// A real (small) checkpoint file to mutilate.
fn checkpoint_bytes(dir: &TempDirGuard) -> Vec<u8> {
    let g = planted(16, 0.15, &[Module::clique(5)], 3);
    let seq = CliqueEnumerator::default();
    let mut sink = CollectSink::default();
    let mut stats = EnumStats::default();
    let level = seq.init_level(&g, &mut sink, &mut stats);
    assert!(!level.sublists.is_empty());
    let path = dir.file("pristine.lvl");
    write_level(&path, &level).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let restored = read_level::<gsb_bitset::BitSet>(&path).unwrap();
    assert_eq!(restored.k, level.k);
    assert_eq!(restored.n_sublists(), level.n_sublists());
    bytes
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error() {
    let dir = TempDirGuard::new("res-trunc");
    let full = checkpoint_bytes(&dir);
    let path = dir.file("truncated.lvl");
    // Every proper prefix — a crash mid-write can tear the file
    // anywhere — must produce Err, never a panic and never a
    // partially-believed level.
    for len in 0..full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        assert!(
            read_level::<gsb_bitset::BitSet>(&path).is_err(),
            "truncation at byte {len}/{} was accepted",
            full.len()
        );
    }
}

#[test]
fn single_bit_corruption_is_always_detected() {
    let dir = TempDirGuard::new("res-bitflip");
    let full = checkpoint_bytes(&dir);
    let path = dir.file("flipped.lvl");
    for byte in 0..full.len() {
        for bit in 0..8 {
            let mut bad = full.clone();
            bad[byte] ^= 1 << bit;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                read_level::<gsb_bitset::BitSet>(&path).is_err(),
                "flip of bit {bit} in byte {byte} went undetected"
            );
        }
    }
}

#[test]
fn degraded_runs_match_in_core_runs_at_any_thread_count() {
    let g = workload();
    let expect = plain_sorted(&g);
    for threads in [1usize, 4] {
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .threads(threads)
            .memory_budget(64)
            .try_run(&g, &mut sink)
            .expect("degraded run");
        assert!(
            report.degraded_at.is_some(),
            "threads={threads}: tiny budget never degraded"
        );
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect, "threads={threads}");
    }
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use gsb_core::checkpoint::{latest_checkpoint, CheckpointConfig};
    use gsb_core::failpoint::{FailAction, FailGuard};
    use gsb_core::sink::CliqueSink;
    use gsb_core::store::SpillConfig;
    use gsb_core::PipelineError;
    use std::panic::AssertUnwindSafe;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    /// Failpoints are process-global; the harness runs tests on
    /// parallel threads, so every failpoint test takes this lock.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A sink whose collected cliques survive an unwinding panic — the
    /// in-process stand-in for the output a killed run left on disk.
    #[derive(Clone)]
    struct SharedSink(Arc<Mutex<Vec<Vec<Vertex>>>>);

    impl CliqueSink for SharedSink {
        fn maximal(&mut self, clique: &[Vertex]) {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(clique.to_vec());
        }
    }

    #[test]
    fn spill_write_failure_is_a_typed_error() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-spill");
        let _fp = FailGuard::new("spill.write", FailAction::error_always());
        let g = workload();
        let spill = SpillConfig {
            budget_bytes: 0, // force every level through the spill path
            dir: dir.path().to_path_buf(),
        };
        let err = CliqueEnumerator::default()
            .enumerate_spilled(&g, &mut CollectSink::default(), &spill)
            .unwrap_err();
        assert!(err.to_string().contains("failpoint"), "{err}");
    }

    #[test]
    fn checkpoint_write_failure_aborts_with_store_error() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-ckpt-write");
        let _fp = FailGuard::new("checkpoint.write", FailAction::error_always());
        let g = workload();
        let err = CliquePipeline::new()
            .min_size(3)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut CollectSink::default())
            .unwrap_err();
        assert!(matches!(err, PipelineError::Store(_)), "{err}");
    }

    #[test]
    fn memory_budget_probe_failure_aborts() {
        let _serial = serialize();
        let _fp = FailGuard::new("memory.budget", FailAction::error_always());
        let g = workload();
        let err = CliquePipeline::new()
            .min_size(3)
            .memory_budget(usize::MAX)
            .try_run(&g, &mut CollectSink::default())
            .unwrap_err();
        assert!(matches!(err, PipelineError::Store(_)), "{err}");
    }

    /// The acceptance scenario: kill the run at each successive level
    /// barrier (panic fires *after* the checkpoint is on disk), resume
    /// from the surviving files, and require the union of pre-crash and
    /// post-resume output to equal an uninterrupted run — at every
    /// single barrier.
    #[test]
    fn crash_at_every_barrier_resumes_to_identical_output() {
        let _serial = serialize();
        let g = workload();
        let expect = plain_sorted(&g);
        let mut crashes = 0u32;
        for barrier in 0..32 {
            let dir = TempDirGuard::new("fp-barrier");
            let store = Arc::new(Mutex::new(Vec::new()));
            let mut sink = SharedSink(store.clone());
            let pipe = CliquePipeline::new()
                .min_size(3)
                .checkpoint(CheckpointConfig::every_level(dir.path()));
            let crashed = {
                let _fp = FailGuard::new("pipeline.barrier", FailAction::panic_after(barrier));
                std::panic::catch_unwind(AssertUnwindSafe(|| pipe.try_run(&g, &mut sink))).is_err()
            };
            if !crashed {
                // The run outlived the armed barrier index: every
                // barrier has now been crash-tested.
                assert!(crashes >= 2, "workload too shallow: {crashes} barriers");
                let mut got = store
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone();
                got.sort();
                assert_eq!(got, expect, "uncrashed control run diverged");
                return;
            }
            crashes += 1;
            let (k, _) = latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n())
                .expect("checkpoint dir readable")
                .expect("crash left no checkpoint");
            let mut post = CollectSink::default();
            let report = pipe.resume(&g, &mut post).expect("resume");
            assert_eq!(report.resumed_from, Some(k));
            assert!(post.cliques.iter().all(|c| c.len() > k));
            let pre = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone();
            let mut combined: Vec<Vec<Vertex>> = pre
                .into_iter()
                .filter(|c| c.len() <= k)
                .chain(post.cliques)
                .collect();
            combined.sort();
            assert_eq!(combined, expect, "barrier {barrier} (checkpoint level {k})");
        }
        panic!("run never completed: more than 32 barriers?");
    }

    #[test]
    fn worker_panic_is_retried_and_output_is_unchanged() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-worker-once");
        let g = workload();
        let expect = plain_sorted(&g);
        let _fp = FailGuard::new("parallel.worker", FailAction::panic_once());
        let mut sink = CollectSink::default();
        let report = CliquePipeline::new()
            .min_size(3)
            .threads(4)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut sink)
            .expect("transient worker panic must not fail the run");
        let stats = report.parallel_stats.expect("parallel run");
        assert!(
            !stats.retried_levels.is_empty(),
            "panic was injected but no level was retried"
        );
        let mut got = sink.cliques;
        got.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn persistent_worker_panic_fails_but_leaves_a_checkpoint() {
        let _serial = serialize();
        let dir = TempDirGuard::new("fp-worker-always");
        let g = workload();
        let _fp = FailGuard::new("parallel.worker", FailAction::panic_always());
        let err = CliquePipeline::new()
            .min_size(3)
            .threads(4)
            .checkpoint(CheckpointConfig::every_level(dir.path()))
            .try_run(&g, &mut CollectSink::default())
            .unwrap_err();
        let PipelineError::Workers { k, error } = err else {
            panic!("expected Workers error, got: {err}");
        };
        assert!(!error.failures.is_empty());
        // The abort wrote a final checkpoint of the failed level: the
        // run is resumable once the fault is gone.
        let (k_ckpt, _) = latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n())
            .expect("checkpoint dir readable")
            .expect("no final checkpoint after worker abort");
        assert_eq!(k_ckpt, k);
    }
}
