//! Backend equivalence matrix: the dense, WAH-compressed, and hybrid
//! representations must be observationally identical — same canonical
//! maximal-clique sets as Bron–Kerbosch and identical per-level counts
//! — across a large randomized graph family, and a WAH level must
//! survive a checkpoint round-trip byte-identically.

use gsb_bitset::{BitSet, HybridSet, NeighborSet, WahBitSet};
use gsb_core::bk::base_bk_sorted;
use gsb_core::sink::CollectSink;
use gsb_core::store::{read_level, write_level};
use gsb_core::{CliqueEnumerator, EnumConfig, EnumStats, InMemoryLevel, Vertex};
use gsb_graph::generators::{gnp, planted, Module};
use gsb_graph::BitGraph;

/// Canonical clique set (each clique sorted, set sorted) plus the
/// per-level `(k, N[k], M[k], maximal)` counts for one backend.
fn run_backend<S: NeighborSet>(
    g: &BitGraph,
) -> (Vec<Vec<Vertex>>, Vec<(usize, usize, usize, usize)>) {
    let mut sink = CollectSink::default();
    let stats: EnumStats =
        CliqueEnumerator::<S, InMemoryLevel<S>>::with_backend(EnumConfig::default(), ())
            .enumerate(g, &mut sink);
    let mut cliques = sink.cliques;
    for c in &mut cliques {
        c.sort_unstable();
    }
    cliques.sort();
    let levels = stats
        .levels
        .iter()
        .map(|l| (l.k, l.sublists, l.candidates, l.maximal_found))
        .collect();
    (cliques, levels)
}

/// Render the canonical set in the CLI's `size\tv1 v2 ...` text form so
/// the cross-backend comparison is literally byte-for-byte.
fn render(cliques: &[Vec<Vertex>]) -> String {
    let mut out = String::new();
    for c in cliques {
        let text: Vec<String> = c.iter().map(u32::to_string).collect();
        out.push_str(&format!("{}\t{}\n", c.len(), text.join(" ")));
    }
    out
}

#[test]
fn all_backends_match_bron_kerbosch_on_200_random_graphs() {
    for seed in 0..200u64 {
        // Sweep sizes and densities deterministically with the seed.
        let n = 12 + (seed as usize % 5) * 4; // 12..=28
        let p = 0.15 + 0.05 * (seed % 7) as f64; // 0.15..=0.45
        let g = gnp(n, p, seed);

        let mut expect: Vec<Vec<Vertex>> = base_bk_sorted(&g)
            .into_iter()
            .filter(|c| c.len() >= 3)
            .collect();
        expect.sort();

        let (dense, dense_levels) = run_backend::<BitSet>(&g);
        let (wah, wah_levels) = run_backend::<WahBitSet>(&g);
        let (hybrid, hybrid_levels) = run_backend::<HybridSet>(&g);

        assert_eq!(dense, expect, "dense vs BK, seed {seed} (n={n}, p={p})");
        assert_eq!(render(&wah), render(&dense), "wah vs dense, seed {seed}");
        assert_eq!(
            render(&hybrid),
            render(&dense),
            "hybrid vs dense, seed {seed}"
        );
        assert_eq!(wah_levels, dense_levels, "wah level counts, seed {seed}");
        assert_eq!(
            hybrid_levels, dense_levels,
            "hybrid level counts, seed {seed}"
        );
    }
}

#[test]
fn wah_checkpoint_roundtrip_is_byte_identical_and_resumable() {
    let g = planted(40, 0.06, &[Module::clique(9), Module::clique(7)], 13);
    let config = EnumConfig::default();

    // Ground truth: a straight-through WAH run.
    let (expect, _) = run_backend::<WahBitSet>(&g);

    // Step a WAH run to the level-4 barrier.
    let seq = CliqueEnumerator::<WahBitSet, InMemoryLevel<WahBitSet>>::with_backend(config, ());
    let mut pre = CollectSink::default();
    let mut stats = EnumStats::default();
    let mut level = seq.init_level(&g, &mut pre, &mut stats);
    while level.k < 4 && !level.sublists.is_empty() {
        let (next, _) = seq.step(&g, &level, &mut pre);
        level = next;
    }

    // Byte-identical round-trip: write, read back, write again — the
    // two serializations must match exactly, and the reloaded level
    // must describe the same sub-lists.
    let dir = std::env::temp_dir().join(format!("gsb-backend-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("wah-a.lvl");
    let path_b = dir.join("wah-b.lvl");
    write_level(&path_a, &level).unwrap();
    let reloaded = read_level::<WahBitSet>(&path_a).unwrap();
    assert_eq!(reloaded.k, level.k);
    assert_eq!(reloaded.sublists.len(), level.sublists.len());
    for (a, b) in reloaded.sublists.iter().zip(&level.sublists) {
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.tails, b.tails);
        assert_eq!(a.cn, b.cn);
    }
    write_level(&path_b, &reloaded).unwrap();
    assert_eq!(
        std::fs::read(&path_a).unwrap(),
        std::fs::read(&path_b).unwrap(),
        "re-serializing the reloaded WAH level changed its bytes"
    );

    // A dense read of the WAH checkpoint must be rejected, not decoded.
    assert!(matches!(
        read_level::<BitSet>(&path_a),
        Err(gsb_core::StoreError::BackendMismatch { .. })
    ));

    // Resume from the reloaded level and check the union equals the
    // straight-through run.
    let mut post = CollectSink::default();
    seq.try_enumerate_from_level(&g, reloaded, &mut post)
        .unwrap();
    let mut got = pre.cliques;
    got.extend(post.cliques);
    for c in &mut got {
        c.sort_unstable();
    }
    got.sort();
    got.dedup();
    assert_eq!(got, expect);

    let _ = std::fs::remove_dir_all(&dir);
}
