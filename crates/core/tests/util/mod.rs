//! Shared integration-test helpers.
//!
//! Each integration-test binary compiles its own copy and may use only
//! part of the surface, so unused-item lints are off.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static SEQ: AtomicUsize = AtomicUsize::new(0);

/// A per-test scratch directory that is removed on drop, even when the
/// test panics partway through — temp files never outlive the test.
pub struct TempDirGuard {
    path: PathBuf,
}

impl TempDirGuard {
    pub fn new(tag: &str) -> Self {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("gsb-test-{tag}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test temp dir");
        TempDirGuard { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the guarded directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
