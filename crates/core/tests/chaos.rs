//! Deterministic chaos harness: sweep hundreds of seeded fault
//! schedules ([`gsb_core::failpoint::chaos_schedule`]) over a
//! checkpointed enumeration and require every single one to converge
//! to output identical to a fault-free run.
//!
//! Each schedule arms a randomized mix of panics, injected I/O errors,
//! and stalls across every production failpoint site. The harness
//! plays the operator: run, and whenever the run dies (unwound panic
//! or a typed error), reconcile the collected output against the
//! newest checkpoint exactly the way `gsb resume` reconciles its
//! output file, then resume — or restart from scratch when the crash
//! predates the first checkpoint. Schedules bound every action's
//! repeat count, so the loop always converges.
//!
//! Run with:
//! `cargo test -p gsb-core --test chaos --features failpoints`

#![cfg(feature = "failpoints")]

mod util;

use gsb_core::checkpoint::{latest_checkpoint, CheckpointConfig};
use gsb_core::failpoint::{self, chaos_schedule};
use gsb_core::sink::{CliqueSink, CollectSink};
use gsb_core::{CliquePipeline, Scheduler, Vertex};
use gsb_graph::generators::{planted, Module};
use gsb_graph::BitGraph;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use util::TempDirGuard;

/// How many seeded schedules the sweep covers (the acceptance floor is
/// 200; a few extra cost little).
const SCHEDULES: u64 = 224;

/// Attempt ceiling per schedule: every failed attempt consumes at
/// least one armed hit, and a schedule arms at most 6 sites x 2 hits,
/// so a convergent run needs at most 13 attempts. Hitting this bound
/// means the runtime looped without making progress.
const MAX_ATTEMPTS: u32 = 20;

/// Which parallel runtime the sweep drives, from `GSB_CHAOS_SCHEDULER`
/// (`barrier` | `steal`; default steal, matching the production
/// default). CI runs the sweep once per value.
fn sweep_scheduler() -> Scheduler {
    match std::env::var("GSB_CHAOS_SCHEDULER") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e: String| panic!("GSB_CHAOS_SCHEDULER: {e}")),
        Err(_) => Scheduler::Steal,
    }
}

fn workload() -> BitGraph {
    // Slightly bigger than the resilience-suite workload: more levels
    // means more barriers, checkpoints, and rounds for a schedule to
    // bite on, while a ~50-vertex graph keeps 200+ sweeps fast.
    planted(48, 0.12, &[Module::clique(8), Module::clique(6)], 11)
}

fn plain_sorted(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let mut sink = CollectSink::default();
    CliquePipeline::new().min_size(3).run(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

/// A sink whose collected cliques survive an unwinding panic — the
/// in-process stand-in for the durable output file a killed run
/// leaves behind.
#[derive(Clone)]
struct SharedSink(Arc<Mutex<Vec<Vec<Vertex>>>>);

impl CliqueSink for SharedSink {
    fn maximal(&mut self, clique: &[Vertex]) {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(clique.to_vec());
    }
}

/// Drive one seeded schedule to completion; returns how many attempts
/// died before the run converged.
fn run_schedule(seed: u64, g: &BitGraph, expect: &[Vec<Vertex>]) -> u32 {
    failpoint::reset_all();
    let schedule = chaos_schedule(seed);
    for &(site, action) in &schedule {
        failpoint::configure(site, action);
    }
    let dir = TempDirGuard::new("chaos");
    // Alternate drivers so the sweep covers both the sequential and
    // the supervised parallel barrier paths.
    let threads = if seed.is_multiple_of(2) { 1 } else { 4 };
    // An unreachable memory budget keeps the budget probe (and its
    // failpoint site) on the hot path without ever degrading.
    let pipe = CliquePipeline::new()
        .min_size(3)
        .threads(threads)
        .scheduler(sweep_scheduler())
        .skip_exact_bound()
        .memory_budget(usize::MAX)
        .checkpoint(CheckpointConfig::every_level(dir.path()));
    // The model of the durable output file `gsb resume` reconciles.
    let mut output: Vec<Vec<Vertex>> = Vec::new();
    let mut resume = false;
    let mut failures = 0u32;
    for _attempt in 0..MAX_ATTEMPTS {
        let store = Arc::new(Mutex::new(Vec::new()));
        let mut sink = SharedSink(store.clone());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if resume {
                pipe.resume(g, &mut sink)
            } else {
                pipe.try_run(g, &mut sink)
            }
        }));
        let collected: Vec<Vec<Vertex>> = std::mem::take(
            &mut *store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        match result {
            Ok(Ok(_report)) => {
                output.extend(collected);
                output.sort();
                assert_eq!(
                    output, expect,
                    "seed {seed} (schedule {schedule:?}, threads {threads}) \
                     diverged after {failures} failure(s)"
                );
                failpoint::reset_all();
                return failures;
            }
            Ok(Err(_)) | Err(_) => {
                failures += 1;
                // Reconcile exactly like the CLI: everything at or
                // below the checkpoint cut is durable, everything
                // above it will be re-emitted by the resumed run.
                match latest_checkpoint::<gsb_bitset::BitSet>(dir.path(), g.n()) {
                    Ok(Some((k, _))) => {
                        output.extend(collected);
                        output.retain(|c| c.len() <= k);
                        resume = true;
                    }
                    // Died before the first checkpoint (or every
                    // candidate is unusable): nothing durable exists,
                    // start over from scratch.
                    Ok(None) | Err(_) => {
                        output.clear();
                        resume = false;
                    }
                }
            }
        }
    }
    panic!(
        "seed {seed}: no convergence after {MAX_ATTEMPTS} attempts \
         (schedule {schedule:?}, threads {threads})"
    );
}

/// The tentpole acceptance sweep: 200+ seeded fault schedules, every
/// one converging to byte-identical output. A single test function
/// (failpoints are process-global) in its own binary, so it cannot
/// race the resilience suite.
#[test]
fn every_seeded_fault_schedule_converges_to_identical_output() {
    let g = workload();
    let expect = plain_sorted(&g);
    assert!(expect.len() > 20, "workload too trivial to stress");
    let mut total_failures = 0u32;
    let mut disturbed_seeds = 0u32;
    for seed in 0..SCHEDULES {
        let failures = run_schedule(seed, &g, &expect);
        total_failures += failures;
        if failures > 0 {
            disturbed_seeds += 1;
        }
    }
    // The sweep must actually exercise the recovery machinery, not
    // vacuously pass because no armed site ever fired.
    assert!(
        u64::from(disturbed_seeds) >= SCHEDULES / 8,
        "only {disturbed_seeds}/{SCHEDULES} schedules caused a failure \
         ({total_failures} total) — the harness is not biting"
    );
}
