//! Property tests: the Clique Enumerator, Kose RAM, and both
//! Bron–Kerbosch variants must agree with each other and with a
//! brute-force oracle on arbitrary graphs; seeding and size windows must
//! behave like post-filters; parallel must equal sequential.

use gsb_core::bk::{base_bk_sorted, improved_bk_sorted};
use gsb_core::kclique::enumerate_k_cliques;
use gsb_core::kose::kose_ram_sorted;
use gsb_core::maxclique::maximum_clique_size;
use gsb_core::sink::CollectSink;
use gsb_core::{CliqueEnumerator, EnumConfig, ParallelConfig, ParallelEnumerator, Vertex};
use gsb_graph::BitGraph;
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 14;

fn arb_graph() -> impl Strategy<Value = BitGraph> {
    prop::collection::vec(any::<bool>(), N * (N - 1) / 2).prop_map(|bits| {
        let mut g = BitGraph::new(N);
        let mut it = bits.into_iter();
        for u in 0..N {
            for v in u + 1..N {
                if it.next().unwrap() {
                    g.add_edge(u, v);
                }
            }
        }
        g
    })
}

/// Brute-force maximal cliques by subset scan (n <= 20).
fn oracle_maximal(g: &BitGraph) -> Vec<Vec<Vertex>> {
    let n = g.n();
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let vs: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if g.is_clique(&vs) && g.is_maximal_clique(&vs) {
            out.push(vs.iter().map(|&v| v as Vertex).collect());
        }
    }
    out.sort();
    out
}

fn ce_sorted(g: &BitGraph, config: EnumConfig) -> Vec<Vec<Vertex>> {
    let mut sink = CollectSink::default();
    CliqueEnumerator::new(config).enumerate(g, &mut sink);
    let mut v = sink.cliques;
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_five_algorithms_agree_with_oracle(g in arb_graph()) {
        let oracle = oracle_maximal(&g);
        prop_assert_eq!(&base_bk_sorted(&g), &oracle);
        prop_assert_eq!(&improved_bk_sorted(&g), &oracle);
        prop_assert_eq!(&kose_ram_sorted(&g, 1), &oracle);
        let ce = ce_sorted(&g, EnumConfig { min_k: 1, ..Default::default() });
        prop_assert_eq!(&ce, &oracle);
        let garc = Arc::new(g.clone());
        let mut sink = CollectSink::default();
        ParallelEnumerator::new(ParallelConfig {
            threads: 3,
            enum_config: EnumConfig { min_k: 1, ..Default::default() },
            ..Default::default()
        })
        .enumerate(&garc, &mut sink);
        let mut par = sink.cliques;
        par.sort();
        prop_assert_eq!(&par, &oracle);
    }

    #[test]
    fn seeding_is_a_post_filter(g in arb_graph(), min_k in 4usize..7) {
        let full: Vec<_> = ce_sorted(&g, EnumConfig { min_k: 1, ..Default::default() })
            .into_iter()
            .filter(|c| c.len() >= min_k)
            .collect();
        let seeded = ce_sorted(&g, EnumConfig { min_k, ..Default::default() });
        prop_assert_eq!(seeded, full);
    }

    #[test]
    fn max_k_is_a_post_filter(g in arb_graph(), max_k in 2usize..6) {
        let full: Vec<_> = ce_sorted(&g, EnumConfig { min_k: 1, ..Default::default() })
            .into_iter()
            .filter(|c| c.len() <= max_k)
            .collect();
        let windowed = ce_sorted(
            &g,
            EnumConfig { min_k: 1, max_k: Some(max_k), ..Default::default() },
        );
        prop_assert_eq!(windowed, full);
    }

    #[test]
    fn kclique_counts_consistent(g in arb_graph(), k in 2usize..6) {
        // maximal k-cliques from the k-clique enumerator == maximal
        // cliques of size exactly k
        let kc = enumerate_k_cliques(&g, k);
        let expect: Vec<_> = oracle_maximal(&g).into_iter().filter(|c| c.len() == k).collect();
        let mut got = kc.maximal.clone();
        got.sort();
        prop_assert_eq!(got, expect);
        // every clique (max or not) of size k is a clique
        for c in kc.maximal.iter().chain(&kc.non_maximal) {
            let vs: Vec<usize> = c.iter().map(|&v| v as usize).collect();
            prop_assert!(g.is_clique(&vs));
            prop_assert_eq!(vs.len(), k);
        }
    }

    #[test]
    fn maximum_clique_matches_largest_maximal(g in arb_graph()) {
        let oracle = oracle_maximal(&g);
        let largest = oracle.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert_eq!(maximum_clique_size(&g), largest);
    }

    #[test]
    fn enumeration_order_non_decreasing(g in arb_graph()) {
        let mut sink = CollectSink::default();
        CliqueEnumerator::new(EnumConfig { min_k: 1, ..Default::default() })
            .enumerate(&g, &mut sink);
        let sizes: Vec<usize> = sink.cliques.iter().map(Vec::len).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // no duplicates
        let mut dedup = sink.cliques.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), sink.cliques.len());
    }
}
