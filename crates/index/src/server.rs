//! `gsb serve` — a std-only threaded TCP/HTTP query server.
//!
//! The first long-lived process in the repo: where a batch run ends at
//! a level barrier, the server ends only when asked. It reuses the
//! robustness substrate built for batch runs —
//! [`ShutdownToken`] for graceful SIGINT/SIGTERM drain (stop accepting,
//! finish every queued and in-flight connection, then exit), the
//! supervision deadline as a per-connection read/write timeout (a stuck
//! client cannot wedge a worker past it), and [`gsb_telemetry`]
//! histograms for per-endpoint latency and QPS, exported as JSON via
//! `--metrics-out`.
//!
//! HTTP/1.1, one request per connection (`Connection: close`): the
//! protocol subset is deliberately tiny — every response carries an
//! exact `Content-Length` and the socket closes after it, so a drained
//! shutdown can never truncate a response mid-body.
//!
//! Endpoints (all GET, JSON responses):
//!
//! | path                 | answer                                   |
//! |----------------------|------------------------------------------|
//! | `/health`            | liveness                                 |
//! | `/stats`             | index statistics                         |
//! | `/containing/<v>`    | cliques containing vertex v              |
//! | `/size/<lo>/<hi>`    | cliques with size in `lo..=hi`           |
//! | `/max`               | one maximum clique                       |
//! | `/overlap/<v>/<w>`   | cliques containing both v and w          |
//!
//! Clique-list endpoints accept `?limit=K` (default 1000) and report
//! the full `count` alongside the possibly-truncated `cliques` array.

use crate::reader::CliqueIndex;
use gsb_core::supervise::is_transient;
use gsb_core::{Clique, RetryPolicy, ShutdownToken};
use gsb_telemetry::{AtomicRecorder, Histogram};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads answering queries.
    pub threads: usize,
    /// Per-connection read/write deadline (the supervision idea: a
    /// peer that stalls past this is disconnected, not waited on).
    pub deadline: Duration,
    /// Where to write the metrics JSON at shutdown.
    pub metrics_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            deadline: Duration::from_secs(10),
            metrics_out: None,
        }
    }
}

/// What the drained server did, returned by [`Server::run`].
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// The metrics JSON (also written to `metrics_out` when set).
    pub metrics_json: String,
}

/// Endpoint names; each gets a request counter and a latency histogram.
const ENDPOINTS: [&str; 8] = [
    "health",
    "stats",
    "containing",
    "size",
    "max",
    "overlap",
    "not_found",
    "bad_request",
];

fn latency_key(endpoint: &str) -> &'static str {
    match endpoint {
        "health" => "http.health.ns",
        "stats" => "http.stats.ns",
        "containing" => "http.containing.ns",
        "size" => "http.size.ns",
        "max" => "http.max.ns",
        "overlap" => "http.overlap.ns",
        "not_found" => "http.not_found.ns",
        _ => "http.bad_request.ns",
    }
}

fn requests_key(endpoint: &str) -> &'static str {
    match endpoint {
        "health" => "http.health.requests",
        "stats" => "http.stats.requests",
        "containing" => "http.containing.requests",
        "size" => "http.size.requests",
        "max" => "http.max.requests",
        "overlap" => "http.overlap.requests",
        "not_found" => "http.not_found.requests",
        _ => "http.bad_request.requests",
    }
}

/// A bound, not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    index: Arc<CliqueIndex>,
    config: ServeConfig,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7700`; port 0 picks a free port).
    pub fn bind(index: Arc<CliqueIndex>, addr: &str, config: ServeConfig) -> std::io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            index,
            config,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until `shutdown` is requested, then drain: stop accepting,
    /// finish every accepted connection, join the workers, and export
    /// metrics. Returns the report of the drained run.
    pub fn run(self, shutdown: &ShutdownToken) -> std::io::Result<ServeReport> {
        let started = Instant::now();
        self.listener.set_nonblocking(true)?;
        let recorder = Arc::new(AtomicRecorder::new());
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = self.config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let index = Arc::clone(&self.index);
            let recorder = Arc::clone(&recorder);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gsb-serve-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only across recv keeps the
                        // other workers free to pick up the next one.
                        let conn = rx.lock().unwrap().recv();
                        match conn {
                            Ok(stream) => handle_connection(stream, &index, &recorder),
                            // Channel closed after drain: every queued
                            // connection has been answered.
                            Err(_) => break,
                        }
                    })?,
            );
        }

        let mut connections = 0u64;
        while !shutdown.is_requested() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    connections += 1;
                    // Accepted sockets inherit non-blocking; workers
                    // want blocking reads bounded by the deadline.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(self.config.deadline));
                    let _ = stream.set_write_timeout(Some(self.config.deadline));
                    let _ = stream.set_nodelay(true);
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if is_transient(&e) => continue,
                Err(_) => {
                    recorder.add_named("http.accept_errors", 1);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }

        // Drain: close the channel (workers exit after the queue
        // empties), then wait for every in-flight response to finish.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }

        let mut requests = 0u64;
        for ep in ENDPOINTS {
            requests += recorder.counter(requests_key(ep)).get();
        }
        let metrics_json = render_metrics(&recorder, connections, requests, started.elapsed());
        if let Some(path) = &self.config.metrics_out {
            let bytes = metrics_json.clone().into_bytes();
            RetryPolicy::default().run_io(|| write_atomic_file(path, &bytes))?;
        }
        Ok(ServeReport {
            connections,
            requests,
            metrics_json,
        })
    }
}

/// Atomic sibling-tmp write for the metrics file (safe to retry whole).
fn write_atomic_file(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The per-endpoint latency/QPS export: one JSON object per endpoint
/// with count, mean, max, and coarse log₂ percentiles.
fn render_metrics(
    recorder: &AtomicRecorder,
    connections: u64,
    requests: u64,
    elapsed: Duration,
) -> String {
    let wall_ms = elapsed.as_millis() as u64;
    let qps = if elapsed.as_secs_f64() > 0.0 {
        requests as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let mut endpoints = String::new();
    for ep in ENDPOINTS {
        let count = recorder.counter(requests_key(ep)).get();
        if count == 0 {
            continue;
        }
        let h: Histogram = recorder.histogram(latency_key(ep));
        if !endpoints.is_empty() {
            endpoints.push(',');
        }
        endpoints.push_str(&format!(
            "\n    \"{ep}\": {{\"requests\":{count},\"mean_ns\":{:.0},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            h.mean(),
            h.quantile_upper_bound(0.50),
            h.quantile_upper_bound(0.90),
            h.quantile_upper_bound(0.99),
            h.max(),
        ));
    }
    format!(
        "{{\n  \"bench\": \"gsb_serve\",\n  \"connections\": {connections},\n  \"requests\": {requests},\n  \"wall_ms\": {wall_ms},\n  \"qps\": {qps:.2},\n  \"endpoints\": {{{endpoints}\n  }}\n}}\n"
    )
}

/// Trait bridge: `AtomicRecorder::add` takes `&'static str`; this
/// helper keeps call sites tidy.
trait AddNamed {
    fn add_named(&self, key: &'static str, delta: u64);
}

impl AddNamed for AtomicRecorder {
    fn add_named(&self, key: &'static str, delta: u64) {
        self.counter(key).add(delta);
    }
}

/// Read the request head (≤ 8 KiB), answer it, close. One request per
/// connection by design: `Connection: close` makes drain semantics
/// ("no truncated responses") trivially auditable.
fn handle_connection(mut stream: TcpStream, index: &CliqueIndex, recorder: &AtomicRecorder) {
    let mut buf = [0u8; 8192];
    let mut used = 0usize;
    let head_len = loop {
        if used == buf.len() {
            let _ = respond(&mut stream, 431, "{\"error\":\"request too large\"}");
            recorder.add_named("http.bad_request.requests", 1);
            return;
        }
        match stream.read(&mut buf[used..]) {
            Ok(0) => return, // peer closed before sending a request
            Ok(k) => {
                used += k;
                if let Some(end) = find_head_end(&buf[..used]) {
                    break end;
                }
            }
            Err(_) => {
                // Read deadline hit or connection reset: the
                // supervision deadline at work.
                recorder.add_named("http.read_errors", 1);
                return;
            }
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_len]);
    let first = head.lines().next().unwrap_or("");
    let started = Instant::now();
    let (status, body, endpoint) = route_request(index, first);
    recorder.add_named(requests_key(endpoint), 1);
    recorder
        .histogram(latency_key(endpoint))
        .observe(started.elapsed().as_nanos() as u64);
    if respond(&mut stream, status, &body).is_err() {
        recorder.add_named("http.write_errors", 1);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Parse the request line and dispatch. Returns status, JSON body, and
/// the endpoint name for telemetry.
fn route_request(index: &CliqueIndex, request_line: &str) -> (u16, String, &'static str) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return (
            405,
            "{\"error\":\"only GET is supported\"}".into(),
            "bad_request",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let limit = parse_limit(query);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        [] | ["health"] => (200, "{\"status\":\"ok\"}".into(), "health"),
        ["stats"] => (200, stats_json(index), "stats"),
        ["max"] => match index.max_clique() {
            Ok(Some(c)) => (
                200,
                format!("{{\"size\":{},\"clique\":{}}}", c.len(), json_ids(&c)),
                "max",
            ),
            Ok(None) => (200, "{\"size\":0,\"clique\":[]}".into(), "max"),
            Err(e) => (500, error_json(&e), "max"),
        },
        ["containing", v] => match v.parse::<u32>() {
            Err(_) => bad_request("vertex must be a number"),
            Ok(v) => match index
                .containing(v)
                .and_then(|ids| materialize_limited(index, &ids, limit).map(|c| (ids, c)))
            {
                Ok((ids, cliques)) => (
                    200,
                    format!(
                        "{{\"vertex\":{v},\"count\":{},\"ids\":{},\"cliques\":{}}}",
                        ids.len(),
                        json_u64s(&ids[..ids.len().min(limit)]),
                        json_cliques(&cliques)
                    ),
                    "containing",
                ),
                Err(e) => (500, error_json(&e), "containing"),
            },
        },
        ["size", lo, hi] => match (lo.parse::<u32>(), hi.parse::<u32>()) {
            (Ok(lo), Ok(hi)) if lo <= hi => {
                let ids = index.of_size(lo, hi);
                let count = ids.end - ids.start;
                let take = (count as usize).min(limit);
                match index.materialize(ids.clone().take(take)) {
                    Ok(cliques) => (
                        200,
                        format!(
                            "{{\"min\":{lo},\"max\":{hi},\"count\":{count},\"first_id\":{},\"cliques\":{}}}",
                            ids.start,
                            json_cliques(&cliques)
                        ),
                        "size",
                    ),
                    Err(e) => (500, error_json(&e), "size"),
                }
            }
            _ => bad_request("size range must be /size/<lo>/<hi> with lo <= hi"),
        },
        ["overlap", v, w] => match (v.parse::<u32>(), w.parse::<u32>()) {
            (Ok(v), Ok(w)) => match index
                .overlap(v, w)
                .and_then(|ids| materialize_limited(index, &ids, limit).map(|c| (ids, c)))
            {
                Ok((ids, cliques)) => (
                    200,
                    format!(
                        "{{\"v\":{v},\"w\":{w},\"count\":{},\"ids\":{},\"cliques\":{}}}",
                        ids.len(),
                        json_u64s(&ids[..ids.len().min(limit)]),
                        json_cliques(&cliques)
                    ),
                    "overlap",
                ),
                Err(e) => (500, error_json(&e), "overlap"),
            },
            _ => bad_request("vertices must be numbers"),
        },
        _ => (404, "{\"error\":\"no such endpoint\"}".into(), "not_found"),
    }
}

fn bad_request(message: &str) -> (u16, String, &'static str) {
    (400, format!("{{\"error\":\"{message}\"}}"), "bad_request")
}

fn parse_limit(query: &str) -> usize {
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("limit=") {
            if let Ok(k) = v.parse::<usize>() {
                return k;
            }
        }
    }
    1000
}

fn materialize_limited(
    index: &CliqueIndex,
    ids: &[u64],
    limit: usize,
) -> Result<Vec<Clique>, gsb_core::StoreError> {
    index.materialize(ids.iter().take(limit).copied())
}

fn stats_json(index: &CliqueIndex) -> String {
    let s = index.stats();
    let histogram: Vec<String> = s
        .size_histogram
        .iter()
        .map(|(size, count)| format!("[{size},{count}]"))
        .collect();
    format!(
        "{{\"n\":{},\"cliques\":{},\"max_clique\":{},\"blocks\":{},\"store_bytes\":{},\"postings_bytes\":{},\"size_histogram\":[{}]}}",
        s.n,
        s.cliques,
        s.max_clique,
        s.blocks,
        s.store_bytes,
        s.postings_bytes,
        histogram.join(",")
    )
}

fn error_json(e: &gsb_core::StoreError) -> String {
    format!("{{\"error\":{:?}}}", e.to_string())
}

fn json_ids(c: &[u32]) -> String {
    let items: Vec<String> = c.iter().map(u32::to_string).collect();
    format!("[{}]", items.join(","))
}

fn json_u64s(ids: &[u64]) -> String {
    let items: Vec<String> = ids.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn json_cliques(cliques: &[Clique]) -> String {
    let items: Vec<String> = cliques.iter().map(|c| json_ids(c)).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn limit_parsing() {
        assert_eq!(parse_limit(""), 1000);
        assert_eq!(parse_limit("limit=5"), 5);
        assert_eq!(parse_limit("a=1&limit=7"), 7);
        assert_eq!(parse_limit("limit=x"), 1000);
    }

    #[test]
    fn metrics_json_shape() {
        let r = AtomicRecorder::new();
        r.counter(requests_key("containing")).add(3);
        r.histogram(latency_key("containing")).observe(1500);
        let json = render_metrics(&r, 3, 3, Duration::from_millis(1200));
        let parsed = gsb_telemetry::json::parse(&json).expect("valid metrics json");
        assert_eq!(parsed.u64_or_zero("connections"), 3);
        assert_eq!(parsed.u64_or_zero("requests"), 3);
        let endpoints = parsed.get("endpoints").expect("endpoints object");
        let containing = endpoints.get("containing").expect("containing entry");
        assert_eq!(containing.u64_or_zero("requests"), 3);
        assert!(containing.u64_or_zero("p99_ns") >= 1500);
    }
}
