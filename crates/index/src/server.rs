//! `gsb serve` — a std-only threaded TCP/HTTP query server with
//! overload protection.
//!
//! The first long-lived process in the repo: where a batch run ends at
//! a level barrier, the server ends only when asked. It reuses the
//! robustness substrate built for batch runs — [`ShutdownToken`] for
//! graceful SIGINT/SIGTERM drain, the supervision deadline as a
//! per-connection socket timeout, and [`gsb_telemetry`] histograms for
//! per-endpoint latency, exported as JSON via `--metrics-out` — and
//! adds the serving-specific defenses a genome-scale index needs to
//! stay up under pressure:
//!
//! * **Admission control.** Accepted connections enter a *bounded*
//!   queue (`queue_limit`); when it is full the accept loop sheds the
//!   connection inline with a typed `503` + `Retry-After` instead of
//!   letting latency grow without bound. The queue depth is exported
//!   as the `http.queue_depth` gauge, sheds as `http.shed_total`.
//! * **Per-request deadline budget.** Distinct from the per-connection
//!   socket timeout: the budget starts at *accept*. A request that
//!   already spent its budget queueing is shed (`503`), and a client
//!   that dribbles header bytes (slow-loris) is cut off with `408`
//!   once the budget runs out — progress is bounded even though each
//!   individual read is making "progress".
//! * **Per-endpoint rate limiting.** An optional token bucket per
//!   endpoint (`rate_limit` requests/second, `rate_burst` burst)
//!   answers `429` + `Retry-After` when drained. `/health` is exempt:
//!   liveness probes must keep passing during overload.
//! * **Degraded-exact serving.** A corrupt store block is quarantined
//!   by the reader; list endpoints then answer from the healthy blocks
//!   only, marking the response with an `X-Gsb-Degraded: <skipped>`
//!   header and a `"degraded"` body field. Every clique actually
//!   returned is exact — degradation is visible, never silent.
//! * **Atomic hot-reload.** With `reload_poll` + `index_dir` set, a
//!   watcher thread polls `index.meta`; on change it opens and fully
//!   validates the new index off the serving path, then swaps the
//!   shared `Arc<CliqueIndex>`. In-flight requests keep their snapshot
//!   — no request is ever dropped or mixed across generations.
//! * **Worker panic containment.** Each request runs under
//!   `catch_unwind`; a panic answers `500`, bumps
//!   `http.worker_panics`, and the worker lives on.
//! * **Live observability.** `GET /metrics` exposes every recorder
//!   series as Prometheus text (`gsb_telemetry::promtext`) and
//!   `GET /metrics-json` serves the same snapshot `--metrics-out`
//!   writes at shutdown — both exempt from the admission queue and the
//!   rate limiter, like `/health`: an overloaded server must stay
//!   scrapeable. Every request gets a trace id (incoming `X-Gsb-Trace`
//!   honored, else generated from the seeded `TraceIdGen`) and a
//!   [`gsb_telemetry::SpanRecorder`] timing
//!   queue→parse→admission→postings→blocks→respond; the id and total
//!   nanoseconds return in `X-Gsb-Trace` / `X-Gsb-Trace-Ns` response
//!   headers. With `--access-log` set, each request appends one JSONL
//!   [`gsb_telemetry::AccessRecord`] line (rotated atomically at
//!   `--access-log-max-bytes`); `--slow-query-ms` tees outliers with
//!   their full span breakdown into a slow-query log.
//!
//! HTTP/1.1, one request per connection (`Connection: close`): every
//! response carries an exact `Content-Length` and the socket closes
//! after it, so a drained shutdown can never truncate a response
//! mid-body. On shutdown the server answers everything it accepted,
//! then sweeps the kernel backlog, shedding each waiting connection
//! with a `503` rather than a silent RST.
//!
//! Endpoints (all GET, JSON responses):
//!
//! | path                 | answer                                   |
//! |----------------------|------------------------------------------|
//! | `/health`            | liveness                                 |
//! | `/ready`             | readiness (503 while draining)           |
//! | `/stats`             | index statistics                         |
//! | `/get/<id>`          | one clique by id                         |
//! | `/containing/<v>`    | cliques containing vertex v              |
//! | `/size/<lo>/<hi>`    | cliques with size in `lo..=hi`           |
//! | `/max`               | one maximum clique                       |
//! | `/overlap/<v>/<w>`   | cliques containing both v and w          |
//! | `/metrics`           | Prometheus text exposition (live)        |
//! | `/metrics-json`      | the `--metrics-out` JSON snapshot (live) |
//!
//! Clique-list endpoints accept `?limit=K` (default 1000) and report
//! the full `count` alongside the possibly-truncated `cliques` array.

use crate::reader::CliqueIndex;
use gsb_core::supervise::is_transient;
use gsb_core::{Clique, RetryPolicy, ShutdownToken};
use gsb_telemetry::access::{AccessRecord, RotatingWriter};
use gsb_telemetry::promtext::{PromKind, PromWriter};
use gsb_telemetry::trace::{valid_trace_id, SpanRecorder, TraceIdGen};
use gsb_telemetry::{AtomicRecorder, Histogram};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads answering queries.
    pub threads: usize,
    /// Per-connection socket read/write timeout (the supervision idea:
    /// a peer that stalls past this is disconnected, not waited on).
    pub deadline: Duration,
    /// Per-request deadline *budget*, measured from accept: queueing,
    /// header read, query, and response all share it. A request that
    /// cannot start within the budget is shed with `503`; a header
    /// that cannot finish within it is cut off with `408`.
    pub request_deadline: Duration,
    /// Bounded accept-queue depth; connections beyond it are shed
    /// inline with `503` + `Retry-After`.
    pub queue_limit: usize,
    /// Optional per-endpoint token-bucket rate (requests/second).
    /// `None` disables rate limiting. `/health` is always exempt.
    pub rate_limit: Option<f64>,
    /// Token-bucket burst capacity (tokens), when `rate_limit` is set.
    pub rate_burst: u32,
    /// Cap on total request-head bytes (`431` beyond it).
    pub max_header_bytes: usize,
    /// Poll interval of the `index.meta` hot-reload watcher; `None`
    /// disables reloading. Requires `index_dir`.
    pub reload_poll: Option<Duration>,
    /// The index directory to watch for hot-reload.
    pub index_dir: Option<PathBuf>,
    /// Where to write the metrics JSON at shutdown.
    pub metrics_out: Option<PathBuf>,
    /// JSONL access log: one [`AccessRecord`] per request. `None`
    /// disables access logging.
    pub access_log: Option<PathBuf>,
    /// Rotate the access (and slow-query) log once it exceeds this many
    /// bytes (atomic rename to `<path>.1`); 0 disables rotation.
    pub access_log_max_bytes: u64,
    /// Tee requests slower than this many milliseconds into the
    /// slow-query log (full span breakdown). `None` disables.
    pub slow_query_ms: Option<u64>,
    /// Where slow queries are logged; required when `slow_query_ms` is
    /// set (the CLI defaults it to `<access_log>.slow`).
    pub slow_query_log: Option<PathBuf>,
    /// Seed for the server's trace-id generator (deterministic ids for
    /// reproducible tests and benchmarks).
    pub trace_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            deadline: Duration::from_secs(10),
            request_deadline: Duration::from_secs(5),
            queue_limit: 128,
            rate_limit: None,
            rate_burst: 8,
            max_header_bytes: 8192,
            reload_poll: None,
            index_dir: None,
            metrics_out: None,
            access_log: None,
            access_log_max_bytes: 64 * 1024 * 1024,
            slow_query_ms: None,
            slow_query_log: None,
            trace_seed: 17,
        }
    }
}

/// What the drained server did, returned by [`Server::run`].
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered with a routed response (any status).
    pub requests: u64,
    /// Connections shed by admission control (queue full, budget
    /// exhausted, slow client, drain sweep).
    pub shed: u64,
    /// Requests answered `429` by the per-endpoint rate limiter.
    pub rate_limited: u64,
    /// Responses served degraded-exact (some ids skipped as corrupt).
    pub degraded: u64,
    /// Successful index hot-reloads.
    pub reloads: u64,
    /// The metrics JSON (also written to `metrics_out` when set).
    pub metrics_json: String,
}

/// Endpoint names; each gets a request counter, a latency histogram,
/// and a rate-limit saturation counter.
pub(crate) const ENDPOINTS: [&str; 12] = [
    "health",
    "ready",
    "stats",
    "get",
    "containing",
    "size",
    "max",
    "overlap",
    "metrics",
    "metrics_json",
    "not_found",
    "bad_request",
];

pub(crate) fn latency_key(endpoint: &str) -> &'static str {
    match endpoint {
        "health" => "http.health.ns",
        "ready" => "http.ready.ns",
        "stats" => "http.stats.ns",
        "get" => "http.get.ns",
        "containing" => "http.containing.ns",
        "size" => "http.size.ns",
        "max" => "http.max.ns",
        "overlap" => "http.overlap.ns",
        "metrics" => "http.metrics.ns",
        "metrics_json" => "http.metrics_json.ns",
        "not_found" => "http.not_found.ns",
        _ => "http.bad_request.ns",
    }
}

pub(crate) fn requests_key(endpoint: &str) -> &'static str {
    match endpoint {
        "health" => "http.health.requests",
        "ready" => "http.ready.requests",
        "stats" => "http.stats.requests",
        "get" => "http.get.requests",
        "containing" => "http.containing.requests",
        "size" => "http.size.requests",
        "max" => "http.max.requests",
        "overlap" => "http.overlap.requests",
        "metrics" => "http.metrics.requests",
        "metrics_json" => "http.metrics_json.requests",
        "not_found" => "http.not_found.requests",
        _ => "http.bad_request.requests",
    }
}

fn rate_limited_key(endpoint: &str) -> &'static str {
    match endpoint {
        "health" => "http.health.rate_limited",
        "ready" => "http.ready.rate_limited",
        "stats" => "http.stats.rate_limited",
        "get" => "http.get.rate_limited",
        "containing" => "http.containing.rate_limited",
        "size" => "http.size.rate_limited",
        "max" => "http.max.rate_limited",
        "overlap" => "http.overlap.rate_limited",
        "metrics" => "http.metrics.rate_limited",
        "metrics_json" => "http.metrics_json.rate_limited",
        "not_found" => "http.not_found.rate_limited",
        _ => "http.bad_request.rate_limited",
    }
}

/// Per-status response counters, for the `gsb_http_responses_total`
/// Prometheus family.
pub(crate) fn status_key(status: u16) -> &'static str {
    match status {
        200 => "http.status.200",
        400 => "http.status.400",
        404 => "http.status.404",
        405 => "http.status.405",
        408 => "http.status.408",
        429 => "http.status.429",
        431 => "http.status.431",
        500 => "http.status.500",
        503 => "http.status.503",
        _ => "http.status.other",
    }
}

/// Statuses with a dedicated counter, in exposition order.
pub(crate) const STATUS_LABELS: [(&str, u16); 9] = [
    ("200", 200),
    ("400", 400),
    ("404", 404),
    ("405", 405),
    ("408", 408),
    ("429", 429),
    ("431", 431),
    ("500", 500),
    ("503", 503),
];

/// Endpoints exempt from the token buckets and from queue-full
/// shedding: liveness, readiness, and scrapes must keep answering
/// during overload — a router probing `/ready` must learn "still
/// serving, just busy" rather than a shed 503.
pub(crate) fn admission_exempt(endpoint: &str) -> bool {
    matches!(endpoint, "health" | "ready" | "metrics" | "metrics_json")
}

/// One token bucket per endpoint (classic leaky refill: `rate`
/// tokens/second up to `burst`).
struct TokenBuckets {
    rate: f64,
    burst: f64,
    buckets: Vec<Mutex<Bucket>>,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

impl TokenBuckets {
    fn new(rate: f64, burst: u32) -> Self {
        let burst = f64::from(burst.max(1));
        let now = Instant::now();
        TokenBuckets {
            rate: rate.max(0.0),
            burst,
            buckets: ENDPOINTS
                .iter()
                .map(|_| {
                    Mutex::new(Bucket {
                        tokens: burst,
                        last: now,
                    })
                })
                .collect(),
        }
    }

    /// Take one token for `endpoint`; false means rate-limited.
    fn try_take(&self, endpoint: &str) -> bool {
        let i = ENDPOINTS
            .iter()
            .position(|e| *e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        let mut b = self.buckets[i].lock().unwrap();
        let now = Instant::now();
        b.tokens =
            (b.tokens + now.duration_since(b.last).as_secs_f64() * self.rate).min(self.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Everything the workers, accept loop, and reload watcher share.
struct ServeState {
    /// The live index. Workers clone the `Arc` per request, so a
    /// hot-reload swap never invalidates an in-flight answer.
    index: Mutex<Arc<CliqueIndex>>,
    recorder: AtomicRecorder,
    config: ServeConfig,
    queue_depth: AtomicUsize,
    /// Set once shutdown is requested: `/ready` flips to 503 so a
    /// router ejects this backend *before* the drain sweep sheds its
    /// queries, while `/health` keeps answering 200 (still alive).
    draining: AtomicBool,
    buckets: Option<TokenBuckets>,
    /// When the server started (uptime for `/metrics`).
    started: Instant,
    /// Seeded trace-id generator for requests without `X-Gsb-Trace`.
    trace_ids: Mutex<TraceIdGen>,
    /// The JSONL access log, when enabled.
    access: Option<Mutex<RotatingWriter>>,
    /// The slow-query log, when enabled.
    slow: Option<Mutex<RotatingWriter>>,
}

impl ServeState {
    /// Current index snapshot for one request.
    fn index(&self) -> Arc<CliqueIndex> {
        self.index.lock().unwrap().clone()
    }

    /// A fresh trace id from the seeded generator.
    fn next_trace_id(&self) -> String {
        self.trace_ids.lock().unwrap().next_id()
    }

    /// The live `--metrics-out`-shaped JSON snapshot (same renderer the
    /// shutdown write uses), served by `GET /metrics-json`.
    fn live_metrics_json(&self) -> String {
        let connections = self.recorder.counter("http.connections").get();
        let requests: u64 = ENDPOINTS
            .iter()
            .map(|ep| self.recorder.counter(requests_key(ep)).get())
            .sum();
        render_metrics(
            &self.recorder,
            connections,
            requests,
            self.started.elapsed(),
        )
    }

    /// Append one access-log line (and tee it into the slow-query log
    /// when the request crossed the `slow_query_ms` threshold). Called
    /// on the worker path only — accept-loop sheds have no span.
    fn log_access(
        &self,
        span: &SpanRecorder,
        endpoint: &str,
        status: u16,
        cause: &str,
        bytes: u64,
    ) {
        let total_ns = span.total_ns();
        let slow = self
            .config
            .slow_query_ms
            .is_some_and(|ms| total_ns >= ms.saturating_mul(1_000_000));
        if slow {
            self.recorder.add_named("http.slow_queries", 1);
        }
        let write_access = self.access.is_some();
        let write_slow = slow && self.slow.is_some();
        if !write_access && !write_slow {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let record = AccessRecord {
            ts_ms,
            trace: span.trace_id().to_string(),
            endpoint: endpoint.to_string(),
            status,
            cause: cause.to_string(),
            bytes,
            total_ns,
            stages: span
                .stages()
                .iter()
                .map(|&(name, ns)| (name.to_string(), ns))
                .collect(),
        };
        let line = record.to_json_line();
        if write_access {
            if let Some(w) = &self.access {
                if w.lock().unwrap().append_line(&line).is_err() {
                    self.recorder.add_named("http.access_log_errors", 1);
                }
            }
        }
        if write_slow {
            if let Some(w) = &self.slow {
                if w.lock().unwrap().append_line(&line).is_err() {
                    self.recorder.add_named("http.access_log_errors", 1);
                }
            }
        }
    }

    /// `Retry-After` seconds for a shed 503, scaled with how deep the
    /// admission queue currently is: an empty queue suggests a blip
    /// (come back in 1s), a full queue means real overload (back off up
    /// to 8s). Bounded so a buggy depth can never tell clients to wait
    /// forever, and load-dependent so a fleet of backoff clients does
    /// not re-arrive on one fixed beat.
    fn retry_after_secs(&self) -> u32 {
        let limit = self.config.queue_limit.max(1);
        let depth = self.queue_depth.load(Ordering::Acquire).min(limit);
        (1 + (7 * depth) / limit) as u32
    }

    /// Shed a connection with a typed, complete response. The pending
    /// request bytes are drained first (one bounded read): closing with
    /// unread data in the receive buffer makes the kernel reset the
    /// connection, and the client would see ECONNRESET instead of the
    /// typed 503/429 the whole design promises. The read is bounded to
    /// 50ms so a silent client cannot stall the shedding path.
    fn shed(&self, stream: &mut TcpStream, status: u16, message: &str, key: &'static str) {
        self.recorder.add_named(key, 1);
        self.recorder.add_named("http.shed_total", 1);
        self.recorder.add_named(status_key(status), 1);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut scratch = [0u8; 1024];
        let _ = stream.read(&mut scratch);
        let body = format!("{{\"error\":\"{message}\",\"shed\":true}}");
        let retry = self.retry_after_secs();
        if respond_retry(stream, status, &body, retry).is_err() {
            self.recorder.add_named("http.write_errors", 1);
        }
    }
}

/// A connection waiting in the admission queue.
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// A bound, not-yet-running query server.
pub struct Server {
    listener: TcpListener,
    index: Arc<CliqueIndex>,
    config: ServeConfig,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7700`; port 0 picks a free port).
    pub fn bind(index: Arc<CliqueIndex>, addr: &str, config: ServeConfig) -> std::io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            index,
            config,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until `shutdown` is requested, then drain: stop accepting,
    /// answer every accepted connection, shed the kernel backlog with
    /// `503`, join the workers, and export metrics.
    pub fn run(self, shutdown: &ShutdownToken) -> std::io::Result<ServeReport> {
        let started = Instant::now();
        self.listener.set_nonblocking(true)?;
        let access = match &self.config.access_log {
            Some(path) => Some(Mutex::new(RotatingWriter::open(
                path,
                self.config.access_log_max_bytes,
            )?)),
            None => None,
        };
        let slow = match &self.config.slow_query_log {
            Some(path) => Some(Mutex::new(RotatingWriter::open(
                path,
                self.config.access_log_max_bytes,
            )?)),
            None => None,
        };
        let state = Arc::new(ServeState {
            index: Mutex::new(Arc::clone(&self.index)),
            recorder: AtomicRecorder::new(),
            queue_depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            buckets: self
                .config
                .rate_limit
                .map(|rate| TokenBuckets::new(rate, self.config.rate_burst)),
            started,
            trace_ids: Mutex::new(TraceIdGen::seeded(self.config.trace_seed)),
            access,
            slow,
            config: self.config.clone(),
        });
        let (tx, rx) = mpsc::channel::<Conn>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = self.config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gsb-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &state))?,
            );
        }
        let watcher = match (&self.config.reload_poll, &self.config.index_dir) {
            (Some(poll), Some(dir)) => {
                let state = Arc::clone(&state);
                let shutdown = shutdown.clone();
                let (poll, dir) = (*poll, dir.clone());
                Some(
                    std::thread::Builder::new()
                        .name("gsb-serve-reload".into())
                        .spawn(move || watch_index(&dir, poll, &state, &shutdown))?,
                )
            }
            _ => None,
        };

        let mut connections = 0u64;
        while !shutdown.is_requested() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    connections += 1;
                    state.recorder.add_named("http.connections", 1);
                    if gsb_core::failpoint::inject("serve.accept").is_err() {
                        // Injected accept-path fault: account and drop,
                        // exactly like a socket that died post-accept.
                        state.recorder.add_named("http.accept_errors", 1);
                        continue;
                    }
                    configure_stream(&stream, &self.config);
                    let depth = state.queue_depth.load(Ordering::Acquire);
                    if depth >= self.config.queue_limit {
                        // Queue full: answer /health and the metrics
                        // endpoints inline (an overloaded server must
                        // stay probe-able and scrapeable), shed the
                        // rest with a typed 503 under a short write
                        // budget so one slow victim cannot stall the
                        // accept loop.
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                        overload_inline(&state, &mut stream);
                        continue;
                    }
                    let depth = state.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
                    state.recorder.gauge("http.queue_depth").set(depth as u64);
                    if tx
                        .send(Conn {
                            stream,
                            accepted_at: Instant::now(),
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if is_transient(&e) => continue,
                Err(_) => {
                    state.recorder.add_named("http.accept_errors", 1);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }

        // From here on `/ready` answers 503: queued requests still
        // drain to completion, but a router probing readiness ejects
        // this backend instead of routing new work at a closing door.
        state.draining.store(true, Ordering::Release);

        // Drain sweep: everything already accepted drains through the
        // workers; connections still waiting in the kernel backlog are
        // shed with a typed 503 instead of a silent reset.
        while let Ok((mut stream, _)) = self.listener.accept() {
            connections += 1;
            state.recorder.add_named("http.connections", 1);
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            state.shed(
                &mut stream,
                503,
                "server draining for shutdown",
                "http.shed.draining",
            );
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(w) = watcher {
            let _ = w.join();
        }

        let mut requests = 0u64;
        for ep in ENDPOINTS {
            requests += state.recorder.counter(requests_key(ep)).get();
        }
        let metrics_json =
            render_metrics(&state.recorder, connections, requests, started.elapsed());
        if let Some(path) = &self.config.metrics_out {
            let bytes = metrics_json.clone().into_bytes();
            RetryPolicy::default().run_io(|| write_atomic_file(path, &bytes))?;
        }
        Ok(ServeReport {
            connections,
            requests,
            shed: state.recorder.counter("http.shed_total").get(),
            rate_limited: state.recorder.counter("http.rate_limited_total").get(),
            degraded: state.recorder.counter("http.degraded_total").get(),
            reloads: state.recorder.counter("http.reloads").get(),
            metrics_json,
        })
    }
}

/// Socket options for an accepted connection (sockets inherit the
/// listener's non-blocking flag; workers want blocking bounded reads).
fn configure_stream(stream: &TcpStream, config: &ServeConfig) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.deadline));
    let _ = stream.set_write_timeout(Some(config.deadline));
    let _ = stream.set_nodelay(true);
}

/// One worker: pop connections, answer them, contain panics.
fn worker_loop(rx: &Mutex<mpsc::Receiver<Conn>>, state: &ServeState) {
    loop {
        // Holding the lock only across recv keeps the other workers
        // free to pick up the next connection.
        let conn = rx.lock().unwrap().recv();
        let Ok(mut conn) = conn else {
            // Channel closed after drain: every queued connection has
            // been answered.
            break;
        };
        let depth = state.queue_depth.fetch_sub(1, Ordering::AcqRel) - 1;
        state.recorder.gauge("http.queue_depth").set(depth as u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(&mut conn.stream, conn.accepted_at, state)
        }));
        if outcome.is_err() {
            // The worker survives a panicking request; the client gets
            // a typed 500 instead of a dead socket.
            state.recorder.add_named("http.worker_panics", 1);
            state.recorder.add_named(status_key(500), 1);
            let _ = respond(
                &mut conn.stream,
                500,
                "{\"error\":\"internal error answering this request\"}",
                0,
            );
        }
    }
}

/// Poll `index.meta`; on change, open + validate the new index off the
/// serving path and swap it in atomically. A failed open keeps the old
/// index serving and retries on the next change of the manifest.
fn watch_index(
    dir: &std::path::Path,
    poll: Duration,
    state: &ServeState,
    shutdown: &ShutdownToken,
) {
    let meta_path = dir.join(crate::format::META_FILE);
    let mut last = std::fs::read_to_string(&meta_path).unwrap_or_default();
    let mut since_poll = Duration::ZERO;
    const TICK: Duration = Duration::from_millis(20);
    while !shutdown.is_requested() {
        // Short ticks keep shutdown responsive under long poll windows.
        std::thread::sleep(TICK.min(poll));
        since_poll += TICK.min(poll);
        if since_poll < poll {
            continue;
        }
        since_poll = Duration::ZERO;
        let Ok(text) = std::fs::read_to_string(&meta_path) else {
            continue;
        };
        if text == last {
            continue;
        }
        match CliqueIndex::open(dir) {
            Ok(new_index) => {
                let generation = new_index.generation();
                *state.index.lock().unwrap() = Arc::new(new_index);
                last = text;
                state.recorder.add_named("http.reloads", 1);
                eprintln!("gsb serve: hot-reloaded index (generation {generation})");
            }
            Err(e) => {
                // Keep serving the old index; `last` stays unchanged so
                // the next poll retries the reload.
                state.recorder.add_named("http.reload_errors", 1);
                eprintln!("gsb serve: index reload failed, keeping current index: {e}");
            }
        }
    }
}

/// Atomic sibling-tmp write for the metrics file (safe to retry whole).
fn write_atomic_file(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The per-endpoint latency/QPS export plus the overload counters: one
/// JSON object per endpoint with count, mean, max, coarse log₂
/// percentiles, and rate-limit saturation.
fn render_metrics(
    recorder: &AtomicRecorder,
    connections: u64,
    requests: u64,
    elapsed: Duration,
) -> String {
    let wall_ms = elapsed.as_millis() as u64;
    let qps = if elapsed.as_secs_f64() > 0.0 {
        requests as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let mut endpoints = String::new();
    for ep in ENDPOINTS {
        let count = recorder.counter(requests_key(ep)).get();
        let limited = recorder.counter(rate_limited_key(ep)).get();
        if count == 0 && limited == 0 {
            continue;
        }
        let h: Histogram = recorder.histogram(latency_key(ep));
        if !endpoints.is_empty() {
            endpoints.push(',');
        }
        endpoints.push_str(&format!(
            "\n    \"{ep}\": {{\"requests\":{count},\"rate_limited\":{limited},\"mean_ns\":{:.0},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            h.mean(),
            h.quantile_upper_bound(0.50),
            h.quantile_upper_bound(0.90),
            h.quantile_upper_bound(0.99),
            h.max(),
        ));
    }
    let shed_total = recorder.counter("http.shed_total").get();
    let shed_queue_full = recorder.counter("http.shed.queue_full").get();
    let shed_deadline = recorder.counter("http.shed.deadline").get();
    let shed_slow_client = recorder.counter("http.shed.slow_client").get();
    let shed_draining = recorder.counter("http.shed.draining").get();
    let rate_limited = recorder.counter("http.rate_limited_total").get();
    let degraded = recorder.counter("http.degraded_total").get();
    let reloads = recorder.counter("http.reloads").get();
    let reload_errors = recorder.counter("http.reload_errors").get();
    let worker_panics = recorder.counter("http.worker_panics").get();
    let queue_depth = recorder.gauge("http.queue_depth").get();
    format!(
        "{{\n  \"bench\": \"gsb_serve\",\n  \"connections\": {connections},\n  \"requests\": {requests},\n  \"wall_ms\": {wall_ms},\n  \"qps\": {qps:.2},\n  \"shed_total\": {shed_total},\n  \"shed\": {{\"queue_full\":{shed_queue_full},\"deadline\":{shed_deadline},\"slow_client\":{shed_slow_client},\"draining\":{shed_draining}}},\n  \"rate_limited\": {rate_limited},\n  \"degraded\": {degraded},\n  \"reloads\": {reloads},\n  \"reload_errors\": {reload_errors},\n  \"worker_panics\": {worker_panics},\n  \"queue_depth\": {queue_depth},\n  \"endpoints\": {{{endpoints}\n  }}\n}}\n"
    )
}

/// Render every recorder series as Prometheus text exposition (format
/// 0.0.4). Reads only atomic snapshots — never blocks request threads.
///
/// Naming: structured families carry labels (`endpoint=`, `cause=`,
/// `status=`); reader I/O counters come from [`CliqueIndex::io_stats`];
/// any counter not claimed below is swept up as a sanitized
/// `gsb_`-prefixed counter so new series are never silently dropped
/// from scrapes.
fn render_promtext(state: &ServeState, index: &CliqueIndex) -> String {
    let r = &state.recorder;
    let mut w = PromWriter::new();

    let req = w.family(
        "gsb_http_requests_total",
        PromKind::Counter,
        "Routed requests, by endpoint.",
    );
    for ep in ENDPOINTS {
        w.sample(&req, &[("endpoint", ep)], r.counter(requests_key(ep)).get());
    }

    let dur = w.family(
        "gsb_http_request_duration_ns",
        PromKind::Histogram,
        "Request handling latency in nanoseconds (log2 buckets), by endpoint.",
    );
    for ep in ENDPOINTS {
        let h = r.histogram(latency_key(ep));
        w.histogram(
            &dur,
            &[("endpoint", ep)],
            &h.cumulative_buckets(),
            h.sum(),
            h.count(),
        );
    }

    let limited = w.family(
        "gsb_http_rate_limited_total",
        PromKind::Counter,
        "Requests answered 429 by the per-endpoint token bucket.",
    );
    for ep in ENDPOINTS {
        w.sample(
            &limited,
            &[("endpoint", ep)],
            r.counter(rate_limited_key(ep)).get(),
        );
    }

    let shed = w.family(
        "gsb_http_shed_total",
        PromKind::Counter,
        "Connections shed by admission control, by cause.",
    );
    for (cause, key) in [
        ("queue_full", "http.shed.queue_full"),
        ("deadline", "http.shed.deadline"),
        ("slow_client", "http.shed.slow_client"),
        ("draining", "http.shed.draining"),
    ] {
        w.sample(&shed, &[("cause", cause)], r.counter(key).get());
    }

    let status = w.family(
        "gsb_http_responses_total",
        PromKind::Counter,
        "Responses written, by HTTP status.",
    );
    for (label, code) in STATUS_LABELS {
        w.sample(
            &status,
            &[("status", label)],
            r.counter(status_key(code)).get(),
        );
    }
    w.sample(
        &status,
        &[("status", "other")],
        r.counter("http.status.other").get(),
    );

    let depth = w.family(
        "gsb_http_queue_depth",
        PromKind::Gauge,
        "Connections currently waiting in the admission queue.",
    );
    w.sample(&depth, &[], r.gauge("http.queue_depth").get());

    // Plain counters: name, recorder key, help.
    let plain: [(&str, &'static str, &str); 11] = [
        (
            "gsb_http_connections_total",
            "http.connections",
            "TCP connections accepted (including shed ones).",
        ),
        (
            "gsb_http_degraded_total",
            "http.degraded_total",
            "Responses served degraded-exact (quarantined ids skipped).",
        ),
        (
            "gsb_http_slow_queries_total",
            "http.slow_queries",
            "Requests slower than the slow-query threshold.",
        ),
        (
            "gsb_http_reloads_total",
            "http.reloads",
            "Successful index hot-reloads.",
        ),
        (
            "gsb_http_reload_errors_total",
            "http.reload_errors",
            "Hot-reload attempts that failed validation.",
        ),
        (
            "gsb_http_worker_panics_total",
            "http.worker_panics",
            "Request handlers that panicked (contained, answered 500).",
        ),
        (
            "gsb_http_read_errors_total",
            "http.read_errors",
            "Connections lost while reading the request.",
        ),
        (
            "gsb_http_write_errors_total",
            "http.write_errors",
            "Responses that failed to write.",
        ),
        (
            "gsb_http_accept_errors_total",
            "http.accept_errors",
            "Accept-path failures.",
        ),
        (
            "gsb_http_rate_limited_requests_total",
            "http.rate_limited_total",
            "Requests answered 429, all endpoints.",
        ),
        (
            "gsb_http_access_log_errors_total",
            "http.access_log_errors",
            "Access-log lines dropped on write failure.",
        ),
    ];
    for (name, key, help) in plain {
        let fam = w.family(name, PromKind::Counter, help);
        w.sample(&fam, &[], r.counter(key).get());
    }

    // Reader I/O: block-cache effectiveness and decode cost. Counters
    // reset on hot-reload (fresh reader), flagged by the generation.
    let io = index.io_stats();
    for (name, value, help) in [
        (
            "gsb_index_cache_hits_total",
            io.cache_hits,
            "Block lookups answered from the decoded-block cache.",
        ),
        (
            "gsb_index_cache_misses_total",
            io.cache_misses,
            "Block lookups that had to read and decode from disk.",
        ),
        (
            "gsb_index_cache_evictions_total",
            io.cache_evictions,
            "Cache insertions that displaced an older block.",
        ),
        (
            "gsb_index_blocks_decoded_total",
            io.blocks_decoded,
            "Blocks read, CRC-verified, and decoded.",
        ),
        (
            "gsb_index_decode_ns_total",
            io.decode_ns,
            "Nanoseconds spent in block read+CRC+decode.",
        ),
        (
            "gsb_index_postings_reads_total",
            io.postings_reads,
            "Postings-list reads served.",
        ),
    ] {
        let fam = w.family(name, PromKind::Counter, help);
        w.sample(&fam, &[], value);
    }
    for (name, value, help) in [
        (
            "gsb_index_generation",
            index.generation(),
            "Rebuild generation of the live index.",
        ),
        (
            "gsb_index_quarantined_blocks",
            index.quarantined_blocks().len() as u64,
            "Store blocks quarantined as corrupt since this reader opened.",
        ),
        (
            "gsb_index_cliques",
            index.len(),
            "Cliques in the live index.",
        ),
        (
            "gsb_index_live_cliques",
            index.live_len(),
            "Cliques surviving the tombstone filter (equals gsb_index_cliques when no delta chain).",
        ),
        (
            "gsb_index_tombstones",
            index.len() - index.live_len(),
            "Cliques killed by the delta chain since the last compaction.",
        ),
        (
            "gsb_index_delta_generations",
            index.delta_generations(),
            "Delta generations stacked on the base index (0 after compaction).",
        ),
    ] {
        let fam = w.family(name, PromKind::Gauge, help);
        w.sample(&fam, &[], value);
    }

    let uptime = w.family(
        "gsb_uptime_seconds",
        PromKind::Gauge,
        "Seconds since the server started.",
    );
    w.sample_f64(&uptime, &[], state.started.elapsed().as_secs_f64());

    // Sweep: any counter not claimed above still gets exposed, under a
    // sanitized gsb_-prefixed name, so new instrumentation is never
    // invisible to scrapes.
    let mut claimed: std::collections::BTreeSet<&str> = [
        "http.shed_total",
        "http.shed.queue_full",
        "http.shed.deadline",
        "http.shed.slow_client",
        "http.shed.draining",
        "http.status.other",
        "http.connections",
        "http.degraded_total",
        "http.slow_queries",
        "http.reloads",
        "http.reload_errors",
        "http.worker_panics",
        "http.read_errors",
        "http.write_errors",
        "http.accept_errors",
        "http.rate_limited_total",
        "http.access_log_errors",
    ]
    .into();
    for ep in ENDPOINTS {
        claimed.insert(requests_key(ep));
        claimed.insert(rate_limited_key(ep));
    }
    for (_, code) in STATUS_LABELS {
        claimed.insert(status_key(code));
    }
    for (key, value) in state.recorder.snapshot_counters() {
        if claimed.contains(key) {
            continue;
        }
        let fam = w.family(
            &format!("gsb_{key}"),
            PromKind::Counter,
            "Unstructured counter (auto-exported).",
        );
        w.sample(&fam, &[], value);
    }

    w.finish()
}

/// The queue is full: answer an admission-exempt request (`/health`,
/// `/metrics`, `/metrics-json`) inline from the accept loop, shed
/// anything else with a typed 503. The header read is bounded (50ms,
/// 1 KiB) so a slow client cannot stall accepting.
fn overload_inline(state: &ServeState, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 1024];
    let mut used = 0usize;
    for _ in 0..2 {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(k) => {
                used += k;
                if find_head_end(&buf[..used]).is_some() || used == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let first = head.lines().next().unwrap_or("");
    let (route, limit) = parse_route(first);
    let endpoint = route.endpoint();
    if admission_exempt(endpoint) && find_head_end(&buf[..used]).is_some() {
        let mut span = SpanRecorder::new(resolve_trace_id(state, &head));
        span.stage("parse");
        let index = state.index();
        let (status, body, skipped, content_type) =
            execute(state, &index, &route, limit, &mut span);
        state.recorder.add_named(requests_key(endpoint), 1);
        state.recorder.add_named(status_key(status), 1);
        state
            .recorder
            .histogram(latency_key(endpoint))
            .observe(span.total_ns());
        let extra = trace_headers(&span);
        if respond_full(stream, status, &body, skipped, 1, content_type, &extra).is_err() {
            state.recorder.add_named("http.write_errors", 1);
        }
        span.stage("respond");
        state.log_access(
            &span,
            endpoint,
            status,
            "overload_exempt",
            body.len() as u64,
        );
    } else {
        state.recorder.add_named("http.shed.queue_full", 1);
        state.recorder.add_named("http.shed_total", 1);
        state.recorder.add_named(status_key(503), 1);
        let body = "{\"error\":\"server overloaded, admission queue full\",\"shed\":true}";
        let retry = state.retry_after_secs();
        if respond_retry(stream, 503, body, retry).is_err() {
            state.recorder.add_named("http.write_errors", 1);
        }
    }
}

/// The `X-Gsb-Trace` / `X-Gsb-Trace-Ns` response headers for a span.
fn trace_headers(span: &SpanRecorder) -> [(&'static str, String); 2] {
    [
        ("X-Gsb-Trace", span.trace_id().to_string()),
        ("X-Gsb-Trace-Ns", span.total_ns().to_string()),
    ]
}

/// The request's trace id: an incoming valid `X-Gsb-Trace` header wins,
/// else the server's seeded generator supplies one.
fn resolve_trace_id(state: &ServeState, head: &str) -> String {
    match header_value(head, "x-gsb-trace") {
        Some(v) if valid_trace_id(v) => v.to_string(),
        _ => state.next_trace_id(),
    }
}

/// Case-insensitive lookup of one request-header value.
pub(crate) fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    for line in head.lines().skip(1) {
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().eq_ignore_ascii_case(name) {
                return Some(value.trim());
            }
        }
    }
    None
}

/// Trait bridge: `AtomicRecorder::add` takes `&'static str`; this
/// helper keeps call sites tidy.
pub(crate) trait AddNamed {
    fn add_named(&self, key: &'static str, delta: u64);
}

impl AddNamed for AtomicRecorder {
    fn add_named(&self, key: &'static str, delta: u64) {
        self.counter(key).add(delta);
    }
}

/// Read the request head incrementally (progress bounded by the
/// request budget, size bounded by `max_header_bytes`), answer it,
/// close. One request per connection by design: `Connection: close`
/// makes drain semantics ("no truncated responses") auditable.
fn handle_connection(stream: &mut TcpStream, accepted_at: Instant, state: &ServeState) {
    let config = &state.config;
    // The span's clock starts at accept: the first stage is the queue
    // wait this request already paid for.
    let mut span = SpanRecorder::started_at(String::new(), accepted_at);
    span.stage("queue");
    // The budget already paid for queueing; a request that spent it all
    // waiting is shed rather than started.
    if accepted_at.elapsed() >= config.request_deadline {
        state.shed(
            stream,
            503,
            "request exceeded its deadline budget while queued",
            "http.shed.deadline",
        );
        state.log_access(&span, "unparsed", 503, "deadline", 0);
        return;
    }

    let mut buf = vec![0u8; config.max_header_bytes.max(64)];
    let mut used = 0usize;
    let head_len = loop {
        let Some(remaining) = config.request_deadline.checked_sub(accepted_at.elapsed()) else {
            // Anti-slow-loris: each read made "progress", but the head
            // never completed within the budget.
            state.shed(
                stream,
                408,
                "request header did not complete within the deadline budget",
                "http.shed.slow_client",
            );
            span.stage("parse");
            state.log_access(&span, "unparsed", 408, "slow_client", 0);
            return;
        };
        if used == buf.len() {
            state.recorder.add_named("http.bad_request.requests", 1);
            state.recorder.add_named(status_key(431), 1);
            if respond(stream, 431, "{\"error\":\"request header too large\"}", 0).is_err() {
                state.recorder.add_named("http.write_errors", 1);
            }
            span.stage("parse");
            state.log_access(&span, "bad_request", 431, "header_too_large", 0);
            return;
        }
        let per_read = remaining.min(config.deadline).max(Duration::from_millis(1));
        let _ = stream.set_read_timeout(Some(per_read));
        match stream.read(&mut buf[used..]) {
            Ok(0) => return, // peer closed before sending a request
            Ok(k) => {
                used += k;
                if let Some(end) = find_head_end(&buf[..used]) {
                    break end;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Read timed out: loop back so the budget check above
                // decides between another read and a 408.
                continue;
            }
            Err(_) => {
                // Connection reset or similar: nothing to answer.
                state.recorder.add_named("http.read_errors", 1);
                return;
            }
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_len]);
    let first = head.lines().next().unwrap_or("");
    let (route, limit) = parse_route(first);
    let endpoint = route.endpoint();
    span.set_trace_id(resolve_trace_id(state, &head));
    span.stage("parse");

    // Caller-supplied deadline (`X-Gsb-Deadline-Ms`, measured from our
    // accept): the router carves per-try budgets from its own request
    // deadline and propagates the remainder, so a backend that cannot
    // start in time sheds instead of computing an answer nobody is
    // waiting for.
    if let Some(ms) = header_value(&head, "x-gsb-deadline-ms").and_then(|v| v.parse::<u64>().ok()) {
        if accepted_at.elapsed() >= Duration::from_millis(ms) {
            state.shed(
                stream,
                503,
                "caller deadline already expired",
                "http.shed.deadline",
            );
            state.log_access(&span, endpoint, 503, "caller_deadline", 0);
            return;
        }
    }

    // Rate limiting sits between parse and execution: cheap typed 429s
    // under saturation, no index work spent on a shed request.
    // `/health` and the metrics endpoints are exempt so liveness probes
    // and scrapes pass during overload.
    if !admission_exempt(endpoint) {
        if let Some(buckets) = &state.buckets {
            if !buckets.try_take(endpoint) {
                state.recorder.add_named(rate_limited_key(endpoint), 1);
                state.recorder.add_named("http.rate_limited_total", 1);
                state.recorder.add_named(status_key(429), 1);
                span.stage("admission");
                let extra = trace_headers(&span);
                if respond_full(
                    stream,
                    429,
                    "{\"error\":\"rate limit exceeded for this endpoint\"}",
                    0,
                    1,
                    CONTENT_TYPE_JSON,
                    &extra,
                )
                .is_err()
                {
                    state.recorder.add_named("http.write_errors", 1);
                }
                span.stage("respond");
                state.log_access(&span, endpoint, 429, "rate_limited", 0);
                return;
            }
        }
    }
    span.stage("admission");

    let index = state.index();
    let started = Instant::now();
    let (status, body, skipped, content_type) = execute(state, &index, &route, limit, &mut span);
    state.recorder.add_named(requests_key(endpoint), 1);
    state.recorder.add_named(status_key(status), 1);
    state
        .recorder
        .histogram(latency_key(endpoint))
        .observe(started.elapsed().as_nanos() as u64);
    if skipped > 0 {
        state.recorder.add_named("http.degraded_total", 1);
    }
    let extra = trace_headers(&span);
    if respond_full(stream, status, &body, skipped, 1, content_type, &extra).is_err() {
        state.recorder.add_named("http.write_errors", 1);
    }
    span.stage("respond");
    let cause = if skipped > 0 { "degraded_exact" } else { "" };
    state.log_access(&span, endpoint, status, cause, body.len() as u64);
}

pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// The default response content type.
pub(crate) const CONTENT_TYPE_JSON: &str = "application/json";

/// Prometheus text exposition content type.
pub(crate) const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Write one complete response. Every response closes the connection
/// and carries an exact `Content-Length`; every error/shed status also
/// carries `Retry-After`, and a degraded-exact answer is marked with
/// `X-Gsb-Degraded: <skipped ids>`.
fn respond(stream: &mut TcpStream, status: u16, body: &str, degraded: u64) -> std::io::Result<()> {
    respond_full(stream, status, body, degraded, 1, CONTENT_TYPE_JSON, &[])
}

/// [`respond`] with an explicit queue-depth-scaled `Retry-After`
/// (shed paths; see [`ServeState::retry_after_secs`]).
fn respond_retry(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    retry_after_secs: u32,
) -> std::io::Result<()> {
    respond_full(
        stream,
        status,
        body,
        0,
        retry_after_secs,
        CONTENT_TYPE_JSON,
        &[],
    )
}

/// [`respond`] with an explicit content type and extra headers (the
/// trace id/total pair).
pub(crate) fn respond_full(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    degraded: u64,
    retry_after_secs: u32,
    content_type: &str,
    extra: &[(&'static str, String)],
) -> std::io::Result<()> {
    gsb_core::failpoint::inject("serve.respond")?;
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let retry_after = if status >= 400 {
        format!("Retry-After: {}\r\n", retry_after_secs.clamp(1, 8))
    } else {
        String::new()
    };
    let degraded_header = if degraded > 0 {
        format!("X-Gsb-Degraded: {degraded}\r\n")
    } else {
        String::new()
    };
    let mut extra_headers = String::new();
    for (name, value) in extra {
        extra_headers.push_str(name);
        extra_headers.push_str(": ");
        extra_headers.push_str(value);
        extra_headers.push_str("\r\n");
    }
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry_after}{degraded_header}{extra_headers}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A parsed request target, ready for rate limiting and execution.
pub(crate) enum Route {
    /// `/` or `/health`.
    Health,
    /// `/ready` — readiness (index loaded *and* not draining),
    /// distinct from liveness: a draining server is alive but not
    /// ready, so router probes eject it before the drain sweep sheds.
    Ready,
    /// `/stats`.
    Stats,
    /// `/get/<id>` — one clique by id (the router's unit of routing).
    Get(u64),
    /// `/max`.
    Max,
    /// `/containing/<v>`.
    Containing(u32),
    /// `/size/<lo>/<hi>`.
    Size(u32, u32),
    /// `/overlap/<v>/<w>`.
    Overlap(u32, u32),
    /// `/metrics` — Prometheus text exposition.
    Metrics,
    /// `/metrics-json` — the shutdown metrics snapshot, live.
    MetricsJson,
    /// Unknown path.
    NotFound,
    /// Non-GET method.
    MethodNotAllowed,
    /// Malformed request line or parameters.
    Bad(&'static str),
}

impl Route {
    pub(crate) fn endpoint(&self) -> &'static str {
        match self {
            Route::Health => "health",
            Route::Ready => "ready",
            Route::Stats => "stats",
            Route::Get(_) => "get",
            Route::Max => "max",
            Route::Containing(_) => "containing",
            Route::Size(..) => "size",
            Route::Overlap(..) => "overlap",
            Route::Metrics => "metrics",
            Route::MetricsJson => "metrics_json",
            Route::NotFound => "not_found",
            Route::MethodNotAllowed | Route::Bad(_) => "bad_request",
        }
    }
}

/// Parse the request line into a route + result limit. Total function:
/// any garbage maps to a typed `Route` variant, never a panic.
pub(crate) fn parse_route(request_line: &str) -> (Route, usize) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return (Route::MethodNotAllowed, 0);
    }
    if target.is_empty() || target.len() > 2048 {
        return (Route::Bad("malformed request target"), 0);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let limit = parse_limit(query);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let route = match segments.as_slice() {
        [] | ["health"] => Route::Health,
        ["ready"] => Route::Ready,
        ["stats"] => Route::Stats,
        ["max"] => Route::Max,
        ["get", id] => match id.parse::<u64>() {
            Ok(id) => Route::Get(id),
            Err(_) => Route::Bad("clique id must be a number"),
        },
        ["metrics"] => Route::Metrics,
        ["metrics-json"] => Route::MetricsJson,
        ["containing", v] => match v.parse::<u32>() {
            Ok(v) => Route::Containing(v),
            Err(_) => Route::Bad("vertex must be a number"),
        },
        ["size", lo, hi] => match (lo.parse::<u32>(), hi.parse::<u32>()) {
            (Ok(lo), Ok(hi)) if lo <= hi => Route::Size(lo, hi),
            _ => Route::Bad("size range must be /size/<lo>/<hi> with lo <= hi"),
        },
        ["overlap", v, w] => match (v.parse::<u32>(), w.parse::<u32>()) {
            (Ok(v), Ok(w)) => Route::Overlap(v, w),
            _ => Route::Bad("vertices must be numbers"),
        },
        _ => Route::NotFound,
    };
    (route, limit)
}

/// Execute a parsed route. Returns status, body, the count of ids
/// skipped because their block is quarantined (degraded-exact), and the
/// content type. Index lookups record their split into the span: the
/// `postings` stage covers id-list reads and intersection, the `blocks`
/// stage covers materializing cliques from store blocks (cache hits and
/// decodes alike — the reader's `gsb_index_*` counters split those).
fn execute(
    state: &ServeState,
    index: &CliqueIndex,
    route: &Route,
    limit: usize,
    span: &mut SpanRecorder,
) -> (u16, String, u64, &'static str) {
    let json = CONTENT_TYPE_JSON;
    match route {
        Route::Health => (200, "{\"status\":\"ok\"}".into(), 0, json),
        Route::Ready => {
            if state.draining.load(Ordering::Acquire) {
                (503, "{\"ready\":false,\"draining\":true}".into(), 0, json)
            } else {
                (
                    200,
                    format!(
                        "{{\"ready\":true,\"draining\":false,\"generation\":{},\"cliques\":{}}}",
                        index.generation(),
                        index.len()
                    ),
                    0,
                    json,
                )
            }
        }
        Route::Stats => (200, stats_json(index), 0, json),
        Route::Get(id) => {
            // tombstoned ids decode fine but are no longer part of the
            // served set — a dead id answers like a missing one
            if !index.is_live(*id) {
                return (
                    404,
                    format!("{{\"error\":\"no clique with id {id}\"}}"),
                    0,
                    json,
                );
            }
            let result = index.get(*id);
            span.stage("blocks");
            match result {
                Ok(c) => (
                    200,
                    format!(
                        "{{\"id\":{id},\"size\":{},\"clique\":{}}}",
                        c.len(),
                        json_ids(&c)
                    ),
                    0,
                    json,
                ),
                Err(_) if *id >= index.len() => (
                    404,
                    format!("{{\"error\":\"no clique with id {id}\"}}"),
                    0,
                    json,
                ),
                Err(e) => (500, error_json(&e), 0, json),
            }
        }
        Route::Metrics => (200, render_promtext(state, index), 0, CONTENT_TYPE_PROM),
        Route::MetricsJson => (200, state.live_metrics_json(), 0, json),
        Route::Max => {
            let result = index.max_clique();
            span.stage("blocks");
            match result {
                Ok(Some(c)) => (
                    200,
                    format!("{{\"size\":{},\"clique\":{}}}", c.len(), json_ids(&c)),
                    0,
                    json,
                ),
                Ok(None) => (200, "{\"size\":0,\"clique\":[]}".into(), 0, json),
                Err(e) => (500, error_json(&e), 0, json),
            }
        }
        Route::Containing(v) => {
            let ids = index.containing(*v);
            span.stage("postings");
            let result = ids.and_then(|ids| {
                index
                    .materialize_degraded(ids.iter().take(limit).copied())
                    .map(|d| (ids, d))
            });
            span.stage("blocks");
            match result {
                Ok((ids, d)) => (
                    200,
                    format!(
                        "{{\"vertex\":{v},\"count\":{},\"ids\":{},\"cliques\":{}{}}}",
                        ids.len(),
                        json_u64s(&ids[..ids.len().min(limit)]),
                        json_cliques(&d.cliques),
                        degraded_field(d.skipped),
                    ),
                    d.skipped,
                    json,
                ),
                Err(e) => (500, error_json(&e), 0, json),
            }
        }
        Route::Size(lo, hi) => {
            // tombstone-aware: the run table filtered by the dead set,
            // so chained and compacted indexes answer identically
            let ids = index.ids_of_size(*lo, *hi);
            span.stage("postings");
            let count = ids.len() as u64;
            let first_id = ids.first().copied().unwrap_or(0);
            let take = (count as usize).min(limit);
            let result = index.materialize_degraded(ids.into_iter().take(take));
            span.stage("blocks");
            match result {
                Ok(d) => (
                    200,
                    format!(
                        "{{\"min\":{lo},\"max\":{hi},\"count\":{count},\"first_id\":{},\"cliques\":{}{}}}",
                        first_id,
                        json_cliques(&d.cliques),
                        degraded_field(d.skipped),
                    ),
                    d.skipped,
                    json,
                ),
                Err(e) => (500, error_json(&e), 0, json),
            }
        }
        Route::Overlap(v, w) => {
            let ids = index.overlap(*v, *w);
            span.stage("postings");
            let result = ids.and_then(|ids| {
                index
                    .materialize_degraded(ids.iter().take(limit).copied())
                    .map(|d| (ids, d))
            });
            span.stage("blocks");
            match result {
                Ok((ids, d)) => (
                    200,
                    format!(
                        "{{\"v\":{v},\"w\":{w},\"count\":{},\"ids\":{},\"cliques\":{}{}}}",
                        ids.len(),
                        json_u64s(&ids[..ids.len().min(limit)]),
                        json_cliques(&d.cliques),
                        degraded_field(d.skipped),
                    ),
                    d.skipped,
                    json,
                ),
                Err(e) => (500, error_json(&e), 0, json),
            }
        }
        Route::NotFound => (404, "{\"error\":\"no such endpoint\"}".into(), 0, json),
        Route::MethodNotAllowed => (405, "{\"error\":\"only GET is supported\"}".into(), 0, json),
        Route::Bad(message) => (400, format!("{{\"error\":\"{message}\"}}"), 0, json),
    }
}

/// The optional `"degraded":N` JSON suffix (empty for complete answers,
/// so healthy responses are byte-identical to the pre-quarantine ones).
fn degraded_field(skipped: u64) -> String {
    if skipped == 0 {
        String::new()
    } else {
        format!(",\"degraded\":{skipped}")
    }
}

fn parse_limit(query: &str) -> usize {
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("limit=") {
            if let Ok(k) = v.parse::<usize>() {
                return k;
            }
        }
    }
    1000
}

fn stats_json(index: &CliqueIndex) -> String {
    let s = index.stats();
    let histogram: Vec<String> = s
        .size_histogram
        .iter()
        .map(|(size, count)| format!("[{size},{count}]"))
        .collect();
    format!(
        "{{\"n\":{},\"cliques\":{},\"max_clique\":{},\"blocks\":{},\"store_bytes\":{},\"postings_bytes\":{},\"generation\":{},\"quarantined_blocks\":{},\"live\":{},\"tombstones\":{},\"delta_generations\":{},\"size_histogram\":[{}]}}",
        s.n,
        s.cliques,
        s.max_clique,
        s.blocks,
        s.store_bytes,
        s.postings_bytes,
        index.generation(),
        index.quarantined_blocks().len(),
        s.live,
        s.tombstones,
        s.delta_generations,
        histogram.join(",")
    )
}

fn error_json(e: &gsb_core::StoreError) -> String {
    format!("{{\"error\":{:?}}}", e.to_string())
}

fn json_ids(c: &[u32]) -> String {
    let items: Vec<String> = c.iter().map(u32::to_string).collect();
    format!("[{}]", items.join(","))
}

fn json_u64s(ids: &[u64]) -> String {
    let items: Vec<String> = ids.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn json_cliques(cliques: &[Clique]) -> String {
    let items: Vec<String> = cliques.iter().map(|c| json_ids(c)).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn limit_parsing() {
        assert_eq!(parse_limit(""), 1000);
        assert_eq!(parse_limit("limit=5"), 5);
        assert_eq!(parse_limit("a=1&limit=7"), 7);
        assert_eq!(parse_limit("limit=x"), 1000);
    }

    #[test]
    fn route_parsing_is_total() {
        assert!(matches!(
            parse_route("GET /health HTTP/1.1").0,
            Route::Health
        ));
        assert!(matches!(parse_route("GET / HTTP/1.1").0, Route::Health));
        assert!(matches!(
            parse_route("GET /containing/7 HTTP/1.1").0,
            Route::Containing(7)
        ));
        assert!(matches!(
            parse_route("GET /size/3/5 HTTP/1.1").0,
            Route::Size(3, 5)
        ));
        assert!(matches!(
            parse_route("GET /size/5/3 HTTP/1.1").0,
            Route::Bad(_)
        ));
        assert!(matches!(
            parse_route("POST /health HTTP/1.1").0,
            Route::MethodNotAllowed
        ));
        assert!(matches!(parse_route("").0, Route::MethodNotAllowed));
        assert!(matches!(
            parse_route("GET /nope HTTP/1.1").0,
            Route::NotFound
        ));
        let long = format!("GET /{} HTTP/1.1", "a".repeat(4000));
        assert!(matches!(parse_route(&long).0, Route::Bad(_)));
        assert_eq!(parse_route("GET /max?limit=3 HTTP/1.1").1, 3);
    }

    #[test]
    fn metrics_routes_parse_and_are_admission_exempt() {
        assert!(matches!(
            parse_route("GET /metrics HTTP/1.1").0,
            Route::Metrics
        ));
        assert!(matches!(
            parse_route("GET /metrics-json HTTP/1.1").0,
            Route::MetricsJson
        ));
        assert!(admission_exempt("health"));
        assert!(admission_exempt("ready"));
        assert!(admission_exempt("metrics"));
        assert!(admission_exempt("metrics_json"));
        assert!(!admission_exempt("containing"));
        assert!(!admission_exempt("stats"));
        assert!(!admission_exempt("get"));
    }

    #[test]
    fn ready_and_get_routes_parse() {
        assert!(matches!(parse_route("GET /ready HTTP/1.1").0, Route::Ready));
        assert!(matches!(
            parse_route("GET /get/42 HTTP/1.1").0,
            Route::Get(42)
        ));
        assert!(matches!(
            parse_route("GET /get/x HTTP/1.1").0,
            Route::Bad(_)
        ));
        assert_eq!(Route::Ready.endpoint(), "ready");
        assert_eq!(Route::Get(0).endpoint(), "get");
    }

    #[test]
    fn retry_after_scales_with_queue_depth_and_stays_bounded() {
        let scale = |depth: usize, limit: usize| {
            let limit = limit.max(1);
            let depth = depth.min(limit);
            (1 + (7 * depth) / limit) as u32
        };
        assert_eq!(scale(0, 128), 1);
        assert_eq!(scale(64, 128), 4);
        assert_eq!(scale(128, 128), 8);
        // depth beyond limit (racy reads) still clamps to the cap
        assert_eq!(scale(10_000, 128), 8);
        // a zero limit cannot divide by zero
        assert_eq!(scale(5, 0), 8);
    }

    #[test]
    fn header_value_is_case_insensitive_and_trimmed() {
        let head = "GET / HTTP/1.1\r\nHost: x\r\nX-Gsb-Trace:  abc-123 \r\n\r\n";
        assert_eq!(header_value(head, "x-gsb-trace"), Some("abc-123"));
        assert_eq!(header_value(head, "host"), Some("x"));
        assert_eq!(header_value(head, "missing"), None);
    }

    #[test]
    fn status_keys_are_distinct_per_status() {
        let mut seen = std::collections::BTreeSet::new();
        for (_, code) in STATUS_LABELS {
            assert!(seen.insert(status_key(code)), "duplicate for {code}");
        }
        assert_eq!(status_key(418), "http.status.other");
    }

    #[test]
    fn token_bucket_drains_and_refills() {
        let b = TokenBuckets::new(1000.0, 2);
        assert!(b.try_take("max"));
        assert!(b.try_take("max"));
        // burst of 2 exhausted; other endpoints unaffected
        assert!(!b.try_take("max"));
        assert!(b.try_take("stats"));
        // 1000 tokens/s refill: a couple of ms is plenty for one token
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.try_take("max"));
    }

    #[test]
    fn metrics_json_shape() {
        let r = AtomicRecorder::new();
        r.counter(requests_key("containing")).add(3);
        r.histogram(latency_key("containing")).observe(1500);
        r.counter("http.shed_total").add(2);
        r.counter("http.shed.queue_full").add(2);
        let json = render_metrics(&r, 5, 3, Duration::from_millis(1200));
        let parsed = gsb_telemetry::json::parse(&json).expect("valid metrics json");
        assert_eq!(parsed.u64_or_zero("connections"), 5);
        assert_eq!(parsed.u64_or_zero("requests"), 3);
        assert_eq!(parsed.u64_or_zero("shed_total"), 2);
        let shed = parsed.get("shed").expect("shed breakdown");
        assert_eq!(shed.u64_or_zero("queue_full"), 2);
        let endpoints = parsed.get("endpoints").expect("endpoints object");
        let containing = endpoints.get("containing").expect("containing entry");
        assert_eq!(containing.u64_or_zero("requests"), 3);
        assert!(containing.u64_or_zero("p99_ns") >= 1500);
    }
}
