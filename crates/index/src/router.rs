//! `gsb router` — a fault-tolerant front for a sharded, replicated
//! tier of `gsb serve` backends.
//!
//! One `gsb serve` process is a single fault domain: a stall, crash,
//! or corrupt block takes the whole query surface down. The router
//! turns ordinary backends into a survivable tier without any backend
//! cooperation beyond the HTTP surface they already have:
//!
//! * **Static topology.** A text file (see [`Topology`]) lists shards
//!   by global clique-id range — valid because enumeration order is
//!   size order, so contiguous id ranges are also contiguous size
//!   ranges (DESIGN.md §11) — and N replica addresses per shard.
//!   `containing`/`overlap` scatter-gather across every shard;
//!   `of_size` goes only to the shards whose size coverage intersects
//!   the query; `get` goes to the owning shard (global id − `id_lo`);
//!   `max` goes to the last shard (largest sizes sort last).
//! * **Circuit breakers.** Every backend carries a closed → open →
//!   half-open breaker driven by *passive* failure accounting on the
//!   request path and *active* `GET /ready` probes (a draining backend
//!   answers 503 there first, so it is ejected before it sheds). After
//!   `breaker_cooldown` one half-open trial is admitted; success
//!   closes the breaker, failure re-opens it.
//! * **Deadline-carved retries with jittered backoff.** Every try gets
//!   a timeout carved from what is left of the request deadline
//!   (capped at `try_timeout`), and the remaining budget is propagated
//!   to the backend via `X-Gsb-Deadline-Ms` so backends shed work the
//!   router has already given up on. Failed tries fail over to the
//!   next replica after a seeded, jittered exponential backoff
//!   ([`gsb_core::RetryPolicy`]).
//! * **Tail-latency hedging.** When a try is slower than the shard's
//!   observed `hedge_percentile` latency (floored at `hedge_min`), a
//!   second try races on another replica; the first answer wins and
//!   the loser is abandoned (its result is drained off-path for
//!   breaker accounting).
//! * **Degraded-exact partial answers.** If every replica of a shard
//!   is down, scatter queries answer `200` from the surviving shards
//!   with `X-Gsb-Degraded` and a `"missing_shards"` JSON field —
//!   never a blind 500 — extending the degraded-exact convention of
//!   the backend's block quarantine (whose `"degraded"` counts also
//!   pass through). Only when *no* shard has a live replica does the
//!   router answer a typed 503.
//!
//! The front reuses the serving substrate: bounded admission queue
//! with typed sheds, request-deadline budget from accept, worker panic
//! containment, `X-Gsb-Trace` propagation to backends (so `gsb tail`
//! stitches router→backend spans), and `/metrics` Prometheus output
//! with per-backend breaker-state gauges and hedge/retry counters.

use crate::server::{
    find_head_end, header_value, latency_key, parse_route, requests_key, respond_full, status_key,
    AddNamed, Route, CONTENT_TYPE_JSON, CONTENT_TYPE_PROM, ENDPOINTS, STATUS_LABELS,
};
use gsb_core::supervise::SplitMix64;
use gsb_core::{RetryPolicy, ShutdownToken, StoreError};
use gsb_telemetry::json::{parse as json_parse, JsonValue};
use gsb_telemetry::promtext::{PromKind, PromWriter};
use gsb_telemetry::trace::{valid_trace_id, SpanRecorder, TraceIdGen};
use gsb_telemetry::AtomicRecorder;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Magic first line of a topology file.
const TOPOLOGY_MAGIC: &str = "gsb-topology v1";

/// One shard of the tier: its slice of the global clique-id space, the
/// clique sizes it covers, and the replica addresses serving it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// First global clique id owned (inclusive).
    pub id_lo: u64,
    /// One past the last global clique id owned (exclusive).
    pub id_hi: u64,
    /// Smallest clique size stored in the shard (inclusive).
    pub size_lo: u32,
    /// Largest clique size stored in the shard (inclusive).
    pub size_hi: u32,
    /// Replica addresses (`ip:port`), each an ordinary `gsb serve`.
    pub replicas: Vec<String>,
}

/// The static routing table: shards in ascending, contiguous id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    /// The shards, ascending by id range.
    pub shards: Vec<ShardSpec>,
}

impl Topology {
    /// Parse the greppable text format:
    ///
    /// ```text
    /// gsb-topology v1
    /// # comments and blank lines are ignored
    /// shard=0 ids=0..150 sizes=3..5 replicas=127.0.0.1:7701,127.0.0.1:7702
    /// shard=1 ids=150..235 sizes=5..9 replicas=127.0.0.1:7703,127.0.0.1:7704
    /// ```
    ///
    /// `ids` is a half-open global clique-id range; ranges must be
    /// contiguous from 0. `sizes` is the inclusive clique-size
    /// coverage (`of_size` routing). Every replica must parse as a
    /// socket address.
    pub fn from_text(text: &str) -> Result<Topology, StoreError> {
        const CTX: &str = "topology file";
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(TOPOLOGY_MAGIC) {
            return Err(StoreError::Codec {
                context: "topology file: missing `gsb-topology v1` header",
            });
        }
        let mut shards = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut shard_no = None;
            let mut ids = None;
            let mut sizes = None;
            let mut replicas: Vec<String> = Vec::new();
            for token in line.split_whitespace() {
                let Some((key, value)) = token.split_once('=') else {
                    return Err(StoreError::Codec { context: CTX });
                };
                match key {
                    "shard" => {
                        shard_no = Some(value.parse::<usize>().map_err(|_| StoreError::Codec {
                            context: "topology file: shard ordinal",
                        })?);
                    }
                    "ids" => ids = Some(parse_range_u64(value)?),
                    "sizes" => sizes = Some(parse_range_u32(value)?),
                    "replicas" => {
                        for addr in value.split(',').filter(|a| !a.is_empty()) {
                            addr.parse::<SocketAddr>().map_err(|_| StoreError::Codec {
                                context: "topology file: replica is not ip:port",
                            })?;
                            replicas.push(addr.to_string());
                        }
                    }
                    _ => return Err(StoreError::Codec { context: CTX }),
                }
            }
            let (Some(shard_no), Some((id_lo, id_hi)), Some((size_lo, size_hi))) =
                (shard_no, ids, sizes)
            else {
                return Err(StoreError::Codec {
                    context: "topology file: shard line needs shard=, ids=, sizes=, replicas=",
                });
            };
            if shard_no != shards.len() {
                return Err(StoreError::Codec {
                    context: "topology file: shard ordinals must ascend from 0",
                });
            }
            if replicas.is_empty() {
                return Err(StoreError::Codec {
                    context: "topology file: shard has no replicas",
                });
            }
            let expected_lo = shards.last().map_or(0, |s: &ShardSpec| s.id_hi);
            if id_lo != expected_lo || id_hi <= id_lo {
                return Err(StoreError::Codec {
                    context: "topology file: id ranges must be contiguous from 0",
                });
            }
            if size_hi < size_lo {
                return Err(StoreError::Codec {
                    context: "topology file: size range inverted",
                });
            }
            shards.push(ShardSpec {
                id_lo,
                id_hi,
                size_lo,
                size_hi,
                replicas,
            });
        }
        if shards.is_empty() {
            return Err(StoreError::Codec {
                context: "topology file: no shards",
            });
        }
        Ok(Topology { shards })
    }

    /// Render the same text [`Topology::from_text`] parses.
    pub fn to_text(&self) -> String {
        let mut out = String::from(TOPOLOGY_MAGIC);
        out.push('\n');
        for (k, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "shard={k} ids={}..{} sizes={}..{} replicas={}\n",
                s.id_lo,
                s.id_hi,
                s.size_lo,
                s.size_hi,
                s.replicas.join(",")
            ));
        }
        out
    }

    /// Read and parse a topology file.
    pub fn load(path: &Path) -> Result<Topology, StoreError> {
        let text = std::fs::read_to_string(path)?;
        Topology::from_text(&text)
    }

    /// The shard owning global clique id `id`, if any.
    pub fn owner_of(&self, id: u64) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| id >= s.id_lo && id < s.id_hi)
    }

    /// Shards whose size coverage intersects `lo..=hi`.
    pub fn shards_for_sizes(&self, lo: u32, hi: u32) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.size_lo <= hi && lo <= s.size_hi)
            .map(|(k, _)| k)
            .collect()
    }

    /// Total cliques across every shard.
    pub fn total_cliques(&self) -> u64 {
        self.shards.last().map_or(0, |s| s.id_hi)
    }
}

fn parse_range_u64(value: &str) -> Result<(u64, u64), StoreError> {
    let err = || StoreError::Codec {
        context: "topology file: malformed id range (want lo..hi)",
    };
    let (lo, hi) = value.split_once("..").ok_or_else(err)?;
    Ok((
        lo.parse().map_err(|_| err())?,
        hi.parse().map_err(|_| err())?,
    ))
}

fn parse_range_u32(value: &str) -> Result<(u32, u32), StoreError> {
    let err = || StoreError::Codec {
        context: "topology file: malformed size range (want lo..hi)",
    };
    let (lo, hi) = value.split_once("..").ok_or_else(err)?;
    Ok((
        lo.parse().map_err(|_| err())?,
        hi.parse().map_err(|_| err())?,
    ))
}

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Worker threads answering client requests.
    pub threads: usize,
    /// Per-connection socket read/write timeout (client side).
    pub deadline: Duration,
    /// Per-request deadline budget, measured from accept; every
    /// backend try is carved from what remains of it.
    pub request_deadline: Duration,
    /// Bounded accept-queue depth (excess shed with a typed 503).
    pub queue_limit: usize,
    /// Cap on request-head bytes.
    pub max_header_bytes: usize,
    /// Interval between active `/ready` probes of every backend.
    pub probe_interval: Duration,
    /// Consecutive failures (passive or probe) that open a breaker.
    pub breaker_failures: u32,
    /// How long an open breaker waits before admitting one half-open
    /// trial.
    pub breaker_cooldown: Duration,
    /// Upper bound on any single backend try (the actual timeout is
    /// `min(try_timeout, remaining deadline)`).
    pub try_timeout: Duration,
    /// Latency percentile of recent shard answers at which a hedged
    /// second try launches (`0.0` disables hedging).
    pub hedge_percentile: f64,
    /// Floor for the hedge delay (also used before any latency has
    /// been observed).
    pub hedge_min: Duration,
    /// Seed for retry jitter and replica rotation.
    pub retry_seed: u64,
    /// Seed for the router's trace-id generator.
    pub trace_seed: u64,
    /// Where to write the metrics JSON at shutdown.
    pub metrics_out: Option<PathBuf>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            threads: 4,
            deadline: Duration::from_secs(10),
            request_deadline: Duration::from_secs(5),
            queue_limit: 128,
            max_header_bytes: 8192,
            probe_interval: Duration::from_millis(250),
            breaker_failures: 3,
            breaker_cooldown: Duration::from_millis(1000),
            try_timeout: Duration::from_secs(1),
            hedge_percentile: 0.95,
            hedge_min: Duration::from_millis(20),
            retry_seed: 0x5343_3035,
            trace_seed: 17,
            metrics_out: None,
        }
    }
}

/// What the drained router did, returned by [`Router::run`].
#[derive(Clone, Debug, Default)]
pub struct RouterReport {
    /// Client connections accepted.
    pub connections: u64,
    /// Requests answered with a routed response (any status).
    pub requests: u64,
    /// Connections shed by admission control.
    pub shed: u64,
    /// Backend tries that failed and were retried/failed over.
    pub retries: u64,
    /// Hedged second tries launched.
    pub hedges: u64,
    /// Hedged tries that won the race.
    pub hedge_wins: u64,
    /// Scatter answers that were missing at least one shard.
    pub degraded_answers: u64,
    /// The metrics JSON (also written to `metrics_out` when set).
    pub metrics_json: String,
}

/// Breaker states double as the `gsb_router_backend_state` gauge.
const BREAKER_CLOSED: u8 = 0;
const BREAKER_HALF_OPEN: u8 = 1;
const BREAKER_OPEN: u8 = 2;

struct Breaker {
    state: u8,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    trial_inflight: bool,
}

/// One backend replica: address plus breaker and counters.
struct Backend {
    addr: String,
    sock: SocketAddr,
    shard: usize,
    breaker: Mutex<Breaker>,
    successes_total: AtomicU64,
    failures_total: AtomicU64,
    probe_failures_total: AtomicU64,
}

impl Backend {
    fn new(addr: &str, shard: usize) -> Backend {
        Backend {
            addr: addr.to_string(),
            // Topology validation guarantees this parses.
            sock: addr.parse().expect("validated socket address"),
            shard,
            breaker: Mutex::new(Breaker {
                state: BREAKER_CLOSED,
                consecutive_failures: 0,
                opened_at: None,
                trial_inflight: false,
            }),
            successes_total: AtomicU64::new(0),
            failures_total: AtomicU64::new(0),
            probe_failures_total: AtomicU64::new(0),
        }
    }

    /// May a request be sent to this backend right now? An open
    /// breaker admits one half-open trial once the cooldown elapses.
    fn admit(&self, cooldown: Duration) -> bool {
        let mut b = self.breaker.lock().unwrap();
        match b.state {
            BREAKER_CLOSED => true,
            BREAKER_HALF_OPEN => {
                if b.trial_inflight {
                    false
                } else {
                    b.trial_inflight = true;
                    true
                }
            }
            _ => {
                if b.opened_at.is_some_and(|t| t.elapsed() >= cooldown) && !b.trial_inflight {
                    b.state = BREAKER_HALF_OPEN;
                    b.trial_inflight = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&self) {
        self.successes_total.fetch_add(1, Ordering::Relaxed);
        let mut b = self.breaker.lock().unwrap();
        b.state = BREAKER_CLOSED;
        b.consecutive_failures = 0;
        b.opened_at = None;
        b.trial_inflight = false;
    }

    fn on_failure(&self, threshold: u32) {
        self.failures_total.fetch_add(1, Ordering::Relaxed);
        let mut b = self.breaker.lock().unwrap();
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        b.trial_inflight = false;
        if b.state == BREAKER_HALF_OPEN || b.consecutive_failures >= threshold.max(1) {
            b.state = BREAKER_OPEN;
            b.opened_at = Some(Instant::now());
        }
    }

    fn state_gauge(&self) -> u8 {
        self.breaker.lock().unwrap().state
    }
}

/// Recent shard latencies (winner tries only), for the hedge delay.
struct LatencyWindow {
    samples: Mutex<Vec<u64>>,
}

const LATENCY_WINDOW: usize = 128;

impl LatencyWindow {
    fn new() -> Self {
        LatencyWindow {
            samples: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, ns: u64) {
        let mut s = self.samples.lock().unwrap();
        if s.len() >= LATENCY_WINDOW {
            s.remove(0);
        }
        s.push(ns);
    }

    /// Upper bound of the `q` quantile over the window (None until a
    /// few samples exist — hedging then falls back to `hedge_min`).
    fn percentile(&self, q: f64) -> Option<Duration> {
        let s = self.samples.lock().unwrap();
        if s.len() < 8 {
            return None;
        }
        let mut sorted = s.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_nanos(sorted[rank.min(sorted.len() - 1)]))
    }
}

/// Everything the workers, accept loop, and prober share.
struct RouterState {
    topology: Topology,
    config: RouterConfig,
    /// `backends[shard][replica]`.
    backends: Vec<Vec<Arc<Backend>>>,
    recorder: AtomicRecorder,
    queue_depth: AtomicUsize,
    draining: AtomicBool,
    started: Instant,
    trace_ids: Mutex<TraceIdGen>,
    /// Round-robin cursor spreading load across replicas.
    rr: AtomicUsize,
    /// Per-shard latency windows feeding the hedge delay.
    latency: Vec<LatencyWindow>,
    /// Per-shard "no live replica" counters.
    shard_unavailable: Vec<AtomicU64>,
    /// Jitter source for retry backoff.
    rng: Mutex<SplitMix64>,
}

impl RouterState {
    fn next_trace_id(&self) -> String {
        self.trace_ids.lock().unwrap().next_id()
    }

    /// The hedge delay for `shard`: observed `hedge_percentile`
    /// latency, floored at `hedge_min`.
    fn hedge_delay(&self, shard: usize) -> Duration {
        let observed = self.latency[shard]
            .percentile(self.config.hedge_percentile)
            .unwrap_or(self.config.hedge_min);
        observed.max(self.config.hedge_min)
    }

    fn retry_after_secs(&self) -> u32 {
        let limit = self.config.queue_limit.max(1);
        let depth = self.queue_depth.load(Ordering::Acquire).min(limit);
        (1 + (7 * depth) / limit) as u32
    }

    /// Shed a client connection with a typed response (drains one
    /// bounded read first so the kernel does not RST the reply away).
    fn shed(&self, stream: &mut TcpStream, status: u16, message: &str, key: &'static str) {
        self.recorder.add_named(key, 1);
        self.recorder.add_named("http.shed_total", 1);
        self.recorder.add_named(status_key(status), 1);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut scratch = [0u8; 1024];
        let _ = stream.read(&mut scratch);
        let body = format!("{{\"error\":\"{message}\",\"shed\":true}}");
        let retry = self.retry_after_secs();
        if respond_full(stream, status, &body, 0, retry, CONTENT_TYPE_JSON, &[]).is_err() {
            self.recorder.add_named("http.write_errors", 1);
        }
    }

    fn live_metrics_json(&self) -> String {
        render_router_metrics_json(self)
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    topology: Topology,
    config: RouterConfig,
}

/// A client connection waiting in the admission queue.
struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

impl Router {
    /// Bind `addr` (port 0 picks a free port).
    pub fn bind(topology: Topology, addr: &str, config: RouterConfig) -> std::io::Result<Self> {
        Ok(Router {
            listener: TcpListener::bind(addr)?,
            topology,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Route until `shutdown` is requested, then drain exactly like
    /// the backend server: answer everything accepted, shed the
    /// backlog typed, join workers and the prober, export metrics.
    pub fn run(self, shutdown: &ShutdownToken) -> std::io::Result<RouterReport> {
        let started = Instant::now();
        self.listener.set_nonblocking(true)?;
        let backends: Vec<Vec<Arc<Backend>>> = self
            .topology
            .shards
            .iter()
            .enumerate()
            .map(|(k, s)| {
                s.replicas
                    .iter()
                    .map(|addr| Arc::new(Backend::new(addr, k)))
                    .collect()
            })
            .collect();
        let shard_count = self.topology.shards.len();
        let state = Arc::new(RouterState {
            topology: self.topology,
            backends,
            recorder: AtomicRecorder::new(),
            queue_depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            started,
            trace_ids: Mutex::new(TraceIdGen::seeded(self.config.trace_seed)),
            rr: AtomicUsize::new(0),
            latency: (0..shard_count).map(|_| LatencyWindow::new()).collect(),
            shard_unavailable: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            rng: Mutex::new(SplitMix64::new(self.config.retry_seed)),
            config: self.config.clone(),
        });

        let prober = {
            let state = Arc::clone(&state);
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("gsb-router-probe".into())
                .spawn(move || probe_loop(&state, &shutdown))?
        };
        let (tx, rx) = mpsc::channel::<Conn>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = self.config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gsb-router-{i}"))
                    .spawn(move || worker_loop(&rx, &state))?,
            );
        }

        let mut connections = 0u64;
        while !shutdown.is_requested() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    connections += 1;
                    state.recorder.add_named("http.connections", 1);
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(self.config.deadline));
                    let _ = stream.set_write_timeout(Some(self.config.deadline));
                    let _ = stream.set_nodelay(true);
                    let depth = state.queue_depth.load(Ordering::Acquire);
                    if depth >= self.config.queue_limit {
                        let mut stream = stream;
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                        state.shed(
                            &mut stream,
                            503,
                            "router overloaded, admission queue full",
                            "http.shed.queue_full",
                        );
                        continue;
                    }
                    let depth = state.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
                    state.recorder.gauge("http.queue_depth").set(depth as u64);
                    if tx
                        .send(Conn {
                            stream,
                            accepted_at: Instant::now(),
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    state.recorder.add_named("http.accept_errors", 1);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }

        state.draining.store(true, Ordering::Release);
        while let Ok((mut stream, _)) = self.listener.accept() {
            connections += 1;
            state.recorder.add_named("http.connections", 1);
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            state.shed(
                &mut stream,
                503,
                "router draining for shutdown",
                "http.shed.draining",
            );
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        let _ = prober.join();

        let mut requests = 0u64;
        for ep in ENDPOINTS {
            requests += state.recorder.counter(requests_key(ep)).get();
        }
        let metrics_json = render_router_metrics_json(&state);
        if let Some(path) = &self.config.metrics_out {
            let bytes = metrics_json.clone().into_bytes();
            RetryPolicy::default().run_io(|| {
                let tmp = path.with_extension("json.tmp");
                {
                    let mut f = std::fs::File::create(&tmp)?;
                    f.write_all(&bytes)?;
                    f.sync_all()?;
                }
                std::fs::rename(&tmp, path)
            })?;
        }
        Ok(RouterReport {
            connections,
            requests,
            shed: state.recorder.counter("http.shed_total").get(),
            retries: state.recorder.counter("router.retries").get(),
            hedges: state.recorder.counter("router.hedges").get(),
            hedge_wins: state.recorder.counter("router.hedge_wins").get(),
            degraded_answers: state.recorder.counter("router.degraded_answers").get(),
            metrics_json,
        })
    }
}

/// Active probing: every backend gets a `GET /ready` on each tick.
/// Success closes the breaker (recovery detection after restart);
/// failure counts toward opening it (fast ejection of killed or
/// draining backends, before clients pay a try-timeout to learn).
fn probe_loop(state: &RouterState, shutdown: &ShutdownToken) {
    const TICK: Duration = Duration::from_millis(10);
    let mut since = state.config.probe_interval; // probe immediately
    while !shutdown.is_requested() {
        if since < state.config.probe_interval {
            std::thread::sleep(TICK.min(state.config.probe_interval));
            since += TICK.min(state.config.probe_interval);
            continue;
        }
        since = Duration::ZERO;
        let timeout = state.config.probe_interval.min(Duration::from_millis(250));
        for shard in &state.backends {
            for backend in shard {
                match backend_fetch(&backend.sock, &backend.addr, "/ready", "", 0, timeout) {
                    Ok(resp) if resp.status == 200 => backend.on_success(),
                    _ => {
                        backend.probe_failures_total.fetch_add(1, Ordering::Relaxed);
                        backend.on_failure(state.config.breaker_failures);
                    }
                }
            }
        }
    }
}

/// One worker: pop client connections, answer them, contain panics.
fn worker_loop(rx: &Mutex<mpsc::Receiver<Conn>>, state: &RouterState) {
    loop {
        let conn = rx.lock().unwrap().recv();
        let Ok(mut conn) = conn else {
            break;
        };
        let depth = state.queue_depth.fetch_sub(1, Ordering::AcqRel) - 1;
        state.recorder.gauge("http.queue_depth").set(depth as u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_client(&mut conn.stream, conn.accepted_at, state)
        }));
        if outcome.is_err() {
            state.recorder.add_named("http.worker_panics", 1);
            state.recorder.add_named(status_key(500), 1);
            let _ = respond_full(
                &mut conn.stream,
                500,
                "{\"error\":\"internal error answering this request\"}",
                0,
                1,
                CONTENT_TYPE_JSON,
                &[],
            );
        }
    }
}

/// Read one client request head, route it, answer it.
fn handle_client(stream: &mut TcpStream, accepted_at: Instant, state: &RouterState) {
    let config = &state.config;
    if accepted_at.elapsed() >= config.request_deadline {
        state.shed(
            stream,
            503,
            "request exceeded its deadline budget while queued",
            "http.shed.deadline",
        );
        return;
    }
    let mut buf = vec![0u8; config.max_header_bytes.max(64)];
    let mut used = 0usize;
    let head_len = loop {
        let Some(remaining) = config.request_deadline.checked_sub(accepted_at.elapsed()) else {
            state.shed(
                stream,
                408,
                "request header did not complete within the deadline budget",
                "http.shed.slow_client",
            );
            return;
        };
        if used == buf.len() {
            state.recorder.add_named("http.bad_request.requests", 1);
            state.recorder.add_named(status_key(431), 1);
            let _ = respond_full(
                stream,
                431,
                "{\"error\":\"request header too large\"}",
                0,
                1,
                CONTENT_TYPE_JSON,
                &[],
            );
            return;
        }
        let per_read = remaining.min(config.deadline).max(Duration::from_millis(1));
        let _ = stream.set_read_timeout(Some(per_read));
        match stream.read(&mut buf[used..]) {
            Ok(0) => return,
            Ok(k) => {
                used += k;
                if let Some(end) = find_head_end(&buf[..used]) {
                    break end;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                state.recorder.add_named("http.read_errors", 1);
                return;
            }
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_len]);
    let first = head.lines().next().unwrap_or("");
    let (route, limit) = parse_route(first);
    let endpoint = route.endpoint();
    let trace = match header_value(&head, "x-gsb-trace") {
        Some(v) if valid_trace_id(v) => v.to_string(),
        _ => state.next_trace_id(),
    };
    let mut span = SpanRecorder::started_at(trace, accepted_at);
    span.stage("parse");

    let started = Instant::now();
    let (status, body, degraded, content_type) =
        dispatch(state, &route, limit, accepted_at, span.trace_id());
    span.stage("gather");
    state.recorder.add_named(requests_key(endpoint), 1);
    state.recorder.add_named(status_key(status), 1);
    state
        .recorder
        .histogram(latency_key(endpoint))
        .observe(started.elapsed().as_nanos() as u64);
    if degraded > 0 {
        state.recorder.add_named("router.degraded_answers", 1);
    }
    let extra = [
        ("X-Gsb-Trace", span.trace_id().to_string()),
        ("X-Gsb-Trace-Ns", span.total_ns().to_string()),
    ];
    if respond_full(stream, status, &body, degraded, 1, content_type, &extra).is_err() {
        state.recorder.add_named("http.write_errors", 1);
    }
}

/// The answer from one backend try.
struct BackendResponse {
    status: u16,
    body: String,
}

/// One HTTP GET against a backend, bounded by `timeout` end to end.
/// `deadline_ms` > 0 is propagated as `X-Gsb-Deadline-Ms`.
fn backend_fetch(
    sock: &SocketAddr,
    host: &str,
    path: &str,
    trace: &str,
    deadline_ms: u64,
    timeout: Duration,
) -> Result<BackendResponse, &'static str> {
    let started = Instant::now();
    let remaining = |started: Instant| {
        timeout
            .checked_sub(started.elapsed())
            .ok_or("backend try timed out")
    };
    let mut stream =
        TcpStream::connect_timeout(sock, remaining(started)?).map_err(|_| "connect failed")?;
    let _ = stream.set_nodelay(true);
    stream
        .set_write_timeout(Some(remaining(started)?.max(Duration::from_millis(1))))
        .map_err(|_| "socket setup failed")?;
    let trace_header = if trace.is_empty() {
        String::new()
    } else {
        format!("X-Gsb-Trace: {trace}\r\n")
    };
    let deadline_header = if deadline_ms > 0 {
        format!("X-Gsb-Deadline-Ms: {deadline_ms}\r\n")
    } else {
        String::new()
    };
    stream
        .write_all(
            format!(
                "GET {path} HTTP/1.1\r\nHost: {host}\r\n{trace_header}{deadline_header}Connection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .map_err(|_| "write failed")?;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let left = remaining(started)?.max(Duration::from_millis(1));
        stream
            .set_read_timeout(Some(left))
            .map_err(|_| "socket setup failed")?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => raw.extend_from_slice(&chunk[..k]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // remaining() errors out once the overall budget is gone
                continue;
            }
            Err(_) => return Err("read failed"),
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    let (head, body) = text.split_once("\r\n\r\n").ok_or("no header terminator")?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .ok_or("missing Content-Length")?;
    if body.len() != content_length {
        return Err("truncated body");
    }
    Ok(BackendResponse {
        status,
        body: body.to_string(),
    })
}

/// One result of a (possibly hedged) try race.
struct TryOutcome {
    backend: Arc<Backend>,
    hedged: bool,
    result: Result<BackendResponse, &'static str>,
    elapsed: Duration,
}

/// Ask `shard` for `path`, failing over across replicas with jittered
/// backoff and hedging slow tries. `None` means no replica answered
/// within the deadline — the shard is unavailable right now.
fn shard_request(
    state: &RouterState,
    shard: usize,
    path: &str,
    accepted: Instant,
    trace: &str,
) -> Option<BackendResponse> {
    const MIN_TRY: Duration = Duration::from_millis(5);
    let replicas = &state.backends[shard];
    let start = state.rr.fetch_add(1, Ordering::Relaxed);
    let policy = RetryPolicy {
        max_retries: 8,
        base_delay_ms: 2,
        max_delay_ms: 40,
        seed: state.config.retry_seed ^ (shard as u64).wrapping_mul(0x9E37_79B9),
    };
    let max_tries = replicas.len() * 2;
    for attempt in 0..max_tries {
        let Some(remaining) = state
            .config
            .request_deadline
            .checked_sub(accepted.elapsed())
        else {
            break;
        };
        if remaining < MIN_TRY {
            break;
        }
        // Prefer a breaker-admitted replica; when every breaker is
        // open (e.g. right after a restart, before a probe lands) fall
        // back to a last-chance direct try so a shard with one living
        // replica is never reported missing on breaker state alone.
        let order =
            |i: usize| -> &Arc<Backend> { &replicas[(start + attempt + i) % replicas.len()] };
        let mut primary = None;
        for i in 0..replicas.len() {
            if order(i).admit(state.config.breaker_cooldown) {
                primary = Some(Arc::clone(order(i)));
                break;
            }
        }
        let primary = primary.unwrap_or_else(|| Arc::clone(order(0)));
        let hedge_candidate = (0..replicas.len())
            .map(order)
            .find(|b| !Arc::ptr_eq(b, &primary) && b.state_gauge() != BREAKER_OPEN)
            .cloned();
        let try_timeout = remaining.min(state.config.try_timeout);
        let deadline_ms = remaining.as_millis() as u64;
        let (tx, rx) = mpsc::channel::<TryOutcome>();
        let mut inflight = 0usize;
        let spawn_try = |backend: Arc<Backend>, hedged: bool, tx: mpsc::Sender<TryOutcome>| {
            let path = path.to_string();
            let trace = trace.to_string();
            let timeout = try_timeout;
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let result = backend_fetch(
                    &backend.sock,
                    &backend.addr,
                    &path,
                    &trace,
                    deadline_ms,
                    timeout,
                );
                let _ = tx.send(TryOutcome {
                    backend,
                    hedged,
                    result,
                    elapsed: t0.elapsed(),
                });
            });
        };
        spawn_try(Arc::clone(&primary), false, tx.clone());
        inflight += 1;

        let hedge_delay = state.hedge_delay(shard).min(try_timeout / 2);
        let hedging = state.config.hedge_percentile > 0.0 && hedge_candidate.is_some();
        let race_deadline = Instant::now() + try_timeout + Duration::from_millis(50);
        let mut winner: Option<BackendResponse> = None;
        let mut hedge_launched = false;
        while inflight > 0 {
            let wait = if hedging && !hedge_launched {
                hedge_delay
            } else {
                race_deadline.saturating_duration_since(Instant::now())
            };
            match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
                Ok(outcome) => {
                    inflight -= 1;
                    match outcome.result {
                        Ok(resp) if resp.status < 429 => {
                            outcome.backend.on_success();
                            state.latency[shard].record(outcome.elapsed.as_nanos() as u64);
                            if outcome.hedged {
                                state.recorder.add_named("router.hedge_wins", 1);
                            }
                            winner = Some(resp);
                            break;
                        }
                        _ => {
                            // 429/5xx and transport failures all mean
                            // "this replica cannot serve right now".
                            outcome.backend.on_failure(state.config.breaker_failures);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if hedging && !hedge_launched {
                        hedge_launched = true;
                        state.recorder.add_named("router.hedges", 1);
                        if let Some(h) = &hedge_candidate {
                            spawn_try(Arc::clone(h), true, tx.clone());
                            inflight += 1;
                        }
                    } else {
                        // Race deadline passed: abandon what is still
                        // in flight (drained below for accounting).
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        drop(tx);
        if inflight > 0 {
            // Abandoned tries still resolve eventually; account their
            // breaker outcome off-path so a slow loser cannot delay
            // the answer we already have (the hedge contract).
            let threshold = state.config.breaker_failures;
            std::thread::spawn(move || {
                while let Ok(outcome) = rx.recv() {
                    match outcome.result {
                        Ok(resp) if resp.status < 429 => outcome.backend.on_success(),
                        _ => outcome.backend.on_failure(threshold),
                    }
                }
            });
        }
        if let Some(resp) = winner {
            return Some(resp);
        }
        state.recorder.add_named("router.retries", 1);
        // Jittered exponential backoff before the next replica, capped
        // so the sleep cannot eat the remaining deadline.
        let backoff = {
            let jitter = state.rng.lock().unwrap().below(3);
            policy.delay(attempt as u32) + Duration::from_millis(jitter)
        };
        let cap = state
            .config
            .request_deadline
            .checked_sub(accepted.elapsed())
            .unwrap_or(Duration::ZERO)
            / 4;
        std::thread::sleep(backoff.min(cap));
    }
    state.shard_unavailable[shard].fetch_add(1, Ordering::Relaxed);
    None
}

/// Scatter `path(shard)` to every shard in `shards` concurrently;
/// returns per-shard answers in input order (`None` = shard down).
fn scatter(
    state: &RouterState,
    shards: &[usize],
    path: &dyn Fn(usize) -> String,
    accepted: Instant,
    trace: &str,
) -> Vec<(usize, Option<BackendResponse>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|&shard| {
                let path = path(shard);
                scope.spawn(move || (shard, shard_request(state, shard, &path, accepted, trace)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Parsed fields of one backend list answer (`containing`/`overlap`/
/// `size`), with ids translated back into the global space.
#[derive(Default)]
struct Gathered {
    count: u64,
    ids: Vec<u64>,
    cliques: Vec<String>,
    degraded: u64,
    first_id: Option<u64>,
}

/// Merge one backend body into the gather, offsetting ids by the
/// shard's `id_lo`. Unparseable bodies count as a degraded shard
/// (the router never panics on backend bytes).
fn gather_list_body(g: &mut Gathered, body: &str, id_lo: u64) -> Result<(), ()> {
    let parsed = json_parse(body).map_err(|_| ())?;
    g.count += parsed.u64_or_zero("count");
    for id in parsed.u64_array("ids") {
        g.ids.push(id + id_lo);
    }
    if let Some(cliques) = parsed.get("cliques").and_then(JsonValue::as_array) {
        for c in cliques {
            g.cliques.push(render_clique(c));
        }
    }
    g.degraded += parsed.u64_or_zero("degraded");
    if let Some(first) = parsed.get("first_id").and_then(JsonValue::as_u64) {
        let global = first + id_lo;
        g.first_id = Some(g.first_id.map_or(global, |f: u64| f.min(global)));
    }
    Ok(())
}

/// Re-render one clique (a JSON array of vertex ids) compactly.
fn render_clique(c: &JsonValue) -> String {
    let items: Vec<String> = c
        .as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|v| v.as_u64())
        .map(|v| v.to_string())
        .collect();
    format!("[{}]", items.join(","))
}

/// The `"missing_shards":[..]` suffix (empty string when none, so
/// healthy answers are byte-identical to a single-server tier).
fn missing_field(missing: &[usize]) -> String {
    if missing.is_empty() {
        String::new()
    } else {
        let items: Vec<String> = missing.iter().map(usize::to_string).collect();
        format!(",\"missing_shards\":[{}]", items.join(","))
    }
}

fn degraded_suffix(degraded: u64) -> String {
    if degraded == 0 {
        String::new()
    } else {
        format!(",\"degraded\":{degraded}")
    }
}

/// Route one parsed request. Returns status, body, the degraded count
/// for the `X-Gsb-Degraded` header (missing shards + ids skipped by
/// backend quarantine), and the content type.
fn dispatch(
    state: &RouterState,
    route: &Route,
    limit: usize,
    accepted: Instant,
    trace: &str,
) -> (u16, String, u64, &'static str) {
    let json = CONTENT_TYPE_JSON;
    let all_shards: Vec<usize> = (0..state.topology.shards.len()).collect();
    match route {
        Route::Health => (
            200,
            "{\"status\":\"ok\",\"role\":\"router\"}".into(),
            0,
            json,
        ),
        Route::Ready => {
            let draining = state.draining.load(Ordering::Acquire);
            let live = live_shards(state);
            let ready = !draining && live == state.topology.shards.len();
            let status = if ready { 200 } else { 503 };
            (
                status,
                format!(
                    "{{\"ready\":{ready},\"draining\":{draining},\"shards\":{},\"live_shards\":{live}}}",
                    state.topology.shards.len()
                ),
                0,
                json,
            )
        }
        Route::Metrics => (200, render_router_promtext(state), 0, CONTENT_TYPE_PROM),
        Route::MetricsJson => (200, state.live_metrics_json(), 0, json),
        Route::Stats => {
            let answers = scatter(state, &all_shards, &|_| "/stats".into(), accepted, trace);
            let mut missing = Vec::new();
            let (mut n, mut cliques, mut max_clique) = (0u64, 0u64, 0u64);
            for (shard, resp) in &answers {
                match resp {
                    Some(r) if r.status == 200 => {
                        if let Ok(parsed) = json_parse(&r.body) {
                            n = n.max(parsed.u64_or_zero("n"));
                            cliques += parsed.u64_or_zero("cliques");
                            max_clique = max_clique.max(parsed.u64_or_zero("max_clique"));
                        } else {
                            missing.push(*shard);
                        }
                    }
                    _ => missing.push(*shard),
                }
            }
            if missing.len() == answers.len() {
                return all_down(&missing);
            }
            let degraded = missing.len() as u64;
            (
                200,
                format!(
                    "{{\"role\":\"router\",\"shards\":{},\"n\":{n},\"cliques\":{cliques},\"max_clique\":{max_clique}{}}}",
                    state.topology.shards.len(),
                    missing_field(&missing)
                ),
                degraded,
                json,
            )
        }
        Route::Get(gid) => {
            let Some(shard) = state.topology.owner_of(*gid) else {
                return (
                    404,
                    format!("{{\"error\":\"no clique with id {gid}\"}}"),
                    0,
                    json,
                );
            };
            let local = gid - state.topology.shards[shard].id_lo;
            match shard_request(state, shard, &format!("/get/{local}"), accepted, trace) {
                Some(r) if r.status == 200 => {
                    // Rewrite the backend's local id to the global one.
                    let clique = json_parse(&r.body)
                        .ok()
                        .and_then(|p| p.get("clique").map(render_clique));
                    match clique {
                        Some(c) => {
                            let size = c.matches(',').count() + usize::from(c != "[]");
                            (
                                200,
                                format!("{{\"id\":{gid},\"size\":{size},\"clique\":{c}}}"),
                                0,
                                json,
                            )
                        }
                        None => (
                            502,
                            "{\"error\":\"unparseable backend answer\"}".into(),
                            0,
                            json,
                        ),
                    }
                }
                Some(r) => (r.status, r.body, 0, json),
                None => shard_down(shard),
            }
        }
        Route::Max => {
            // Enumeration order is size order: the global maximum
            // clique lives in the last shard.
            let shard = state.topology.shards.len() - 1;
            match shard_request(state, shard, "/max", accepted, trace) {
                Some(r) => (r.status, r.body, 0, json),
                None => shard_down(shard),
            }
        }
        Route::Containing(v) => scatter_list(
            state,
            &all_shards,
            &|_| format!("/containing/{v}?limit={limit}"),
            &|g, missing| {
                format!(
                    "{{\"vertex\":{v},\"count\":{},\"ids\":{},\"cliques\":[{}]{}{}}}",
                    g.count,
                    render_ids(&g.ids, limit),
                    g.cliques[..g.cliques.len().min(limit)].join(","),
                    degraded_suffix(g.degraded),
                    missing_field(missing),
                )
            },
            accepted,
            trace,
        ),
        Route::Overlap(v, w) => scatter_list(
            state,
            &all_shards,
            &|_| format!("/overlap/{v}/{w}?limit={limit}"),
            &|g, missing| {
                format!(
                    "{{\"v\":{v},\"w\":{w},\"count\":{},\"ids\":{},\"cliques\":[{}]{}{}}}",
                    g.count,
                    render_ids(&g.ids, limit),
                    g.cliques[..g.cliques.len().min(limit)].join(","),
                    degraded_suffix(g.degraded),
                    missing_field(missing),
                )
            },
            accepted,
            trace,
        ),
        Route::Size(lo, hi) => {
            let shards = state.topology.shards_for_sizes(*lo, *hi);
            if shards.is_empty() {
                return (
                    200,
                    format!("{{\"min\":{lo},\"max\":{hi},\"count\":0,\"cliques\":[]}}"),
                    0,
                    json,
                );
            }
            scatter_list(
                state,
                &shards,
                &|_| format!("/size/{lo}/{hi}?limit={limit}"),
                &|g, missing| {
                    format!(
                        "{{\"min\":{lo},\"max\":{hi},\"count\":{},\"first_id\":{},\"cliques\":[{}]{}{}}}",
                        g.count,
                        g.first_id.unwrap_or(0),
                        g.cliques[..g.cliques.len().min(limit)].join(","),
                        degraded_suffix(g.degraded),
                        missing_field(missing),
                    )
                },
                accepted,
                trace,
            )
        }
        Route::NotFound => (404, "{\"error\":\"no such endpoint\"}".into(), 0, json),
        Route::MethodNotAllowed => (405, "{\"error\":\"only GET is supported\"}".into(), 0, json),
        Route::Bad(message) => (400, format!("{{\"error\":\"{message}\"}}"), 0, json),
    }
}

/// Scatter a list query and merge: surviving shards answer, missing
/// shards are reported in `missing_shards` + `X-Gsb-Degraded`. Only
/// all-shards-down yields a (typed) 503.
fn scatter_list(
    state: &RouterState,
    shards: &[usize],
    path: &dyn Fn(usize) -> String,
    render: &dyn Fn(&Gathered, &[usize]) -> String,
    accepted: Instant,
    trace: &str,
) -> (u16, String, u64, &'static str) {
    let answers = scatter(state, shards, path, accepted, trace);
    let mut g = Gathered::default();
    let mut missing = Vec::new();
    for (shard, resp) in &answers {
        match resp {
            Some(r) if r.status == 200 => {
                if gather_list_body(&mut g, &r.body, state.topology.shards[*shard].id_lo).is_err() {
                    missing.push(*shard);
                }
            }
            _ => missing.push(*shard),
        }
    }
    if missing.len() == answers.len() {
        return all_down(&missing);
    }
    g.ids.sort_unstable();
    let degraded = g.degraded + missing.len() as u64;
    let body = render(&g, &missing);
    (200, body, degraded, CONTENT_TYPE_JSON)
}

fn render_ids(ids: &[u64], limit: usize) -> String {
    let items: Vec<String> = ids[..ids.len().min(limit)]
        .iter()
        .map(u64::to_string)
        .collect();
    format!("[{}]", items.join(","))
}

/// Shards with at least one replica whose breaker is not open.
fn live_shards(state: &RouterState) -> usize {
    state
        .backends
        .iter()
        .filter(|replicas| replicas.iter().any(|b| b.state_gauge() != BREAKER_OPEN))
        .count()
}

/// A single-shard route found its shard down: typed 503, never a
/// blind 500. `missing_shards` names the culprit.
fn shard_down(shard: usize) -> (u16, String, u64, &'static str) {
    (
        503,
        format!("{{\"error\":\"no live replica for shard {shard}\",\"missing_shards\":[{shard}]}}"),
        1,
        CONTENT_TYPE_JSON,
    )
}

/// Every queried shard is down: typed 503 with the full missing list.
fn all_down(missing: &[usize]) -> (u16, String, u64, &'static str) {
    (
        503,
        format!(
            "{{\"error\":\"no live replica for any queried shard\"{}}}",
            missing_field(missing)
        ),
        missing.len() as u64,
        CONTENT_TYPE_JSON,
    )
}

/// Prometheus text for the router: per-endpoint traffic plus the
/// robustness internals — per-backend breaker state, failure and probe
/// counters, hedge/retry/degradation totals.
fn render_router_promtext(state: &RouterState) -> String {
    let r = &state.recorder;
    let mut w = PromWriter::new();

    let req = w.family(
        "gsb_router_requests_total",
        PromKind::Counter,
        "Routed client requests, by endpoint.",
    );
    for ep in ENDPOINTS {
        w.sample(&req, &[("endpoint", ep)], r.counter(requests_key(ep)).get());
    }
    let dur = w.family(
        "gsb_router_request_duration_ns",
        PromKind::Histogram,
        "Client request latency in nanoseconds (log2 buckets), by endpoint.",
    );
    for ep in ENDPOINTS {
        let h = r.histogram(latency_key(ep));
        w.histogram(
            &dur,
            &[("endpoint", ep)],
            &h.cumulative_buckets(),
            h.sum(),
            h.count(),
        );
    }
    let status = w.family(
        "gsb_router_responses_total",
        PromKind::Counter,
        "Responses written, by HTTP status.",
    );
    for (label, code) in STATUS_LABELS {
        w.sample(
            &status,
            &[("status", label)],
            r.counter(status_key(code)).get(),
        );
    }

    let bstate = w.family(
        "gsb_router_backend_state",
        PromKind::Gauge,
        "Circuit breaker state per backend: 0 closed, 1 half-open, 2 open.",
    );
    let bfail = w.family(
        "gsb_router_backend_failures_total",
        PromKind::Counter,
        "Failed tries per backend (passive accounting + probes).",
    );
    let bok = w.family(
        "gsb_router_backend_successes_total",
        PromKind::Counter,
        "Successful answers per backend.",
    );
    let bprobe = w.family(
        "gsb_router_probe_failures_total",
        PromKind::Counter,
        "Failed /ready probes per backend.",
    );
    for replicas in &state.backends {
        for b in replicas {
            let shard = b.shard.to_string();
            let labels = [("backend", b.addr.as_str()), ("shard", shard.as_str())];
            w.sample(&bstate, &labels, u64::from(b.state_gauge()));
            w.sample(&bfail, &labels, b.failures_total.load(Ordering::Relaxed));
            w.sample(&bok, &labels, b.successes_total.load(Ordering::Relaxed));
            w.sample(
                &bprobe,
                &labels,
                b.probe_failures_total.load(Ordering::Relaxed),
            );
        }
    }
    let unavailable = w.family(
        "gsb_router_shard_unavailable_total",
        PromKind::Counter,
        "Requests that found a shard with no live replica.",
    );
    for (k, c) in state.shard_unavailable.iter().enumerate() {
        let shard = k.to_string();
        w.sample(
            &unavailable,
            &[("shard", shard.as_str())],
            c.load(Ordering::Relaxed),
        );
    }

    for (name, key, help) in [
        (
            "gsb_router_retries_total",
            "router.retries",
            "Backend tries that failed and were retried on another replica.",
        ),
        (
            "gsb_router_hedges_total",
            "router.hedges",
            "Hedged second tries launched past the hedge latency percentile.",
        ),
        (
            "gsb_router_hedge_wins_total",
            "router.hedge_wins",
            "Hedged tries that answered first.",
        ),
        (
            "gsb_router_degraded_answers_total",
            "router.degraded_answers",
            "Answers missing at least one shard or passing through backend degradation.",
        ),
        (
            "gsb_router_connections_total",
            "http.connections",
            "Client TCP connections accepted (including shed ones).",
        ),
        (
            "gsb_router_worker_panics_total",
            "http.worker_panics",
            "Request handlers that panicked (contained, answered 500).",
        ),
        (
            "gsb_router_shed_requests_total",
            "http.shed_total",
            "Client connections shed by admission control.",
        ),
    ] {
        let fam = w.family(name, PromKind::Counter, help);
        w.sample(&fam, &[], r.counter(key).get());
    }
    let depth = w.family(
        "gsb_router_queue_depth",
        PromKind::Gauge,
        "Client connections currently waiting in the admission queue.",
    );
    w.sample(&depth, &[], r.gauge("http.queue_depth").get());
    let uptime = w.family(
        "gsb_router_uptime_seconds",
        PromKind::Gauge,
        "Seconds since the router started.",
    );
    w.sample_f64(&uptime, &[], state.started.elapsed().as_secs_f64());
    w.finish()
}

/// The `--metrics-out`-shaped JSON snapshot (also `GET /metrics-json`).
fn render_router_metrics_json(state: &RouterState) -> String {
    let r = &state.recorder;
    let mut requests = 0u64;
    for ep in ENDPOINTS {
        requests += r.counter(requests_key(ep)).get();
    }
    let mut backends = String::new();
    for replicas in &state.backends {
        for b in replicas {
            if !backends.is_empty() {
                backends.push(',');
            }
            backends.push_str(&format!(
                "\n    {{\"backend\":\"{}\",\"shard\":{},\"state\":{},\"successes\":{},\"failures\":{},\"probe_failures\":{}}}",
                b.addr,
                b.shard,
                b.state_gauge(),
                b.successes_total.load(Ordering::Relaxed),
                b.failures_total.load(Ordering::Relaxed),
                b.probe_failures_total.load(Ordering::Relaxed),
            ));
        }
    }
    let unavailable: Vec<String> = state
        .shard_unavailable
        .iter()
        .map(|c| c.load(Ordering::Relaxed).to_string())
        .collect();
    format!(
        "{{\n  \"bench\": \"gsb_router\",\n  \"connections\": {},\n  \"requests\": {requests},\n  \"shed_total\": {},\n  \"retries\": {},\n  \"hedges\": {},\n  \"hedge_wins\": {},\n  \"degraded_answers\": {},\n  \"worker_panics\": {},\n  \"shard_unavailable\": [{}],\n  \"backends\": [{backends}\n  ]\n}}\n",
        r.counter("http.connections").get(),
        r.counter("http.shed_total").get(),
        r.counter("router.retries").get(),
        r.counter("router.hedges").get(),
        r.counter("router.hedge_wins").get(),
        r.counter("router.degraded_answers").get(),
        r.counter("http.worker_panics").get(),
        unavailable.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_shards() -> Topology {
        Topology::from_text(
            "gsb-topology v1\n\
             # a comment\n\
             shard=0 ids=0..150 sizes=3..5 replicas=127.0.0.1:7701,127.0.0.1:7702\n\
             shard=1 ids=150..235 sizes=5..9 replicas=127.0.0.1:7703\n",
        )
        .expect("valid topology")
    }

    #[test]
    fn topology_round_trips_and_routes() {
        let t = two_shards();
        assert_eq!(t.shards.len(), 2);
        assert_eq!(Topology::from_text(&t.to_text()).unwrap(), t);
        assert_eq!(t.total_cliques(), 235);
        assert_eq!(t.owner_of(0), Some(0));
        assert_eq!(t.owner_of(149), Some(0));
        assert_eq!(t.owner_of(150), Some(1));
        assert_eq!(t.owner_of(235), None);
        // size routing: boundary size 5 spans both shards
        assert_eq!(t.shards_for_sizes(3, 4), vec![0]);
        assert_eq!(t.shards_for_sizes(5, 5), vec![0, 1]);
        assert_eq!(t.shards_for_sizes(6, 9), vec![1]);
        assert_eq!(t.shards_for_sizes(10, 20), Vec::<usize>::new());
    }

    #[test]
    fn topology_rejects_malformed_input() {
        for bad in [
            "",                                                    // no magic
            "gsb-topology v1\n",                                   // no shards
            "gsb-topology v1\nshard=0 ids=5..10 sizes=1..2 replicas=127.0.0.1:1\n", // gap at 0
            "gsb-topology v1\nshard=1 ids=0..10 sizes=1..2 replicas=127.0.0.1:1\n", // ordinal
            "gsb-topology v1\nshard=0 ids=0..10 sizes=2..1 replicas=127.0.0.1:1\n", // sizes
            "gsb-topology v1\nshard=0 ids=0..10 sizes=1..2 replicas=\n",            // empty
            "gsb-topology v1\nshard=0 ids=0..10 sizes=1..2 replicas=nonsense\n",    // addr
            "gsb-topology v1\nshard=0 ids=10..10 sizes=1..2 replicas=127.0.0.1:1\n", // empty ids
            "gsb-topology v1\nshard=0 ids=0..10 sizes=1..2 replicas=127.0.0.1:1\nshard=1 ids=20..30 sizes=3..4 replicas=127.0.0.1:2\n", // gap
        ] {
            assert!(Topology::from_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let b = Backend::new("127.0.0.1:9", 0);
        let cooldown = Duration::from_millis(30);
        assert!(b.admit(cooldown));
        assert_eq!(b.state_gauge(), BREAKER_CLOSED);
        for _ in 0..3 {
            b.on_failure(3);
        }
        assert_eq!(b.state_gauge(), BREAKER_OPEN);
        // open: rejected until the cooldown elapses
        assert!(!b.admit(cooldown));
        std::thread::sleep(cooldown + Duration::from_millis(5));
        // half-open: exactly one trial admitted
        assert!(b.admit(cooldown));
        assert_eq!(b.state_gauge(), BREAKER_HALF_OPEN);
        assert!(!b.admit(cooldown));
        // trial failure re-opens immediately (no threshold wait)
        b.on_failure(3);
        assert_eq!(b.state_gauge(), BREAKER_OPEN);
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(b.admit(cooldown));
        b.on_success();
        assert_eq!(b.state_gauge(), BREAKER_CLOSED);
        assert!(b.admit(cooldown));
    }

    #[test]
    fn latency_window_percentile_needs_samples_then_tracks_them() {
        let w = LatencyWindow::new();
        assert_eq!(w.percentile(0.95), None);
        for i in 1..=100u64 {
            w.record(i * 1_000_000); // 1..=100 ms
        }
        let p95 = w.percentile(0.95).unwrap();
        assert!(p95 >= Duration::from_millis(90) && p95 <= Duration::from_millis(100));
        let p0 = w.percentile(0.0).unwrap();
        assert!(p0 <= Duration::from_millis(5));
    }

    #[test]
    fn gather_translates_ids_and_accumulates() {
        let mut g = Gathered::default();
        gather_list_body(
            &mut g,
            "{\"vertex\":3,\"count\":2,\"ids\":[0,4],\"cliques\":[[1,2,3],[3,4]]}",
            100,
        )
        .expect("parse");
        gather_list_body(
            &mut g,
            "{\"vertex\":3,\"count\":1,\"ids\":[7],\"cliques\":[[3,9]],\"degraded\":2}",
            200,
        )
        .expect("parse");
        assert_eq!(g.count, 3);
        assert_eq!(g.ids, vec![100, 104, 207]);
        assert_eq!(g.cliques, vec!["[1,2,3]", "[3,4]", "[3,9]"]);
        assert_eq!(g.degraded, 2);
        assert!(gather_list_body(&mut g, "not json", 0).is_err());
    }

    #[test]
    fn missing_shards_field_only_when_degraded() {
        assert_eq!(missing_field(&[]), "");
        assert_eq!(missing_field(&[1, 3]), ",\"missing_shards\":[1,3]");
        let (status, body, degraded, _) = shard_down(2);
        assert_eq!(status, 503);
        assert_eq!(degraded, 1);
        assert!(body.contains("\"missing_shards\":[2]"));
    }
}
