//! Offline index scrubbing — `gsb scrub`'s engine.
//!
//! [`scrub`] walks a committed index directory end to end: the manifest
//! (including its self-CRC), the directory file, every CRC-framed block
//! of the clique store, and every postings record — then cross-checks
//! the layers against each other (counts, sizes, offsets, and a full
//! recomputation of the postings from the decoded cliques). Every
//! defect is collected as a typed [`ScrubFinding`] rather than stopping
//! at the first, so one pass maps the whole blast radius.
//!
//! Together with the per-frame CRCs this detects *every* single-byte
//! corruption of a committed index: flips inside frames fail their CRC,
//! flips in headers fail the header CRC, flips in the manifest fail its
//! self-CRC, and flips that survive a local check (there are none, but
//! belt and braces) would still trip a cross-check.

use crate::format::{
    check_header, decode_clique, decode_id_list, IndexDirectory, IndexMeta, CLIQUES_FILE,
    CLIQUES_MAGIC, DIRECTORY_FILE, DIRECTORY_MAGIC, HEADER_LEN, META_FILE, POSTINGS_FILE,
    POSTINGS_MAGIC,
};
use gsb_core::store::{crc32, StoreError};
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// One defect found by the scrub: where, and the typed error.
#[derive(Debug)]
pub struct ScrubFinding {
    /// Human-readable site, e.g. `cliques.gsi block 3` or `index.meta`.
    pub site: String,
    /// What failed there.
    pub error: StoreError,
}

impl std::fmt::Display for ScrubFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.site, self.error)
    }
}

/// Everything one scrub pass checked and found.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Store blocks whose frame + records were fully verified.
    pub blocks_checked: u64,
    /// Clique records decoded and validated.
    pub cliques_checked: u64,
    /// Postings records verified against the recomputed truth.
    pub postings_checked: u64,
    /// Every defect found, in walk order.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// True when the index verified completely.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn flag(&mut self, site: impl Into<String>, error: StoreError) {
        self.findings.push(ScrubFinding {
            site: site.into(),
            error,
        });
    }
}

/// Scrub the committed index in `dir`. Never panics and never stops at
/// the first defect; structural failures that make deeper layers
/// unreachable (an undecodable directory, say) are themselves findings.
pub fn scrub(dir: &Path) -> ScrubReport {
    let mut report = ScrubReport::default();

    // 1. The manifest: present, parseable, self-CRC intact.
    let meta = match std::fs::read_to_string(dir.join(META_FILE)) {
        Err(e) => {
            report.flag(META_FILE, StoreError::Io(e));
            return report;
        }
        Ok(text) => match IndexMeta::from_text(&text) {
            Err(e) => {
                report.flag(META_FILE, e);
                return report;
            }
            Ok(meta) => meta,
        },
    };

    // 2. The directory: header, frame, decode.
    let directory = match read_directory(dir) {
        Err(e) => {
            report.flag(DIRECTORY_FILE, e);
            return report;
        }
        Ok(d) => d,
    };

    // 3. Manifest ↔ directory cross-checks.
    if directory.n as usize != meta.n {
        report.flag(
            META_FILE,
            StoreError::GraphMismatch {
                checkpoint_bits: directory.n as usize,
                graph_bits: meta.n,
            },
        );
    }
    for (what, meta_v, dir_v) in [
        ("cliques", meta.cliques, directory.clique_count),
        ("blocks", meta.blocks, directory.blocks.len() as u64),
        (
            "max_clique",
            u64::from(meta.max_clique),
            u64::from(directory.max_size()),
        ),
        (
            "postings_bytes",
            meta.postings_bytes,
            directory.postings_bytes,
        ),
    ] {
        if meta_v != dir_v {
            report.flag(
                format!("{META_FILE} {what}"),
                StoreError::CountMismatch {
                    expected: dir_v as usize,
                    found: meta_v as usize,
                },
            );
        }
    }

    // 4. The clique store: header, then every block frame + record,
    // recomputing the postings as we go.
    let mut truth_postings: Vec<Vec<u64>> = vec![Vec::new(); directory.n as usize];
    scrub_store(dir, &meta, &directory, &mut truth_postings, &mut report);

    // 5. Postings: header, then every record against the recomputed
    // truth (exact id-list equality, not just CRC validity).
    scrub_postings(dir, &directory, &truth_postings, &mut report);

    report
}

fn read_directory(dir: &Path) -> Result<IndexDirectory, StoreError> {
    let bytes = std::fs::read(dir.join(DIRECTORY_FILE))?;
    let n = check_header(&bytes, DIRECTORY_MAGIC, "index directory header")?;
    let (payload, _) = crate::format::parse_frame(&bytes, HEADER_LEN, "index directory")?;
    let directory = IndexDirectory::decode(payload)?;
    if directory.n != n {
        return Err(StoreError::GraphMismatch {
            checkpoint_bits: directory.n as usize,
            graph_bits: n as usize,
        });
    }
    Ok(directory)
}

fn scrub_store(
    dir: &Path,
    meta: &IndexMeta,
    directory: &IndexDirectory,
    truth_postings: &mut [Vec<u64>],
    report: &mut ScrubReport,
) {
    let path = dir.join(CLIQUES_FILE);
    let mut f = match File::open(&path) {
        Err(e) => return report.flag(CLIQUES_FILE, StoreError::Io(e)),
        Ok(f) => f,
    };
    match f.metadata() {
        Err(e) => report.flag(CLIQUES_FILE, StoreError::Io(e)),
        Ok(m) if m.len() != meta.store_bytes => report.flag(
            format!("{CLIQUES_FILE} length"),
            StoreError::Torn {
                context: "clique store length",
                needed: meta.store_bytes as usize,
                have: m.len() as usize,
            },
        ),
        Ok(_) => {}
    }
    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = read_at(&mut f, 0, &mut header, "clique store header") {
        return report.flag(CLIQUES_FILE, e);
    }
    if let Err(e) = check_header(&header, CLIQUES_MAGIC, "clique store header") {
        report.flag(format!("{CLIQUES_FILE} header"), e);
    }

    let mut expected_offset = HEADER_LEN as u64;
    let mut expected_first_id = 0u64;
    for (i, entry) in directory.blocks.iter().enumerate() {
        let site = format!("{CLIQUES_FILE} block {i}");
        // Block-table invariants: contiguous offsets and id ranges.
        if entry.offset != expected_offset || entry.first_id != expected_first_id {
            report.flag(
                format!("{site} placement"),
                StoreError::Codec {
                    context: "block table not contiguous",
                },
            );
        }
        expected_first_id = entry.first_id + u64::from(entry.count);
        match scrub_block(&mut f, entry, directory, truth_postings) {
            Err(e) => report.flag(site, e),
            Ok((cliques, next_offset)) => {
                report.blocks_checked += 1;
                report.cliques_checked += cliques;
                expected_offset = next_offset;
            }
        }
    }
    if expected_first_id != directory.clique_count {
        report.flag(
            format!("{CLIQUES_FILE} coverage"),
            StoreError::CountMismatch {
                expected: directory.clique_count as usize,
                found: expected_first_id as usize,
            },
        );
    }
}

/// Verify one block end to end; returns `(records, offset past the
/// block)` so the walk can keep cross-checking contiguity.
fn scrub_block(
    f: &mut File,
    entry: &crate::format::BlockEntry,
    directory: &IndexDirectory,
    truth_postings: &mut [Vec<u64>],
) -> Result<(u64, u64), StoreError> {
    const CTX: &str = "clique block";
    let mut head = [0u8; 8];
    read_at(f, entry.offset, &mut head, CTX)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(head[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len];
    read_at(f, entry.offset + 8, &mut payload, CTX)?;
    let computed = crc32(&payload);
    if stored != computed {
        return Err(StoreError::Checksum {
            context: CTX,
            stored,
            computed,
        });
    }
    if payload.len() < 4 {
        return Err(StoreError::Torn {
            context: CTX,
            needed: 4,
            have: payload.len(),
        });
    }
    let count = u32::from_le_bytes(payload[..4].try_into().unwrap());
    if count != entry.count {
        return Err(StoreError::CountMismatch {
            expected: entry.count as usize,
            found: count as usize,
        });
    }
    let mut pos = 4usize;
    for r in 0..count {
        let clique = decode_clique(&payload, &mut pos, directory.n, "clique record")?;
        let size = clique.len() as u32;
        if size < entry.min_size || size > entry.max_size {
            return Err(StoreError::Codec {
                context: "clique size outside its block's declared range",
            });
        }
        let id = entry.first_id + u64::from(r);
        for &v in &clique {
            truth_postings[v as usize].push(id);
        }
    }
    if pos != payload.len() {
        return Err(StoreError::Codec { context: CTX });
    }
    Ok((u64::from(count), entry.offset + 8 + len as u64))
}

fn scrub_postings(
    dir: &Path,
    directory: &IndexDirectory,
    truth_postings: &[Vec<u64>],
    report: &mut ScrubReport,
) {
    let path = dir.join(POSTINGS_FILE);
    let mut f = match File::open(&path) {
        Err(e) => return report.flag(POSTINGS_FILE, StoreError::Io(e)),
        Ok(f) => f,
    };
    match f.metadata() {
        Err(e) => report.flag(POSTINGS_FILE, StoreError::Io(e)),
        Ok(m) if m.len() != directory.postings_bytes => report.flag(
            format!("{POSTINGS_FILE} length"),
            StoreError::Torn {
                context: "postings length",
                needed: directory.postings_bytes as usize,
                have: m.len() as usize,
            },
        ),
        Ok(_) => {}
    }
    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = read_at(&mut f, 0, &mut header, "postings header") {
        return report.flag(POSTINGS_FILE, e);
    }
    if let Err(e) = check_header(&header, POSTINGS_MAGIC, "postings header") {
        report.flag(format!("{POSTINGS_FILE} header"), e);
    }

    for (v, truth) in truth_postings.iter().enumerate().take(directory.n as usize) {
        let site = format!("{POSTINGS_FILE} vertex {v}");
        let start = directory.postings_offsets[v];
        let end = directory.postings_offsets[v + 1];
        if end < start || end > directory.postings_bytes {
            report.flag(
                site,
                StoreError::Codec {
                    context: "postings offsets",
                },
            );
            continue;
        }
        let mut bytes = vec![0u8; (end - start) as usize];
        if let Err(e) = read_at(&mut f, start, &mut bytes, "postings record") {
            report.flag(site, e);
            continue;
        }
        let decoded =
            crate::format::parse_frame(&bytes, 0, "postings record").and_then(|(payload, _)| {
                let mut pos = 0usize;
                let ids =
                    decode_id_list(payload, &mut pos, directory.clique_count, "postings record")?;
                if pos != payload.len() {
                    return Err(StoreError::Codec {
                        context: "postings record",
                    });
                }
                Ok(ids)
            });
        match decoded {
            Err(e) => report.flag(site, e),
            Ok(ids) if ids != *truth => report.flag(
                site,
                StoreError::CountMismatch {
                    expected: truth.len(),
                    found: ids.len(),
                },
            ),
            Ok(_) => report.postings_checked += 1,
        }
    }
}

/// Positioned exact read with short reads surfaced as typed truncation.
fn read_at(
    f: &mut File,
    offset: u64,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), StoreError> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Torn {
                context,
                needed: buf.len(),
                have: 0,
            }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::IndexWriter;
    use gsb_core::CliqueSink;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gsb-index-scrub-{}-{name}", std::process::id()))
    }

    fn build(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
        let mut w = IndexWriter::create(dir, 30).unwrap().block_target(24);
        for i in 0..20u32 {
            w.maximal(&[i, i + 1, i + 2]);
        }
        w.maximal(&[0, 2, 4, 6]);
        w.finish().unwrap();
    }

    #[test]
    fn clean_index_scrubs_clean() {
        let dir = tmp("clean");
        build(&dir);
        let report = scrub(&dir);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.cliques_checked, 21);
        assert!(report.blocks_checked > 1);
        assert_eq!(report.postings_checked, 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_meta_is_a_finding_not_a_panic() {
        let dir = tmp("nometa");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = scrub(&dir);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].site.contains(META_FILE));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance bar: every single-byte flip in every index file
    /// is detected. Exhaustive over the whole directory — the files are
    /// a few KiB here, so this stays fast.
    #[test]
    fn every_single_byte_corruption_is_detected() {
        let dir = tmp("sweep");
        build(&dir);
        assert!(scrub(&dir).is_clean());
        for file in [META_FILE, DIRECTORY_FILE, CLIQUES_FILE, POSTINGS_FILE] {
            let path = dir.join(file);
            let pristine = std::fs::read(&path).unwrap();
            for i in 0..pristine.len() {
                for bit in [0x01u8, 0x40] {
                    let mut bad = pristine.clone();
                    bad[i] ^= bit;
                    std::fs::write(&path, &bad).unwrap();
                    let report = scrub(&dir);
                    assert!(
                        !report.is_clean(),
                        "{file}: flip 0x{bit:02x} at byte {i} went undetected"
                    );
                }
            }
            std::fs::write(&path, &pristine).unwrap();
        }
        assert!(scrub(&dir).is_clean(), "restore left the index dirty");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
