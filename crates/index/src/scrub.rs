//! Offline index scrubbing — `gsb scrub`'s engine.
//!
//! [`scrub`] walks a committed index directory end to end: the manifest
//! (including its self-CRC), the directory file — base record **and
//! every delta-generation record of the chain** — every CRC-framed
//! block of the clique store (base and delta), every postings record
//! (base and per-generation overlay frames), the graph snapshot pinned
//! by the manifest's whole-file CRC, and the chain's edit log replayed
//! against it — then cross-checks the layers against each other
//! (counts, sizes, offsets, tombstone accounting, and a full
//! recomputation of the postings from the decoded cliques). Every
//! defect is collected as a typed [`ScrubFinding`] rather than stopping
//! at the first, so one pass maps the whole blast radius.
//!
//! Together with the per-frame CRCs this detects *every* single-byte
//! corruption of a committed index — chained or not: flips inside
//! frames fail their CRC, flips in headers fail the header CRC, flips
//! in the manifest fail its self-CRC, flips in the snapshot fail the
//! manifest-pinned whole-file CRC, and flips that survive a local check
//! (there are none, but belt and braces) would still trip a
//! cross-check.

use crate::format::{
    check_header, decode_clique, decode_delta_postings, decode_id_list, BlockEntry,
    DeltaGeneration, IndexDirectory, IndexMeta, SizeRun, CLIQUES_FILE, CLIQUES_MAGIC,
    COMPACT_TMP_DIR, DIRECTORY_FILE, DIRECTORY_MAGIC, HEADER_LEN, META_FILE, POSTINGS_FILE,
    POSTINGS_MAGIC,
};
use crate::snapshot::read_graph_checked;
use gsb_core::store::{crc32, StoreError};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Read;
use std::path::Path;

/// One defect found by the scrub: where, and the typed error.
#[derive(Debug)]
pub struct ScrubFinding {
    /// Human-readable site, e.g. `cliques.gsi block 3` or `index.meta`.
    pub site: String,
    /// What failed there.
    pub error: StoreError,
}

impl std::fmt::Display for ScrubFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.site, self.error)
    }
}

/// Everything one scrub pass checked and found.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Store blocks whose frame + records were fully verified (base
    /// and delta).
    pub blocks_checked: u64,
    /// Clique records decoded and validated (base and delta).
    pub cliques_checked: u64,
    /// Postings records verified against the recomputed truth (base
    /// vertices plus one per verified delta-generation frame).
    pub postings_checked: u64,
    /// Delta-generation records of the chain fully verified.
    pub delta_generations_checked: u64,
    /// Tombstones verified: in range, ascending, no double kill.
    pub tombstones_checked: u64,
    /// Every defect found, in walk order.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// True when the index verified completely.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn flag(&mut self, site: impl Into<String>, error: StoreError) {
        self.findings.push(ScrubFinding {
            site: site.into(),
            error,
        });
    }
}

/// Scrub the committed index in `dir`. Never panics and never stops at
/// the first defect; structural failures that make deeper layers
/// unreachable (an undecodable directory, say) are themselves findings.
pub fn scrub(dir: &Path) -> ScrubReport {
    let mut report = ScrubReport::default();

    // 1. The manifest: present, parseable, self-CRC intact.
    let meta = match std::fs::read_to_string(dir.join(META_FILE)) {
        Err(e) => {
            report.flag(META_FILE, StoreError::Io(e));
            return report;
        }
        Ok(text) => match IndexMeta::from_text(&text) {
            Err(e) => {
                report.flag(META_FILE, e);
                return report;
            }
            Ok(meta) => meta,
        },
    };

    // 1b. A finished-but-unswapped compaction means the directory is
    // mid-transition; everything below may legitimately mismatch until
    // `gsb compact` finishes the swap.
    if std::fs::read_to_string(dir.join(COMPACT_TMP_DIR).join(META_FILE))
        .is_ok_and(|t| IndexMeta::from_text(&t).is_ok())
    {
        report.flag(
            COMPACT_TMP_DIR,
            StoreError::Io(std::io::Error::other(
                "pending compaction swap — run `gsb compact` to finish it",
            )),
        );
    }

    // 2. The directory file: header, base frame, then the delta chain.
    let (directory, chain) = match read_directory(dir, &meta, &mut report) {
        Err(e) => {
            report.flag(DIRECTORY_FILE, e);
            return report;
        }
        Ok(d) => d,
    };

    // 3. Manifest ↔ directory ↔ chain cross-checks. Manifest counts
    // are totals over base + chain.
    let n_total = chain
        .iter()
        .map(|g| g.n as u64)
        .fold(u64::from(directory.n), u64::max);
    if n_total as usize != meta.n {
        report.flag(
            META_FILE,
            StoreError::GraphMismatch {
                checkpoint_bits: n_total as usize,
                graph_bits: meta.n,
            },
        );
    }
    let chain_cliques: u64 = chain.iter().map(|g| g.count).sum();
    let chain_blocks: u64 = chain.iter().map(|g| g.blocks.len() as u64).sum();
    let chain_postings: u64 = chain.iter().map(|g| g.postings_len).sum();
    let tombstone_total: u64 = chain.iter().map(|g| g.tombstones.len() as u64).sum();
    for (what, meta_v, want) in [
        (
            "cliques",
            meta.cliques,
            directory.clique_count + chain_cliques,
        ),
        (
            "blocks",
            meta.blocks,
            directory.blocks.len() as u64 + chain_blocks,
        ),
        (
            "postings_bytes",
            meta.postings_bytes,
            directory.postings_bytes + chain_postings,
        ),
        (
            "delta_generations",
            meta.delta_generations,
            chain.len() as u64,
        ),
        ("tombstones", meta.tombstones, tombstone_total),
    ] {
        if meta_v != want {
            report.flag(
                format!("{META_FILE} {what}"),
                StoreError::CountMismatch {
                    expected: want as usize,
                    found: meta_v as usize,
                },
            );
        }
    }

    // Tombstone accounting: ascending within a generation is enforced
    // by the codec; across the chain no id may be killed twice, every
    // target must predate its generation (also codec-enforced), and the
    // *live* maximum size must be what the manifest advertises.
    let mut dead = std::collections::HashSet::new();
    for (gi, gen) in chain.iter().enumerate() {
        for &id in &gen.tombstones {
            if !dead.insert(id) {
                report.flag(
                    format!("{DIRECTORY_FILE} generation {gi} tombstone {id}"),
                    StoreError::Codec {
                        context: "tombstone kills an already-dead clique",
                    },
                );
            } else {
                report.tombstones_checked += 1;
            }
        }
    }
    let mut runs: Vec<SizeRun> = directory.size_runs.clone();
    for gen in &chain {
        runs.extend(gen.size_runs.iter().cloned());
    }
    let mut live_hist: BTreeMap<u32, u64> = BTreeMap::new();
    for run in &runs {
        *live_hist.entry(run.size).or_insert(0) += run.count;
    }
    for &id in &dead {
        let i = runs.partition_point(|r| r.first_id + r.count <= id);
        if let Some(run) = runs.get(i) {
            if let Some(c) = live_hist.get_mut(&run.size) {
                *c = c.saturating_sub(1);
            }
        }
    }
    let live_max = live_hist
        .iter()
        .rev()
        .find(|&(_, &c)| c > 0)
        .map_or(0, |(&s, _)| s);
    if live_max != meta.max_clique {
        report.flag(
            format!("{META_FILE} max_clique"),
            StoreError::CountMismatch {
                expected: live_max as usize,
                found: meta.max_clique as usize,
            },
        );
    }

    // 4. The clique store: header, then every block frame + record —
    // base blocks recompute the base postings truth; each generation's
    // blocks recompute that generation's overlay truth.
    let mut truth_postings: Vec<Vec<u64>> = vec![Vec::new(); directory.n as usize];
    scrub_store(
        dir,
        &meta,
        &directory,
        &chain,
        &mut truth_postings,
        &mut report,
    );

    // 5. Base postings: header, then every record against the
    // recomputed truth (exact id-list equality, not just CRC validity).
    scrub_postings(dir, &meta, &directory, &truth_postings, &mut report);

    // 6. The graph snapshot and the chain's edit log replayed over it.
    scrub_graph(dir, &meta, &chain, &mut report);

    report
}

/// Read `index.gsd`: header, the base frame, then every chain frame up
/// to the committed extent. Chain-structure defects (discontinuities,
/// bad extents) are findings; an unreadable base is a hard error.
fn read_directory(
    dir: &Path,
    meta: &IndexMeta,
    report: &mut ScrubReport,
) -> Result<(IndexDirectory, Vec<DeltaGeneration>), StoreError> {
    let bytes = std::fs::read(dir.join(DIRECTORY_FILE))?;
    // Pre-chain manifests don't record dir_bytes; the whole file is
    // the committed extent.
    let committed = if meta.dir_bytes > 0 {
        meta.dir_bytes
    } else {
        bytes.len() as u64
    };
    if bytes.len() as u64 != committed {
        report.flag(
            format!("{DIRECTORY_FILE} length"),
            StoreError::Torn {
                context: "directory length vs committed extent",
                needed: committed as usize,
                have: bytes.len(),
            },
        );
    }
    let n = check_header(&bytes, DIRECTORY_MAGIC, "index directory header")?;
    let (payload, mut next) = crate::format::parse_frame(&bytes, HEADER_LEN, "index directory")?;
    let directory = IndexDirectory::decode(payload)?;
    if directory.n != n {
        return Err(StoreError::GraphMismatch {
            checkpoint_bits: directory.n as usize,
            graph_bits: n as usize,
        });
    }
    let mut chain = Vec::new();
    let end = committed.min(bytes.len() as u64) as usize;
    let mut expected_first = directory.clique_count;
    let mut expected_post = directory.postings_bytes;
    let mut last_generation = None::<u64>;
    let mut max_n = directory.n;
    while next < end {
        let gi = chain.len();
        let site = format!("{DIRECTORY_FILE} generation {gi}");
        let gen = match crate::format::parse_frame(&bytes[..end], next, "delta generation")
            .and_then(|(payload, at)| {
                next = at;
                DeltaGeneration::decode(payload)
            }) {
            Err(e) => {
                report.flag(site, e);
                // the walk cannot continue past an undecodable frame
                break;
            }
            Ok(g) => g,
        };
        if gen.first_id != expected_first
            || gen.postings_offset != expected_post
            || gen.n < max_n
            || last_generation.is_some_and(|last| gen.generation <= last)
        {
            report.flag(
                format!("{site} continuity"),
                StoreError::Codec {
                    context: "delta chain discontinuity",
                },
            );
        }
        expected_first = gen.first_id + gen.count;
        expected_post = gen.postings_offset + gen.postings_len;
        max_n = max_n.max(gen.n);
        last_generation = Some(gen.generation);
        report.delta_generations_checked += 1;
        chain.push(gen);
    }
    if let Some(last) = last_generation {
        if last != meta.generation {
            report.flag(
                format!("{DIRECTORY_FILE} chain head"),
                StoreError::CountMismatch {
                    expected: meta.generation as usize,
                    found: last as usize,
                },
            );
        }
    }
    Ok((directory, chain))
}

fn scrub_store(
    dir: &Path,
    meta: &IndexMeta,
    directory: &IndexDirectory,
    chain: &[DeltaGeneration],
    truth_postings: &mut [Vec<u64>],
    report: &mut ScrubReport,
) {
    let path = dir.join(CLIQUES_FILE);
    let mut f = match File::open(&path) {
        Err(e) => return report.flag(CLIQUES_FILE, StoreError::Io(e)),
        Ok(f) => f,
    };
    match f.metadata() {
        Err(e) => report.flag(CLIQUES_FILE, StoreError::Io(e)),
        Ok(m) if m.len() != meta.store_bytes => report.flag(
            format!("{CLIQUES_FILE} length"),
            StoreError::Torn {
                context: "clique store length",
                needed: meta.store_bytes as usize,
                have: m.len() as usize,
            },
        ),
        Ok(_) => {}
    }
    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = read_at(&mut f, 0, &mut header, "clique store header") {
        return report.flag(CLIQUES_FILE, e);
    }
    if let Err(e) = check_header(&header, CLIQUES_MAGIC, "clique store header") {
        report.flag(format!("{CLIQUES_FILE} header"), e);
    }

    // Base blocks: contiguous from the header, recomputing the base
    // postings truth.
    let mut expected_offset = HEADER_LEN as u64;
    let mut expected_first_id = 0u64;
    for (i, entry) in directory.blocks.iter().enumerate() {
        let site = format!("{CLIQUES_FILE} block {i}");
        if entry.offset != expected_offset || entry.first_id != expected_first_id {
            report.flag(
                format!("{site} placement"),
                StoreError::Codec {
                    context: "block table not contiguous",
                },
            );
        }
        expected_first_id = entry.first_id + u64::from(entry.count);
        let mut record = |id: u64, clique: &[u32]| {
            for &v in clique {
                truth_postings[v as usize].push(id);
            }
        };
        match scrub_block(&mut f, entry, directory.n, &mut record) {
            Err(e) => report.flag(site, e),
            Ok((cliques, next_offset)) => {
                report.blocks_checked += 1;
                report.cliques_checked += cliques;
                expected_offset = next_offset;
            }
        }
    }
    if expected_first_id != directory.clique_count {
        report.flag(
            format!("{CLIQUES_FILE} coverage"),
            StoreError::CountMismatch {
                expected: directory.clique_count as usize,
                found: expected_first_id as usize,
            },
        );
    }

    // Delta blocks: the chain continues the same contiguous walk, each
    // generation decoded at its own vertex bound; each generation's
    // postings frame is then verified against the truth its own blocks
    // produce.
    for (gi, gen) in chain.iter().enumerate() {
        let mut truth: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (bi, entry) in gen.blocks.iter().enumerate() {
            let site = format!("{CLIQUES_FILE} generation {gi} block {bi}");
            if entry.offset != expected_offset || entry.first_id != expected_first_id {
                report.flag(
                    format!("{site} placement"),
                    StoreError::Codec {
                        context: "block table not contiguous",
                    },
                );
            }
            expected_first_id = entry.first_id + u64::from(entry.count);
            let mut record = |id: u64, clique: &[u32]| {
                for &v in clique {
                    truth.entry(v).or_default().push(id);
                }
            };
            match scrub_block(&mut f, entry, gen.n, &mut record) {
                Err(e) => report.flag(site, e),
                Ok((cliques, next_offset)) => {
                    report.blocks_checked += 1;
                    report.cliques_checked += cliques;
                    expected_offset = next_offset;
                }
            }
        }
        scrub_delta_postings(dir, gi, gen, &truth, report);
    }
    if meta.dir_bytes > 0 && expected_offset != meta.store_bytes {
        report.flag(
            format!("{CLIQUES_FILE} coverage"),
            StoreError::CountMismatch {
                expected: meta.store_bytes as usize,
                found: expected_offset as usize,
            },
        );
    }
}

/// Verify one block end to end; returns `(records, offset past the
/// block)` so the walk can keep cross-checking contiguity. `record` is
/// called once per decoded clique with its global id.
fn scrub_block(
    f: &mut File,
    entry: &BlockEntry,
    n_bound: u32,
    record: &mut dyn FnMut(u64, &[u32]),
) -> Result<(u64, u64), StoreError> {
    const CTX: &str = "clique block";
    let mut head = [0u8; 8];
    read_at(f, entry.offset, &mut head, CTX)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(head[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len];
    read_at(f, entry.offset + 8, &mut payload, CTX)?;
    let computed = crc32(&payload);
    if stored != computed {
        return Err(StoreError::Checksum {
            context: CTX,
            stored,
            computed,
        });
    }
    if payload.len() < 4 {
        return Err(StoreError::Torn {
            context: CTX,
            needed: 4,
            have: payload.len(),
        });
    }
    let count = u32::from_le_bytes(payload[..4].try_into().unwrap());
    if count != entry.count {
        return Err(StoreError::CountMismatch {
            expected: entry.count as usize,
            found: count as usize,
        });
    }
    let mut pos = 4usize;
    for r in 0..count {
        let clique = decode_clique(&payload, &mut pos, n_bound, "clique record")?;
        let size = clique.len() as u32;
        if size < entry.min_size || size > entry.max_size {
            return Err(StoreError::Codec {
                context: "clique size outside its block's declared range",
            });
        }
        record(entry.first_id + u64::from(r), &clique);
    }
    if pos != payload.len() {
        return Err(StoreError::Codec { context: CTX });
    }
    Ok((u64::from(count), entry.offset + 8 + len as u64))
}

fn scrub_postings(
    dir: &Path,
    meta: &IndexMeta,
    directory: &IndexDirectory,
    truth_postings: &[Vec<u64>],
    report: &mut ScrubReport,
) {
    let path = dir.join(POSTINGS_FILE);
    let mut f = match File::open(&path) {
        Err(e) => return report.flag(POSTINGS_FILE, StoreError::Io(e)),
        Ok(f) => f,
    };
    match f.metadata() {
        Err(e) => report.flag(POSTINGS_FILE, StoreError::Io(e)),
        Ok(m) if m.len() != meta.postings_bytes => report.flag(
            format!("{POSTINGS_FILE} length"),
            StoreError::Torn {
                context: "postings length",
                needed: meta.postings_bytes as usize,
                have: m.len() as usize,
            },
        ),
        Ok(_) => {}
    }
    let mut header = [0u8; HEADER_LEN];
    if let Err(e) = read_at(&mut f, 0, &mut header, "postings header") {
        return report.flag(POSTINGS_FILE, e);
    }
    if let Err(e) = check_header(&header, POSTINGS_MAGIC, "postings header") {
        report.flag(format!("{POSTINGS_FILE} header"), e);
    }

    for (v, truth) in truth_postings.iter().enumerate().take(directory.n as usize) {
        let site = format!("{POSTINGS_FILE} vertex {v}");
        let start = directory.postings_offsets[v];
        let end = directory.postings_offsets[v + 1];
        if end < start || end > directory.postings_bytes {
            report.flag(
                site,
                StoreError::Codec {
                    context: "postings offsets",
                },
            );
            continue;
        }
        let mut bytes = vec![0u8; (end - start) as usize];
        if let Err(e) = read_at(&mut f, start, &mut bytes, "postings record") {
            report.flag(site, e);
            continue;
        }
        let decoded =
            crate::format::parse_frame(&bytes, 0, "postings record").and_then(|(payload, _)| {
                let mut pos = 0usize;
                let ids =
                    decode_id_list(payload, &mut pos, directory.clique_count, "postings record")?;
                if pos != payload.len() {
                    return Err(StoreError::Codec {
                        context: "postings record",
                    });
                }
                Ok(ids)
            });
        match decoded {
            Err(e) => report.flag(site, e),
            Ok(ids) if ids != *truth => report.flag(
                site,
                StoreError::CountMismatch {
                    expected: truth.len(),
                    found: ids.len(),
                },
            ),
            Ok(_) => report.postings_checked += 1,
        }
    }
}

/// Verify one generation's postings overlay frame against the truth
/// recomputed from its own delta blocks.
fn scrub_delta_postings(
    dir: &Path,
    gi: usize,
    gen: &DeltaGeneration,
    truth: &BTreeMap<u32, Vec<u64>>,
    report: &mut ScrubReport,
) {
    let site = format!("{POSTINGS_FILE} generation {gi}");
    let mut f = match File::open(dir.join(POSTINGS_FILE)) {
        Err(e) => return report.flag(site, StoreError::Io(e)),
        Ok(f) => f,
    };
    let mut bytes = vec![0u8; gen.postings_len as usize];
    if let Err(e) = read_at(&mut f, gen.postings_offset, &mut bytes, "delta postings") {
        return report.flag(site, e);
    }
    let decoded =
        crate::format::parse_frame(&bytes, 0, "delta postings").and_then(|(payload, next)| {
            if next != bytes.len() {
                return Err(StoreError::Codec {
                    context: "delta postings frame extent",
                });
            }
            decode_delta_postings(payload, gen.n, gen.id_range(), "delta postings")
        });
    match decoded {
        Err(e) => report.flag(site, e),
        Ok(entries) => {
            let got: BTreeMap<u32, Vec<u64>> = entries.into_iter().collect();
            if &got != truth {
                report.flag(
                    site,
                    StoreError::CountMismatch {
                        expected: truth.len(),
                        found: got.len(),
                    },
                );
            } else {
                report.postings_checked += 1;
            }
        }
    }
}

/// Verify the graph snapshot (length + whole-file CRC + decode) and
/// replay the chain's edit log over it: every recorded removal must hit
/// an existing edge, every addition a missing one, within bounds.
fn scrub_graph(dir: &Path, meta: &IndexMeta, chain: &[DeltaGeneration], report: &mut ScrubReport) {
    if meta.graph_bytes == 0 {
        // frozen index: no snapshot, and a chain would be unreachable —
        // flagged already by the updatable cross-checks if present
        if !chain.is_empty() {
            report.flag(
                "graph.gsg",
                StoreError::Codec {
                    context: "delta chain on an index with no graph snapshot",
                },
            );
        }
        return;
    }
    let snap = match read_graph_checked(dir, meta.graph_bytes, meta.graph_crc) {
        Err(e) => return report.flag("graph.gsg", e),
        Ok(g) => g,
    };
    let n_target = chain
        .iter()
        .map(|g| g.n as usize)
        .fold(snap.n(), usize::max);
    let mut g = snap.grown(n_target.max(1));
    for (gi, gen) in chain.iter().enumerate() {
        for &(u, v) in &gen.removed_edges {
            if !g.remove_edge(u as usize, v as usize) {
                report.flag(
                    format!("graph.gsg generation {gi} edit -({u},{v})"),
                    StoreError::Codec {
                        context: "edit log removes an absent edge",
                    },
                );
            }
        }
        for &(u, v) in &gen.added_edges {
            if !g.add_edge(u as usize, v as usize) {
                report.flag(
                    format!("graph.gsg generation {gi} edit +({u},{v})"),
                    StoreError::Codec {
                        context: "edit log adds a present edge",
                    },
                );
            }
        }
    }
    if g.n() != meta.n {
        report.flag(
            "graph.gsg",
            StoreError::GraphMismatch {
                checkpoint_bits: g.n(),
                graph_bits: meta.n,
            },
        );
    }
}

/// Positioned exact read with short reads surfaced as typed truncation.
fn read_at(
    f: &mut File,
    offset: u64,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), StoreError> {
    use std::io::{Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Torn {
                context,
                needed: buf.len(),
                have: 0,
            }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::{update, EditScript};
    use crate::writer::IndexWriter;
    use gsb_core::CliqueSink;
    use gsb_graph::BitGraph;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gsb-index-scrub-{}-{name}", std::process::id()))
    }

    fn build(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
        let mut w = IndexWriter::create(dir, 30).unwrap().block_target(24);
        for i in 0..20u32 {
            w.maximal(&[i, i + 1, i + 2]);
        }
        w.maximal(&[0, 2, 4, 6]);
        w.finish().unwrap();
    }

    /// A small updatable index with a two-generation chain: new
    /// cliques, tombstones, and vertex growth all present.
    fn build_chained(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
        let mut g = BitGraph::new(8);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v);
        }
        let mut w = IndexWriter::create(dir, g.n())
            .unwrap()
            .block_target(24)
            .min_size(2)
            .snapshot(&g)
            .unwrap();
        let mut sink = gsb_core::CollectSink::default();
        gsb_core::CliqueEnumerator::new(gsb_core::EnumConfig {
            min_k: 2,
            max_k: None,
            record_costs: false,
        })
        .enumerate(&g, &mut sink);
        for c in &sink.cliques {
            w.maximal(c);
        }
        w.finish().unwrap();
        update(
            dir,
            &EditScript {
                remove: vec![(3, 5)],
                add: vec![(0, 3), (6, 7)],
            },
            None,
        )
        .unwrap();
        update(
            dir,
            &EditScript {
                remove: vec![(0, 1)],
                add: vec![(5, 8)],
            },
            None,
        )
        .unwrap();
    }

    #[test]
    fn clean_index_scrubs_clean() {
        let dir = tmp("clean");
        build(&dir);
        let report = scrub(&dir);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.cliques_checked, 21);
        assert!(report.blocks_checked > 1);
        assert_eq!(report.postings_checked, 30);
        assert_eq!(report.delta_generations_checked, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_chained_index_scrubs_clean() {
        let dir = tmp("chain_clean");
        build_chained(&dir);
        let report = scrub(&dir);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.delta_generations_checked, 2);
        assert!(
            report.tombstones_checked > 0,
            "chain fixture killed nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_meta_is_a_finding_not_a_panic() {
        let dir = tmp("nometa");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = scrub(&dir);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].site.contains(META_FILE));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance bar: every single-byte flip in every index file
    /// is detected. Exhaustive over the whole directory — the files are
    /// a few KiB here, so this stays fast.
    #[test]
    fn every_single_byte_corruption_is_detected() {
        let dir = tmp("sweep");
        build(&dir);
        assert!(scrub(&dir).is_clean());
        for file in [META_FILE, DIRECTORY_FILE, CLIQUES_FILE, POSTINGS_FILE] {
            flip_sweep(&dir, file);
        }
        assert!(scrub(&dir).is_clean(), "restore left the index dirty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same bar for a chained index: flips anywhere in the delta
    /// blocks, overlay frames, chain records, or the graph snapshot
    /// are all detected.
    #[test]
    fn every_single_byte_corruption_in_a_chain_is_detected() {
        let dir = tmp("chain_sweep");
        build_chained(&dir);
        assert!(scrub(&dir).is_clean(), "{:?}", scrub(&dir).findings);
        for file in [
            META_FILE,
            DIRECTORY_FILE,
            CLIQUES_FILE,
            POSTINGS_FILE,
            "graph.gsg",
        ] {
            flip_sweep(&dir, file);
        }
        assert!(scrub(&dir).is_clean(), "restore left the index dirty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn flip_sweep(dir: &Path, file: &str) {
        let path = dir.join(file);
        let pristine = std::fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            for bit in [0x01u8, 0x40] {
                let mut bad = pristine.clone();
                bad[i] ^= bit;
                std::fs::write(&path, &bad).unwrap();
                let report = scrub(dir);
                assert!(
                    !report.is_clean(),
                    "{file}: flip 0x{bit:02x} at byte {i} went undetected"
                );
            }
        }
        std::fs::write(&path, &pristine).unwrap();
    }

    #[test]
    fn torn_tails_and_double_kills_are_findings() {
        let dir = tmp("chain_torn");
        build_chained(&dir);
        // torn tail past the committed extent of each chain file
        for file in [CLIQUES_FILE, POSTINGS_FILE, DIRECTORY_FILE] {
            let path = dir.join(file);
            let pristine = std::fs::read(&path).unwrap();
            let mut torn = pristine.clone();
            torn.extend_from_slice(b"junk");
            std::fs::write(&path, &torn).unwrap();
            assert!(!scrub(&dir).is_clean(), "{file}: torn tail went undetected");
            std::fs::write(&path, &pristine).unwrap();
        }
        assert!(scrub(&dir).is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
