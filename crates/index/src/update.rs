//! `gsb update` — incremental index maintenance for dynamic graphs.
//!
//! Das et al. (*Shared-Memory Parallel Maximal Clique Enumeration from
//! Static and Dynamic Graphs*) localize the effect of an edge edit:
//!
//! * **Adding `{u, v}`** creates exactly the maximal cliques
//!   `{u, v} ∪ M` for each maximal clique `M` of the subgraph induced
//!   by `N(u) ∩ N(v)` (or `{u, v}` alone when that neighborhood is
//!   empty), and subsumes every existing maximal clique `C` with
//!   `u ∈ C, v ∉ C, C∖{u} ⊆ N(v)` (and symmetrically).
//! * **Removing `{u, v}`** kills every maximal clique containing both
//!   endpoints; each survivor candidate `C∖{u}` / `C∖{v}` is kept iff
//!   it is still maximal and not already present.
//!
//! The engine applies a batch sequentially (removals, then additions)
//! against the evolving graph plus an in-memory overlay, so after every
//! edit the maintained set is exactly `{maximal cliques of the current
//! graph with size ≥ min_size}` — the same set a full re-enumeration of
//! the patched graph produces. Cliques created then killed within one
//! batch never touch disk.
//!
//! A commit appends — never rewrites: delta blocks to `cliques.gsi`,
//! one postings frame to `postings.gsp`, one [`DeltaGeneration`] record
//! to `index.gsd`, then renames a fresh `index.meta` into place. The
//! manifest is the single commit point: it records the committed byte
//! extent of all three files, so a crash mid-append leaves a torn tail
//! the next update truncates away, and a crash before the rename leaves
//! the previous committed view byte-for-byte intact. A live `gsb serve`
//! polling the manifest hot-reloads the new generation atomically.

use crate::format::{
    encode_clique, encode_delta_postings, frame, BlockEntry, DeltaGeneration, IndexMeta, SizeRun,
    CLIQUES_FILE, COMPACT_TMP_DIR, DIRECTORY_FILE, META_FILE, POSTINGS_FILE,
};
use crate::reader::CliqueIndex;
use crate::snapshot::read_graph_checked;
use crate::writer::{sync_dir, write_atomic, DEFAULT_BLOCK_TARGET};
use gsb_core::store::StoreError;
use gsb_core::{neighborhood, Clique, Vertex};
use gsb_graph::BitGraph;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::rc::Rc;

/// A batch of edge edits: removals are applied first, then additions,
/// each in file order.
#[derive(Clone, Debug, Default)]
pub struct EditScript {
    /// Edges to remove, canonical `(min, max)` pairs.
    pub remove: Vec<(usize, usize)>,
    /// Edges to add, canonical `(min, max)` pairs. Endpoints beyond the
    /// indexed graph grow it.
    pub add: Vec<(usize, usize)>,
}

/// What [`update`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Manifest generation after the call (unchanged when nothing
    /// committed).
    pub generation: u64,
    /// Removals applied / skipped (edge absent or out of range).
    pub removes_applied: usize,
    /// Removals skipped.
    pub removes_skipped: usize,
    /// Additions applied / skipped (edge already present).
    pub adds_applied: usize,
    /// Additions skipped.
    pub adds_skipped: usize,
    /// New cliques appended as a delta generation.
    pub new_cliques: u64,
    /// Stored cliques tombstoned by this batch.
    pub new_tombstones: u64,
    /// Total clique ids after the call.
    pub total: u64,
    /// Live cliques after the call.
    pub live: u64,
    /// Vertex count after the call.
    pub n: usize,
    /// False when every edit was a no-op and nothing was written.
    pub committed: bool,
}

/// Sequential maintenance state over one batch: the stored index plus
/// an in-memory overlay of kills and additions.
struct Maintainer<'a> {
    idx: &'a CliqueIndex,
    g: BitGraph,
    min_k: usize,
    killed_stored: Vec<u64>,
    killed_set: HashSet<u64>,
    added: Vec<Option<Clique>>,
    added_index: HashMap<Clique, usize>,
    /// Memoized raw postings (reader-level tombstones already filtered).
    /// Stored postings are immutable for the life of a batch — kills
    /// live in `killed_set` and are filtered at use time — and the
    /// survivor/subsumption checks after an edit hit the same few
    /// vertices over and over, so this turns O(candidates) postings
    /// reads into O(distinct vertices).
    postings: HashMap<usize, Rc<Vec<u64>>>,
}

impl<'a> Maintainer<'a> {
    /// Raw live stored ids containing a vertex, memoized, ascending.
    fn raw_containing(&mut self, v: usize) -> Result<Rc<Vec<u64>>, StoreError> {
        if let Some(ids) = self.postings.get(&v) {
            return Ok(Rc::clone(ids));
        }
        let ids = Rc::new(self.idx.containing(v as Vertex)?);
        self.postings.insert(v, Rc::clone(&ids));
        Ok(ids)
    }

    /// Live stored ids containing both endpoints, minus batch kills.
    /// Both lists are ascending, so a linear merge beats the
    /// bitset-universe intersection the reader uses for cold calls.
    fn stored_overlap(&mut self, u: usize, v: usize) -> Result<Vec<u64>, StoreError> {
        let a = self.raw_containing(u)?;
        let b = self.raw_containing(v)?;
        let mut out = intersect_sorted(&a, &b);
        out.retain(|id| !self.killed_set.contains(id));
        Ok(out)
    }

    /// Live stored ids containing a vertex, minus batch kills.
    fn stored_containing(&mut self, v: usize) -> Result<Vec<u64>, StoreError> {
        let raw = self.raw_containing(v)?;
        Ok(raw
            .iter()
            .copied()
            .filter(|id| !self.killed_set.contains(id))
            .collect())
    }

    /// Is `c` in the maintained set right now?
    ///
    /// Postings arithmetic only — no store block is decoded. A stored
    /// clique equals `c` iff its id appears in every member's postings
    /// list (which forces ⊇ c) and its size is exactly |c| (which pins
    /// equality).
    fn contains(&mut self, c: &Clique) -> Result<bool, StoreError> {
        if self.added_index.contains_key(c) {
            return Ok(true);
        }
        // The first pairwise merge does the heavy pruning; after that
        // the candidate list is short enough that binary probes into
        // the remaining members' lists beat re-merging them. Kill and
        // size checks wait for the (tiny) surviving set.
        let mut ids = if c.len() >= 2 {
            let a = self.raw_containing(c[0] as usize)?;
            let b = self.raw_containing(c[1] as usize)?;
            intersect_sorted(&a, &b)
        } else {
            self.raw_containing(c[0] as usize)?.to_vec()
        };
        for &v in c.iter().skip(2) {
            if ids.is_empty() {
                return Ok(false);
            }
            let next = self.raw_containing(v as usize)?;
            ids.retain(|id| next.binary_search(id).is_ok());
        }
        Ok(ids.into_iter().any(|id| {
            !self.killed_set.contains(&id) && self.idx.size_of(id) == Some(c.len() as u32)
        }))
    }

    fn kill_stored(&mut self, id: u64) {
        if self.killed_set.insert(id) {
            self.killed_stored.push(id);
        }
    }

    fn kill_added(&mut self, slot: usize) {
        if let Some(c) = self.added[slot].take() {
            self.added_index.remove(&c);
        }
    }

    fn insert(&mut self, c: Clique) {
        if c.len() < self.min_k {
            return;
        }
        let slot = self.added.len();
        self.added.push(Some(c.clone()));
        self.added_index.insert(c, slot);
    }

    /// Batch-alive added cliques containing every vertex of `vs`.
    fn added_slots_containing(&self, vs: &[usize]) -> Vec<usize> {
        self.added
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.as_ref()
                    .is_some_and(|c| vs.iter().all(|&v| c.binary_search(&(v as Vertex)).is_ok()))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Process one removal. Returns whether the edge existed.
    fn remove_edge(&mut self, u: usize, v: usize) -> Result<bool, StoreError> {
        if u >= self.g.n() || v >= self.g.n() || !self.g.has_edge(u, v) {
            return Ok(false);
        }
        // Dying cliques: everything currently containing both endpoints.
        // Their members are reconstructed from postings — every member
        // of a clique containing {u, v} is u, v, or a common neighbor,
        // so walking the common neighborhood's postings lists in vertex
        // order rebuilds each clique (sorted) without decoding a single
        // store block.
        let stored = self.stored_overlap(u, v)?;
        let slots = self.added_slots_containing(&[u, v]);
        let mut dying: Vec<Clique> = Vec::with_capacity(stored.len() + slots.len());
        if !stored.is_empty() {
            let mut members: Vec<Clique> = vec![Clique::new(); stored.len()];
            for w in 0..self.g.n() {
                if w != u && w != v && !(self.g.has_edge(w, u) && self.g.has_edge(w, v)) {
                    continue;
                }
                let posting = self.raw_containing(w)?;
                for pos in intersect_positions(&stored, &posting) {
                    members[pos].push(w as Vertex);
                }
            }
            dying.append(&mut members);
        }
        for &s in &slots {
            dying.push(self.added[s].clone().expect("slot alive"));
        }
        self.g.remove_edge(u, v);
        for id in stored {
            self.kill_stored(id);
        }
        for s in slots {
            self.kill_added(s);
        }
        // Survivor candidates: C∖{u} and C∖{v} for each dying C, kept
        // iff still maximal in the edited graph and not already present.
        for c in dying {
            for &gone in &[u, v] {
                let d: Clique = c.iter().copied().filter(|&x| x as usize != gone).collect();
                if d.len() < self.min_k.max(1) {
                    continue;
                }
                let dv: Vec<usize> = d.iter().map(|&x| x as usize).collect();
                if !self.g.is_maximal_clique(&dv) {
                    continue;
                }
                if !self.contains(&d)? {
                    self.insert(d);
                }
            }
        }
        Ok(true)
    }

    /// Process one addition. Returns whether the edge was new.
    fn add_edge(&mut self, u: usize, v: usize) -> Result<bool, StoreError> {
        if self.g.has_edge(u, v) {
            return Ok(false);
        }
        // Subsumption first (against the pre-edit graph): a maximal C
        // containing one endpoint whose remainder is fully adjacent to
        // the other stops being maximal once {u, v} lands.
        for &(a, b) in &[(u, v), (v, u)] {
            // Postings arithmetic again: a stored C ∋ a is subsumed iff
            // every other member sits in N(a) ∩ N(b) (clique-internal
            // adjacency forces N(a); the subsumption condition forces
            // N(b), and b itself can never qualify). Counting common-
            // neighborhood memberships per candidate id decides that
            // without decoding any store block.
            let s = self.stored_containing(a)?;
            if !s.is_empty() {
                let mut counts = vec![0u32; s.len()];
                for w in 0..self.g.n() {
                    if w == a || w == b || !(self.g.has_edge(w, a) && self.g.has_edge(w, b)) {
                        continue;
                    }
                    let posting = self.raw_containing(w)?;
                    for pos in intersect_positions(&s, &posting) {
                        counts[pos] += 1;
                    }
                }
                for (i, &id) in s.iter().enumerate() {
                    if self.idx.size_of(id) == Some(counts[i] + 1) {
                        self.kill_stored(id);
                    }
                }
            }
            for slot in self.added_slots_containing(&[a]) {
                let c = self.added[slot].clone().expect("slot alive");
                if subsumed_by_edge(&c, a, b, &self.g) {
                    self.kill_added(slot);
                }
            }
        }
        self.g.add_edge(u, v);
        // New maximal cliques: {u, v} ∪ M over the common neighborhood,
        // re-enumerated with the same generic kernel.
        for k in neighborhood::cliques_created_by_edge(&self.g, u, v) {
            if k.len() >= self.min_k && !self.contains(&k)? {
                self.insert(k);
            }
        }
        Ok(true)
    }
}

/// Linear merge intersection of two ascending id lists.
fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Positions in ascending `base` whose id also appears in ascending
/// `probe` — the membership-marking primitive behind postings-only
/// clique reconstruction.
fn intersect_positions(base: &[u64], probe: &[u64]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < probe.len() {
        match base[i].cmp(&probe[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(i);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Does adding edge `{a, b}` (not yet in `g`) subsume maximal clique
/// `c ∋ a`? True iff `b ∉ c` and every other member is adjacent to `b`.
fn subsumed_by_edge(c: &Clique, a: usize, b: usize, g: &BitGraph) -> bool {
    c.iter()
        .all(|&x| x as usize == a || (x as usize != b && g.has_edge(x as usize, b)))
        && !c.iter().any(|&x| x as usize == b)
}

/// Truncate a data file back to its committed extent, repairing a torn
/// append from a crashed update. A file *shorter* than the manifest
/// says is real corruption and stays a typed error.
fn repair_extent(dir: &Path, name: &str, extent: u64) -> Result<(), StoreError> {
    let path = dir.join(name);
    let len = std::fs::metadata(&path)?.len();
    if len < extent {
        return Err(StoreError::Torn {
            context: "index file shorter than manifest extent",
            needed: extent as usize,
            have: len as usize,
        });
    }
    if len > extent {
        let f = OpenOptions::new().write(true).open(&path)?;
        f.set_len(extent)?;
        f.sync_all()?;
    }
    Ok(())
}

/// Refuse to update while a compaction swap is pending (a valid
/// manifest inside `compact.tmp/` means `gsb compact` crashed between
/// building and swapping — finishing it must win).
fn check_no_pending_compaction(dir: &Path) -> Result<(), StoreError> {
    let inner = dir.join(COMPACT_TMP_DIR).join(META_FILE);
    if let Ok(text) = std::fs::read_to_string(&inner) {
        if IndexMeta::from_text(&text).is_ok() {
            return Err(StoreError::Io(std::io::Error::other(
                "a compaction swap is pending — run `gsb compact` to finish it first",
            )));
        }
    }
    Ok(())
}

/// Reconstruct the current graph: the committed snapshot plus every
/// committed generation's effective edits, grown to `n_target`.
pub(crate) fn patched_graph(
    dir: &Path,
    idx: &CliqueIndex,
    n_target: usize,
) -> Result<BitGraph, StoreError> {
    let meta = idx.meta();
    let snap = read_graph_checked(dir, meta.graph_bytes, meta.graph_crc)?;
    let mut g = snap.grown(n_target.max(meta.n).max(snap.n()));
    for gen in idx.chain() {
        for &(u, v) in &gen.removed_edges {
            g.remove_edge(u as usize, v as usize);
        }
        for &(u, v) in &gen.added_edges {
            g.add_edge(u as usize, v as usize);
        }
    }
    Ok(g)
}

/// Apply an edit batch to the committed index in `dir`, appending one
/// delta generation and bumping the manifest generation atomically.
/// See the module docs for the protocol and crash model.
pub fn update(
    dir: &Path,
    script: &EditScript,
    block_target: Option<usize>,
) -> Result<UpdateOutcome, StoreError> {
    check_no_pending_compaction(dir)?;
    let meta0 = IndexMeta::from_text(&std::fs::read_to_string(dir.join(META_FILE))?)?;
    if meta0.min_size == 0 || meta0.graph_bytes == 0 || meta0.dir_bytes == 0 {
        return Err(StoreError::Io(std::io::Error::other(
            "index is not updatable (built before dynamic updates, or with --max): \
             rebuild it with `gsb index`",
        )));
    }
    repair_extent(dir, CLIQUES_FILE, meta0.store_bytes)?;
    repair_extent(dir, POSTINGS_FILE, meta0.postings_bytes)?;
    repair_extent(dir, DIRECTORY_FILE, meta0.dir_bytes)?;

    let idx = CliqueIndex::open(dir)?;
    let n_target = script
        .add
        .iter()
        .map(|&(_, v)| v + 1)
        .chain([meta0.n])
        .max()
        .unwrap_or(meta0.n);
    let g = patched_graph(dir, &idx, n_target)?;

    let mut m = Maintainer {
        idx: &idx,
        g,
        min_k: meta0.min_size as usize,
        killed_stored: Vec::new(),
        killed_set: HashSet::new(),
        added: Vec::new(),
        added_index: HashMap::new(),
        postings: HashMap::new(),
    };
    let mut out = UpdateOutcome {
        generation: meta0.generation,
        total: meta0.cliques,
        live: meta0.cliques - meta0.tombstones,
        n: meta0.n,
        ..Default::default()
    };
    let mut removed_effective = Vec::new();
    let mut added_effective = Vec::new();
    for &(u, v) in &script.remove {
        if m.remove_edge(u, v)? {
            out.removes_applied += 1;
            removed_effective.push((u as u32, v as u32));
        } else {
            out.removes_skipped += 1;
        }
    }
    for &(u, v) in &script.add {
        if m.add_edge(u, v)? {
            out.adds_applied += 1;
            added_effective.push((u as u32, v as u32));
        } else {
            out.adds_skipped += 1;
        }
    }
    if out.removes_applied == 0 && out.adds_applied == 0 {
        return Ok(out);
    }

    // Canonical per-generation emission: (size, lex) — the same order
    // the enumerators produce, which is what makes compaction
    // byte-identical to a fresh rebuild.
    let mut new_cliques: Vec<Clique> = m.added.into_iter().flatten().collect();
    new_cliques.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    let mut tombstones = m.killed_stored;
    tombstones.sort_unstable();
    removed_effective.sort_unstable();
    added_effective.sort_unstable();
    let n_after = m.g.n();

    // Encode delta blocks and the per-generation postings overlay.
    let first_id = meta0.cliques;
    let target = block_target.unwrap_or(DEFAULT_BLOCK_TARGET).max(1);
    let mut store_append = Vec::new();
    let mut blocks = Vec::new();
    let mut size_runs: Vec<SizeRun> = Vec::new();
    let mut postings: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    {
        let mut block_buf = Vec::new();
        let mut block_count = 0u32;
        let mut block_first = first_id;
        let mut block_min = u32::MAX;
        let mut block_max = 0u32;
        let mut offset = meta0.store_bytes;
        let mut seal =
            |buf: &mut Vec<u8>, count: &mut u32, first: &mut u64, min: &mut u32, max: &mut u32| {
                if *count == 0 {
                    return;
                }
                let mut payload = Vec::with_capacity(4 + buf.len());
                payload.extend_from_slice(&count.to_le_bytes());
                payload.extend_from_slice(buf);
                let framed = frame(&payload);
                blocks.push(BlockEntry {
                    offset,
                    first_id: *first,
                    count: *count,
                    min_size: *min,
                    max_size: *max,
                });
                offset += framed.len() as u64;
                store_append.extend_from_slice(&framed);
                *first += u64::from(*count);
                buf.clear();
                *count = 0;
                *min = u32::MAX;
                *max = 0;
            };
        for (i, c) in new_cliques.iter().enumerate() {
            let id = first_id + i as u64;
            let size = c.len() as u32;
            encode_clique(&mut block_buf, c);
            block_count += 1;
            block_min = block_min.min(size);
            block_max = block_max.max(size);
            for &v in c {
                postings.entry(v).or_default().push(id);
            }
            match size_runs.last_mut() {
                Some(run) if run.size == size => run.count += 1,
                _ => size_runs.push(SizeRun {
                    size,
                    first_id: id,
                    count: 1,
                }),
            }
            if block_buf.len() >= target {
                seal(
                    &mut block_buf,
                    &mut block_count,
                    &mut block_first,
                    &mut block_min,
                    &mut block_max,
                );
            }
        }
        seal(
            &mut block_buf,
            &mut block_count,
            &mut block_first,
            &mut block_min,
            &mut block_max,
        );
    }
    let mut postings_payload = Vec::new();
    let entries: Vec<(u32, Vec<u64>)> = postings.into_iter().collect();
    encode_delta_postings(&mut postings_payload, &entries);
    let postings_append = frame(&postings_payload);

    let gen = DeltaGeneration {
        generation: meta0.generation + 1,
        n: n_after as u32,
        first_id,
        count: new_cliques.len() as u64,
        size_runs,
        blocks: blocks.clone(),
        tombstones: tombstones.clone(),
        postings_offset: meta0.postings_bytes,
        postings_len: postings_append.len() as u64,
        removed_edges: removed_effective,
        added_edges: added_effective,
    };
    let dir_append = frame(&gen.encode());

    // New live maximum: the open-time live histogram, minus each
    // killed clique's size, plus the new ones.
    let mut hist: BTreeMap<u32, u64> = idx.stats().size_histogram.into_iter().collect();
    for &id in &tombstones {
        let size = idx.size_of(id).ok_or(StoreError::Codec {
            context: "tombstone beyond the index",
        })?;
        if let Some(c) = hist.get_mut(&size) {
            *c = c.saturating_sub(1);
        }
    }
    for c in &new_cliques {
        *hist.entry(c.len() as u32).or_insert(0) += 1;
    }
    let max_clique = hist
        .iter()
        .rev()
        .find(|&(_, &c)| c > 0)
        .map_or(0, |(&s, _)| s);

    // Append, fsync, then commit via the manifest rename. Order
    // matters: data before directory record before manifest.
    append_fsync(dir, CLIQUES_FILE, &store_append)?;
    append_fsync(dir, POSTINGS_FILE, &postings_append)?;
    gsb_core::failpoint::inject("update.pre_dir").map_err(StoreError::Io)?;
    append_fsync(dir, DIRECTORY_FILE, &dir_append)?;
    gsb_core::failpoint::inject("update.pre_commit").map_err(StoreError::Io)?;
    let meta = IndexMeta {
        version: 1,
        n: n_after,
        cliques: first_id + new_cliques.len() as u64,
        max_clique,
        blocks: meta0.blocks + blocks.len() as u64,
        store_bytes: meta0.store_bytes + store_append.len() as u64,
        postings_bytes: meta0.postings_bytes + postings_append.len() as u64,
        generation: meta0.generation + 1,
        min_size: meta0.min_size,
        delta_generations: meta0.delta_generations + 1,
        tombstones: meta0.tombstones + tombstones.len() as u64,
        dir_bytes: meta0.dir_bytes + dir_append.len() as u64,
        graph_bytes: meta0.graph_bytes,
        graph_crc: meta0.graph_crc,
    };
    write_atomic(dir, META_FILE, meta.to_text().as_bytes()).map_err(StoreError::Io)?;
    sync_dir(dir);

    out.generation = meta.generation;
    out.new_cliques = gen.count;
    out.new_tombstones = gen.tombstones.len() as u64;
    out.total = meta.cliques;
    out.live = meta.cliques - meta.tombstones;
    out.n = meta.n;
    out.committed = true;
    Ok(out)
}

/// Append bytes to `dir/name` and fsync the file.
fn append_fsync(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let mut f = OpenOptions::new().append(true).open(dir.join(name))?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}
