//! # gsb-index — the persistent clique index and query service
//!
//! The enumerated cliques are the *input* to downstream biology
//! (co-expression modules, QTL candidates), yet a [`CliqueSink`] run is
//! write-only: without this crate a genome-scale job must be re-run to
//! answer a single "which cliques contain gene v?" question. This crate
//! closes that gap with three layers:
//!
//! * [`writer`] — [`IndexWriter`], a [`CliqueSink`] that streams
//!   maximal cliques into an on-disk index *during* enumeration:
//!   a sorted clique store of CRC32-framed blocks (length-prefixed,
//!   delta-encoded vertex ids), per-vertex postings lists, and a
//!   size-range directory, all written atomically with the swept-tmp
//!   conventions of `gsb_core::checkpoint`.
//! * [`reader`] — [`CliqueIndex`], the read-only query engine:
//!   `cliques-containing(v)`, `cliques-of-size(k..=m)`, `max-clique`,
//!   and `overlap(v, w)` via postings intersection on the dense
//!   [`gsb_bitset::BitSet`], behind an LRU cache of decoded blocks.
//! * [`server`] — `gsb serve`: a std-only threaded TCP/HTTP server
//!   answering JSON queries, with per-endpoint latency histograms from
//!   `gsb_telemetry`, graceful SIGINT/SIGTERM drain via
//!   [`gsb_core::ShutdownToken`], and a per-connection deadline.
//!
//! ## Why the size order matters
//!
//! Both enumerators emit cliques in non-decreasing size order, so the
//! sequential clique ids assigned at write time are *already sorted by
//! size*: the size directory is a handful of `(size, first_id, count)`
//! rows and every size-range query is a contiguous id range. The
//! paper's ordering contract becomes the index's file layout.
//!
//! [`CliqueSink`]: gsb_core::CliqueSink

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod format;
pub mod reader;
pub mod router;
pub mod scrub;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod update;
pub mod writer;

pub use compact::{compact, CompactOutcome};
pub use format::{DeltaGeneration, IndexDirectory, IndexMeta};
pub use reader::{CliqueIndex, DegradedCliques, IndexStats, IoStats};
pub use router::{Router, RouterConfig, RouterReport, ShardSpec, Topology};
pub use scrub::{scrub, ScrubFinding, ScrubReport};
pub use server::{ServeConfig, ServeReport, Server};
pub use shard::{split_index, ShardSummary};
pub use snapshot::read_graph_checked;
pub use update::{update, EditScript, UpdateOutcome};
pub use writer::{IndexWriter, WriteSummary};
