//! Graph snapshot (`graph.gsg`) — the patched graph an updatable index
//! was last committed against (DESIGN.md §16).
//!
//! `gsb index` and `gsb compact` write one; `gsb update` reconstructs
//! the *current* graph by replaying each committed delta generation's
//! effective edge edits on top of it, so updates never need the
//! original edge-list file. The whole file is pinned to the manifest by
//! `graph_bytes`/`graph_crc`, making a mismatched or rotten snapshot a
//! typed error rather than a silently wrong delta.
//!
//! Layout: the standard 16-byte header (`GRAPH_MAGIC`, `n`), then one
//! CRC-framed record per vertex `v` holding the delta-coded ascending
//! list of neighbors `w > v` — each edge stored exactly once.

use std::fs;
use std::path::Path;

use gsb_core::store::{crc32, StoreError};
use gsb_graph::BitGraph;

use crate::format::{
    check_header, decode_id_list, encode_id_list, frame, header_bytes, parse_frame, GRAPH_FILE,
    GRAPH_MAGIC, HEADER_LEN,
};

/// Serialize a graph into `graph.gsg` bytes.
pub fn encode_graph(g: &BitGraph) -> Vec<u8> {
    let n = g.n();
    let mut out = Vec::new();
    out.extend_from_slice(&header_bytes(GRAPH_MAGIC, n as u32));
    let mut ids = Vec::new();
    let mut payload = Vec::new();
    for v in 0..n {
        ids.clear();
        ids.extend(
            g.neighbors(v)
                .iter_ones()
                .filter(|&w| w > v)
                .map(|w| w as u64),
        );
        payload.clear();
        encode_id_list(&mut payload, &ids);
        out.extend_from_slice(&frame(&payload));
    }
    out
}

/// Decode `graph.gsg` bytes back into a graph; every frame, every id
/// bound, and the exact byte extent are verified.
pub fn decode_graph(bytes: &[u8]) -> Result<BitGraph, StoreError> {
    const CTX: &str = "graph snapshot";
    let n = check_header(bytes, GRAPH_MAGIC, CTX)? as usize;
    let mut g = BitGraph::new(n);
    let mut pos = HEADER_LEN;
    for v in 0..n {
        let (payload, next) = parse_frame(bytes, pos, CTX)?;
        pos = next;
        let mut p = 0usize;
        let ids = decode_id_list(payload, &mut p, n as u64, CTX)?;
        if p != payload.len() {
            return Err(StoreError::Codec { context: CTX });
        }
        for id in ids {
            let w = id as usize;
            if w <= v {
                return Err(StoreError::Codec { context: CTX });
            }
            g.add_edge(v, w);
        }
    }
    if pos != bytes.len() {
        return Err(StoreError::Codec { context: CTX });
    }
    Ok(g)
}

/// Read `dir/graph.gsg` and verify it against the manifest's recorded
/// extent and whole-file CRC before decoding.
pub fn read_graph_checked(
    dir: &Path,
    graph_bytes: u64,
    graph_crc: u32,
) -> Result<BitGraph, StoreError> {
    const CTX: &str = "graph snapshot";
    if graph_bytes == 0 {
        return Err(StoreError::Codec { context: CTX });
    }
    let bytes = fs::read(dir.join(GRAPH_FILE)).map_err(StoreError::Io)?;
    if bytes.len() as u64 != graph_bytes {
        return Err(StoreError::Torn {
            context: CTX,
            needed: graph_bytes as usize,
            have: bytes.len(),
        });
    }
    let computed = crc32(&bytes);
    if computed != graph_crc {
        return Err(StoreError::Checksum {
            context: CTX,
            stored: graph_crc,
            computed,
        });
    }
    decode_graph(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_and_flip_sweep() {
        let g = BitGraph::from_edges(7, [(0, 1), (0, 2), (1, 2), (3, 6), (5, 6)]);
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(back.n(), 7);
        assert_eq!(back.m(), 5);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(back.has_edge(u, v), g.has_edge(u, v));
            }
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x21;
            assert!(decode_graph(&bad).is_err(), "flip at {i} silently accepted");
        }
        // truncation is torn/typed, not a panic
        assert!(decode_graph(&bytes[..bytes.len() - 1]).is_err());
        // trailing garbage is rejected
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_graph(&long).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = BitGraph::new(0);
        let bytes = encode_graph(&g);
        assert_eq!(decode_graph(&bytes).unwrap().n(), 0);
    }
}
