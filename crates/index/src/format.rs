//! On-disk byte layout of the clique index (DESIGN.md §11).
//!
//! An index directory holds four files, every binary structure framed
//! `[payload_len: u32 LE][crc32(payload): u32 LE][payload]` exactly like
//! the checkpoint format, so torn writes and bit rot surface as typed
//! [`StoreError`]s — never as panics or silently wrong answers:
//!
//! * `cliques.gsi` — the clique store: a 16-byte header followed by
//!   CRC-framed blocks; each block payload is a record count then
//!   length-prefixed, delta-encoded (LEB128 varint) vertex lists.
//! * `postings.gsp` — per-vertex postings: a header then one CRC-framed
//!   record per vertex, each a count plus delta-encoded clique ids.
//! * `index.gsd` — the directory: a header then one CRC-framed payload
//!   holding the size runs, the block table, and the postings offsets.
//! * `index.meta` — a key=value text manifest, written last by
//!   tmp-then-rename: its presence is the commit point of the index.

use gsb_core::store::{crc32, StoreError};
use gsb_core::{Clique, Vertex};

/// Clique store file name.
pub const CLIQUES_FILE: &str = "cliques.gsi";
/// Postings file name.
pub const POSTINGS_FILE: &str = "postings.gsp";
/// Directory file name.
pub const DIRECTORY_FILE: &str = "index.gsd";
/// Manifest file name — the commit point.
pub const META_FILE: &str = "index.meta";
/// Graph snapshot file name (written by `gsb index` / `gsb compact`;
/// required by `gsb update` to patch the graph without the original
/// edge list).
pub const GRAPH_FILE: &str = "graph.gsg";
/// Scratch directory used by `gsb compact` while folding a delta chain
/// into a fresh base; a valid inner manifest marks a swap in progress.
pub const COMPACT_TMP_DIR: &str = "compact.tmp";

/// `"SC05ICS1"` — index clique store, format 1.
pub const CLIQUES_MAGIC: u64 = 0x5343_3035_4943_5331;
/// `"SC05IPL1"` — index postings lists, format 1.
pub const POSTINGS_MAGIC: u64 = 0x5343_3035_4950_4C31;
/// `"SC05IDR1"` — index directory, format 1.
pub const DIRECTORY_MAGIC: u64 = 0x5343_3035_4944_5231;
/// `"SC05IGR1"` — index graph snapshot, format 1.
pub const GRAPH_MAGIC: u64 = 0x5343_3035_4947_5231;

/// Bytes of the fixed file header: magic, bitmap width, header CRC.
pub const HEADER_LEN: usize = 16;

/// Build the 16-byte file header: `magic: u64 LE, n: u32 LE,
/// crc32(first 12 bytes): u32 LE`.
pub fn header_bytes(magic: u64, n: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&magic.to_le_bytes());
    h[8..12].copy_from_slice(&n.to_le_bytes());
    let crc = crc32(&h[..12]);
    h[12..16].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validate a file header against `magic`; returns the recorded `n`.
pub fn check_header(bytes: &[u8], magic: u64, context: &'static str) -> Result<u32, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Torn {
            context,
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let computed = crc32(&bytes[..12]);
    if stored_crc != computed {
        return Err(StoreError::Checksum {
            context,
            stored: stored_crc,
            computed,
        });
    }
    let found = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    if found != magic {
        return Err(StoreError::BadMagic { found });
    }
    Ok(u32::from_le_bytes(bytes[8..12].try_into().unwrap()))
}

/// Frame a payload: `[len: u32 LE][crc32: u32 LE][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse one frame at `pos`; returns the verified payload and the
/// position just past it.
pub fn parse_frame<'a>(
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
) -> Result<(&'a [u8], usize), StoreError> {
    let rest = bytes.len().saturating_sub(pos);
    if rest < 8 {
        return Err(StoreError::Torn {
            context,
            needed: 8,
            have: rest,
        });
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
    let body_start = pos + 8;
    if bytes.len() - body_start < len {
        return Err(StoreError::Torn {
            context,
            needed: len,
            have: bytes.len() - body_start,
        });
    }
    let payload = &bytes[body_start..body_start + len];
    let computed = crc32(payload);
    if stored != computed {
        return Err(StoreError::Checksum {
            context,
            stored,
            computed,
        });
    }
    Ok((payload, body_start + len))
}

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint at `*pos`, advancing it. Bounded to 10 bytes;
/// anything longer (or a short read) is a typed codec error.
pub fn get_varint(buf: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(StoreError::Torn {
                context,
                needed: *pos + 1,
                have: buf.len(),
            });
        };
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Codec { context });
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode one clique record into a block payload: `len` as varint, the
/// first vertex, then the gaps between consecutive (strictly ascending)
/// vertices. Gaps of a sorted clique are ≥ 1, so delta coding plus
/// LEB128 keeps genome-scale vertex ids to one or two bytes each.
pub fn encode_clique(buf: &mut Vec<u8>, clique: &[Vertex]) {
    put_varint(buf, clique.len() as u64);
    let mut prev = 0u64;
    for (i, &v) in clique.iter().enumerate() {
        let v = u64::from(v);
        if i == 0 {
            put_varint(buf, v);
        } else {
            put_varint(buf, v - prev);
        }
        prev = v;
    }
}

/// Decode one clique record; `n` bounds both the clique length and the
/// vertex ids so corrupted lengths fail typed instead of allocating.
pub fn decode_clique(
    buf: &[u8],
    pos: &mut usize,
    n: u32,
    context: &'static str,
) -> Result<Clique, StoreError> {
    let len = get_varint(buf, pos, context)?;
    if len == 0 || len > u64::from(n) {
        return Err(StoreError::Codec { context });
    }
    let mut clique = Vec::with_capacity(len as usize);
    let mut prev = 0u64;
    for i in 0..len {
        let delta = get_varint(buf, pos, context)?;
        let v = if i == 0 { delta } else { prev + delta };
        if v >= u64::from(n) || (i > 0 && delta == 0) {
            return Err(StoreError::Codec { context });
        }
        clique.push(v as Vertex);
        prev = v;
    }
    Ok(clique)
}

/// Encode an ascending id list (postings) as count + first + gaps.
pub fn encode_id_list(buf: &mut Vec<u8>, ids: &[u64]) {
    put_varint(buf, ids.len() as u64);
    let mut prev = 0u64;
    for (i, &id) in ids.iter().enumerate() {
        if i == 0 {
            put_varint(buf, id);
        } else {
            put_varint(buf, id - prev);
        }
        prev = id;
    }
}

/// Decode an ascending id list; every id must stay below `bound`.
pub fn decode_id_list(
    buf: &[u8],
    pos: &mut usize,
    bound: u64,
    context: &'static str,
) -> Result<Vec<u64>, StoreError> {
    let len = get_varint(buf, pos, context)?;
    if len > bound {
        return Err(StoreError::Codec { context });
    }
    let mut ids = Vec::with_capacity(len as usize);
    let mut prev = 0u64;
    for i in 0..len {
        let delta = get_varint(buf, pos, context)?;
        let id = if i == 0 { delta } else { prev + delta };
        if id >= bound || (i > 0 && delta == 0) {
            return Err(StoreError::Codec { context });
        }
        ids.push(id);
        prev = id;
    }
    Ok(ids)
}

/// One contiguous run of equal-size cliques in id space. The
/// enumerators emit in non-decreasing size order, so sizes partition
/// the id space into a handful of runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeRun {
    /// Clique size of every member of the run.
    pub size: u32,
    /// First clique id of the run.
    pub first_id: u64,
    /// Number of cliques in the run.
    pub count: u64,
}

/// One block of the clique store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// Byte offset of the block's frame in `cliques.gsi`.
    pub offset: u64,
    /// Clique id of the block's first record.
    pub first_id: u64,
    /// Records in the block.
    pub count: u32,
    /// Smallest clique size in the block.
    pub min_size: u32,
    /// Largest clique size in the block.
    pub max_size: u32,
}

/// The in-memory form of `index.gsd`: everything a reader needs to
/// answer queries without scanning the store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexDirectory {
    /// Vertex count of the indexed graph.
    pub n: u32,
    /// Total cliques in the store.
    pub clique_count: u64,
    /// Size runs, ascending in size and contiguous in id space.
    pub size_runs: Vec<SizeRun>,
    /// Block table, ascending in `first_id`.
    pub blocks: Vec<BlockEntry>,
    /// Byte offset of each vertex's postings frame in `postings.gsp`.
    pub postings_offsets: Vec<u64>,
    /// Total bytes of `postings.gsp` (for stats and bounds checks).
    pub postings_bytes: u64,
}

impl IndexDirectory {
    /// Serialize as one frame-able payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_varint(&mut p, u64::from(self.n));
        put_varint(&mut p, self.clique_count);
        put_varint(&mut p, self.size_runs.len() as u64);
        for run in &self.size_runs {
            put_varint(&mut p, u64::from(run.size));
            put_varint(&mut p, run.first_id);
            put_varint(&mut p, run.count);
        }
        put_varint(&mut p, self.blocks.len() as u64);
        for b in &self.blocks {
            put_varint(&mut p, b.offset);
            put_varint(&mut p, b.first_id);
            put_varint(&mut p, u64::from(b.count));
            put_varint(&mut p, u64::from(b.min_size));
            put_varint(&mut p, u64::from(b.max_size));
        }
        put_varint(&mut p, self.postings_offsets.len() as u64);
        for &off in &self.postings_offsets {
            put_varint(&mut p, off);
        }
        put_varint(&mut p, self.postings_bytes);
        p
    }

    /// Decode the payload written by [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        const CTX: &str = "index directory";
        let pos = &mut 0usize;
        let n = get_varint(payload, pos, CTX)?;
        if n > u64::from(u32::MAX) {
            return Err(StoreError::Codec { context: CTX });
        }
        let clique_count = get_varint(payload, pos, CTX)?;
        let runs = get_varint(payload, pos, CTX)?;
        if runs > clique_count {
            return Err(StoreError::Codec { context: CTX });
        }
        let mut size_runs = Vec::with_capacity(runs as usize);
        for _ in 0..runs {
            size_runs.push(SizeRun {
                size: get_varint(payload, pos, CTX)? as u32,
                first_id: get_varint(payload, pos, CTX)?,
                count: get_varint(payload, pos, CTX)?,
            });
        }
        let blocks = get_varint(payload, pos, CTX)?;
        if blocks > clique_count {
            return Err(StoreError::Codec { context: CTX });
        }
        let mut block_table = Vec::with_capacity(blocks as usize);
        for _ in 0..blocks {
            block_table.push(BlockEntry {
                offset: get_varint(payload, pos, CTX)?,
                first_id: get_varint(payload, pos, CTX)?,
                count: get_varint(payload, pos, CTX)? as u32,
                min_size: get_varint(payload, pos, CTX)? as u32,
                max_size: get_varint(payload, pos, CTX)? as u32,
            });
        }
        let offsets = get_varint(payload, pos, CTX)?;
        if offsets != n + 1 {
            return Err(StoreError::Codec { context: CTX });
        }
        let mut postings_offsets = Vec::with_capacity(offsets as usize);
        for _ in 0..offsets {
            postings_offsets.push(get_varint(payload, pos, CTX)?);
        }
        let postings_bytes = get_varint(payload, pos, CTX)?;
        if *pos != payload.len() {
            return Err(StoreError::Codec { context: CTX });
        }
        Ok(IndexDirectory {
            n: n as u32,
            clique_count,
            size_runs,
            blocks: block_table,
            postings_offsets,
            postings_bytes,
        })
    }

    /// The contiguous clique-id range holding every clique whose size
    /// lies in `lo..=hi` (valid because ids are assigned in
    /// non-decreasing size order).
    pub fn size_range_ids(&self, lo: u32, hi: u32) -> std::ops::Range<u64> {
        let mut start = None;
        let mut end = 0u64;
        for run in &self.size_runs {
            if run.size >= lo && run.size <= hi {
                start.get_or_insert(run.first_id);
                end = run.first_id + run.count;
            }
        }
        match start {
            Some(s) => s..end,
            None => 0..0,
        }
    }

    /// Largest clique size present (0 when empty).
    pub fn max_size(&self) -> u32 {
        self.size_runs.last().map_or(0, |r| r.size)
    }
}

/// One committed delta generation, stored as a CRC-framed record
/// appended to `index.gsd` after the base directory frame (DESIGN.md
/// §16). Each `gsb update` commit appends exactly one: the new cliques
/// it produced (as delta blocks in `cliques.gsi` plus one postings
/// frame in `postings.gsp`), the ids it tombstoned, and the effective
/// edge edits it applied — enough to reconstruct the current graph from
/// the base snapshot by replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaGeneration {
    /// Manifest generation at which this record was committed.
    pub generation: u64,
    /// Vertex count after this generation's edits (≥ the previous
    /// generation's; edge additions may introduce new vertices).
    pub n: u32,
    /// First clique id assigned to this generation's new cliques.
    pub first_id: u64,
    /// Number of new cliques in this generation.
    pub count: u64,
    /// Size runs over the new cliques, ascending and contiguous in
    /// `first_id..first_id + count` (absolute ids).
    pub size_runs: Vec<SizeRun>,
    /// Delta blocks appended to `cliques.gsi` (absolute offsets).
    pub blocks: Vec<BlockEntry>,
    /// Clique ids from earlier generations subsumed by this one,
    /// strictly ascending and all below `first_id`.
    pub tombstones: Vec<u64>,
    /// Byte offset of this generation's postings frame in
    /// `postings.gsp`.
    pub postings_offset: u64,
    /// Byte length of that frame (header through payload end).
    pub postings_len: u64,
    /// Edges removed by this generation, `(u, v)` with `u < v`,
    /// strictly ascending — replayed before `added_edges`.
    pub removed_edges: Vec<(u32, u32)>,
    /// Edges added by this generation, same encoding as
    /// `removed_edges` — replayed after it.
    pub added_edges: Vec<(u32, u32)>,
}

fn encode_edges(p: &mut Vec<u8>, edges: &[(u32, u32)]) {
    put_varint(p, edges.len() as u64);
    for &(u, v) in edges {
        put_varint(p, u64::from(u));
        put_varint(p, u64::from(v));
    }
}

fn decode_edges(
    payload: &[u8],
    pos: &mut usize,
    n: u32,
    context: &'static str,
) -> Result<Vec<(u32, u32)>, StoreError> {
    let count = get_varint(payload, pos, context)?;
    if count > u64::from(n) * u64::from(n) {
        return Err(StoreError::Codec { context });
    }
    let mut edges = Vec::with_capacity(count as usize);
    let mut prev: Option<(u32, u32)> = None;
    for _ in 0..count {
        let u = get_varint(payload, pos, context)?;
        let v = get_varint(payload, pos, context)?;
        if u >= v || v >= u64::from(n) {
            return Err(StoreError::Codec { context });
        }
        let e = (u as u32, v as u32);
        if prev.is_some_and(|p| p >= e) {
            return Err(StoreError::Codec { context });
        }
        edges.push(e);
        prev = Some(e);
    }
    Ok(edges)
}

impl DeltaGeneration {
    /// Clique ids introduced by this generation.
    pub fn id_range(&self) -> std::ops::Range<u64> {
        self.first_id..self.first_id + self.count
    }

    /// Serialize as one frame-able payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_varint(&mut p, self.generation);
        put_varint(&mut p, u64::from(self.n));
        put_varint(&mut p, self.first_id);
        put_varint(&mut p, self.count);
        put_varint(&mut p, self.size_runs.len() as u64);
        for run in &self.size_runs {
            put_varint(&mut p, u64::from(run.size));
            put_varint(&mut p, run.first_id);
            put_varint(&mut p, run.count);
        }
        put_varint(&mut p, self.blocks.len() as u64);
        for b in &self.blocks {
            put_varint(&mut p, b.offset);
            put_varint(&mut p, b.first_id);
            put_varint(&mut p, u64::from(b.count));
            put_varint(&mut p, u64::from(b.min_size));
            put_varint(&mut p, u64::from(b.max_size));
        }
        encode_id_list(&mut p, &self.tombstones);
        put_varint(&mut p, self.postings_offset);
        put_varint(&mut p, self.postings_len);
        encode_edges(&mut p, &self.removed_edges);
        encode_edges(&mut p, &self.added_edges);
        p
    }

    /// Decode one record payload, validating every structural
    /// invariant that does not require the data files: contiguous size
    /// runs and blocks covering exactly `id_range`, ascending
    /// tombstones below `first_id`, and canonical `u < v < n` edits.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        const CTX: &str = "delta generation";
        let pos = &mut 0usize;
        let generation = get_varint(payload, pos, CTX)?;
        let n = get_varint(payload, pos, CTX)?;
        if n > u64::from(u32::MAX) {
            return Err(StoreError::Codec { context: CTX });
        }
        let n = n as u32;
        let first_id = get_varint(payload, pos, CTX)?;
        let count = get_varint(payload, pos, CTX)?;
        let runs = get_varint(payload, pos, CTX)?;
        if runs > count {
            return Err(StoreError::Codec { context: CTX });
        }
        let mut size_runs = Vec::with_capacity(runs as usize);
        let mut expect = first_id;
        let mut prev_size = 0u32;
        for _ in 0..runs {
            let run = SizeRun {
                size: get_varint(payload, pos, CTX)? as u32,
                first_id: get_varint(payload, pos, CTX)?,
                count: get_varint(payload, pos, CTX)?,
            };
            if run.first_id != expect || run.count == 0 || run.size <= prev_size {
                return Err(StoreError::Codec { context: CTX });
            }
            expect = run.first_id + run.count;
            prev_size = run.size;
            size_runs.push(run);
        }
        if expect != first_id + count {
            return Err(StoreError::Codec { context: CTX });
        }
        let nblocks = get_varint(payload, pos, CTX)?;
        if nblocks > count {
            return Err(StoreError::Codec { context: CTX });
        }
        let mut blocks = Vec::with_capacity(nblocks as usize);
        let mut expect = first_id;
        let mut prev_off = 0u64;
        for _ in 0..nblocks {
            let b = BlockEntry {
                offset: get_varint(payload, pos, CTX)?,
                first_id: get_varint(payload, pos, CTX)?,
                count: get_varint(payload, pos, CTX)? as u32,
                min_size: get_varint(payload, pos, CTX)? as u32,
                max_size: get_varint(payload, pos, CTX)? as u32,
            };
            if b.first_id != expect || b.count == 0 || b.offset <= prev_off {
                return Err(StoreError::Codec { context: CTX });
            }
            expect = b.first_id + u64::from(b.count);
            prev_off = b.offset;
            blocks.push(b);
        }
        if expect != first_id + count {
            return Err(StoreError::Codec { context: CTX });
        }
        let tombstones = decode_id_list(payload, pos, first_id.max(1), CTX)?;
        if tombstones.iter().any(|&id| id >= first_id) {
            return Err(StoreError::Codec { context: CTX });
        }
        let postings_offset = get_varint(payload, pos, CTX)?;
        let postings_len = get_varint(payload, pos, CTX)?;
        let removed_edges = decode_edges(payload, pos, n, CTX)?;
        let added_edges = decode_edges(payload, pos, n, CTX)?;
        if *pos != payload.len() {
            return Err(StoreError::Codec { context: CTX });
        }
        Ok(DeltaGeneration {
            generation,
            n,
            first_id,
            count,
            size_runs,
            blocks,
            tombstones,
            postings_offset,
            postings_len,
            removed_edges,
            added_edges,
        })
    }
}

/// Encode one generation's postings overlay: vertex count, then per
/// vertex (ascending) its id and the ascending clique ids it gained.
/// Framed and appended to `postings.gsp` as a single record per
/// generation — the base file's per-vertex layout cannot be extended
/// in place without rewriting it.
pub fn encode_delta_postings(buf: &mut Vec<u8>, entries: &[(u32, Vec<u64>)]) {
    put_varint(buf, entries.len() as u64);
    for (v, ids) in entries {
        put_varint(buf, u64::from(*v));
        encode_id_list(buf, ids);
    }
}

/// Decode a generation's postings overlay; vertices must ascend and
/// stay below `n`, ids must fall inside the generation's id range.
pub fn decode_delta_postings(
    payload: &[u8],
    n: u32,
    ids: std::ops::Range<u64>,
    context: &'static str,
) -> Result<Vec<(u32, Vec<u64>)>, StoreError> {
    let pos = &mut 0usize;
    let count = get_varint(payload, pos, context)?;
    if count > u64::from(n) {
        return Err(StoreError::Codec { context });
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let v = get_varint(payload, pos, context)?;
        if v >= u64::from(n) || prev.is_some_and(|p| u64::from(p) >= v) {
            return Err(StoreError::Codec { context });
        }
        let list = decode_id_list(payload, pos, ids.end, context)?;
        if list.is_empty() || list.iter().any(|&id| id < ids.start) {
            return Err(StoreError::Codec { context });
        }
        prev = Some(v as u32);
        entries.push((v as u32, list));
    }
    if *pos != payload.len() {
        return Err(StoreError::Codec { context });
    }
    Ok(entries)
}

/// The `index.meta` manifest: human-readable key=value lines, written
/// last (tmp-then-rename) so its presence marks a committed index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexMeta {
    /// Format version (currently 1).
    pub version: u32,
    /// Vertex count of the indexed graph.
    pub n: usize,
    /// Total cliques indexed.
    pub cliques: u64,
    /// Largest clique size.
    pub max_clique: u32,
    /// Blocks in the clique store.
    pub blocks: u64,
    /// Bytes of `cliques.gsi`.
    pub store_bytes: u64,
    /// Bytes of `postings.gsp`.
    pub postings_bytes: u64,
    /// Monotonic rebuild counter: bumped every time a writer replaces
    /// an existing committed index in the same directory *and* every
    /// time `gsb update` commits a delta generation. The serving layer
    /// polls it to trigger atomic hot-reloads. Absent in pre-generation
    /// manifests, which read back as generation 0.
    pub generation: u64,
    /// Minimum clique size the index maintains (the `--min` the base
    /// build ran with). 0 in manifests written before dynamic updates
    /// existed — such indexes refuse `gsb update` because the
    /// maintained set is unknown.
    pub min_size: u32,
    /// Delta generations appended after the base (0 = clean base).
    pub delta_generations: u64,
    /// Total tombstoned (dead) clique ids across the chain.
    pub tombstones: u64,
    /// Committed bytes of `index.gsd` (base frame + chain records).
    /// 0 in pre-chain manifests, meaning "the whole file".
    pub dir_bytes: u64,
    /// Bytes of the `graph.gsg` snapshot (0 = no snapshot on disk;
    /// such indexes cannot be updated in place).
    pub graph_bytes: u64,
    /// CRC-32 of the entire `graph.gsg` file, pinning the snapshot to
    /// this manifest's commit point.
    pub graph_crc: u32,
}

impl IndexMeta {
    /// Render as key=value text. The final `crc=` line covers every
    /// preceding byte, so even fields with no cross-checkable twin
    /// elsewhere in the index (like `generation`) cannot rot silently.
    pub fn to_text(&self) -> String {
        let body = format!(
            "version={}\nn={}\ncliques={}\nmax_clique={}\nblocks={}\nstore_bytes={}\npostings_bytes={}\ngeneration={}\nmin_size={}\ndelta_generations={}\ntombstones={}\ndir_bytes={}\ngraph_bytes={}\ngraph_crc={}\n",
            self.version,
            self.n,
            self.cliques,
            self.max_clique,
            self.blocks,
            self.store_bytes,
            self.postings_bytes,
            self.generation,
            self.min_size,
            self.delta_generations,
            self.tombstones,
            self.dir_bytes,
            self.graph_bytes,
            self.graph_crc
        );
        let crc = crc32(body.as_bytes());
        format!("{body}crc={crc}\n")
    }

    /// Parse the text form; unknown keys are ignored (forward compat),
    /// missing required keys are a typed codec error. When a `crc=`
    /// line is present (writers emit one since generations were added),
    /// it is verified against the preceding bytes; manifests written
    /// before it existed parse without one.
    pub fn from_text(text: &str) -> Result<Self, StoreError> {
        const CTX: &str = "index.meta";
        let mut crc_seen = false;
        // The checksum line is the one *starting* with `crc=` — a plain
        // substring search would stop inside `graph_crc=` first.
        let crc_pos = if text.starts_with("crc=") {
            Some(0)
        } else {
            text.find("\ncrc=").map(|p| p + 1)
        };
        if let Some(pos) = crc_pos {
            // No trim here: stray whitespace after the digits means the
            // trailing newline itself was corrupted.
            let line = text[pos..].lines().next().unwrap_or("");
            let stored = line["crc=".len()..]
                .strip_suffix('\r')
                .unwrap_or(&line["crc=".len()..])
                .parse::<u32>()
                .map_err(|_| StoreError::Codec { context: CTX })?;
            let computed = crc32(&text.as_bytes()[..pos]);
            if stored != computed {
                return Err(StoreError::Checksum {
                    context: CTX,
                    stored,
                    computed,
                });
            }
            crc_seen = true;
        }
        let mut meta = IndexMeta {
            version: 0,
            n: usize::MAX,
            cliques: u64::MAX,
            max_clique: u32::MAX,
            blocks: 0,
            store_bytes: 0,
            postings_bytes: 0,
            generation: 0,
            min_size: 0,
            delta_generations: 0,
            tombstones: 0,
            dir_bytes: 0,
            graph_bytes: 0,
            graph_crc: 0,
        };
        let mut generation_seen = false;
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let parse = || value.trim().parse::<u64>();
            match key.trim() {
                "version" => {
                    meta.version = parse().map_err(|_| StoreError::Codec { context: CTX })? as u32
                }
                "n" => meta.n = parse().map_err(|_| StoreError::Codec { context: CTX })? as usize,
                "cliques" => {
                    meta.cliques = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "max_clique" => {
                    meta.max_clique =
                        parse().map_err(|_| StoreError::Codec { context: CTX })? as u32
                }
                "blocks" => {
                    meta.blocks = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "store_bytes" => {
                    meta.store_bytes = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "postings_bytes" => {
                    meta.postings_bytes = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "generation" => {
                    meta.generation = parse().map_err(|_| StoreError::Codec { context: CTX })?;
                    generation_seen = true;
                }
                "min_size" => {
                    meta.min_size = parse().map_err(|_| StoreError::Codec { context: CTX })? as u32
                }
                "delta_generations" => {
                    meta.delta_generations =
                        parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "tombstones" => {
                    meta.tombstones = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "dir_bytes" => {
                    meta.dir_bytes = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "graph_bytes" => {
                    meta.graph_bytes = parse().map_err(|_| StoreError::Codec { context: CTX })?
                }
                "graph_crc" => {
                    meta.graph_crc = parse().map_err(|_| StoreError::Codec { context: CTX })? as u32
                }
                _ => {}
            }
        }
        if meta.version != 1
            || meta.n == usize::MAX
            || meta.cliques == u64::MAX
            || meta.max_clique == u32::MAX
        {
            return Err(StoreError::Codec { context: CTX });
        }
        // `generation` and `crc` were introduced together: a manifest
        // declaring one but missing the other lost bytes to corruption.
        if generation_seen && !crc_seen {
            return Err(StoreError::Codec { context: CTX });
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_and_bounds() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos, "t").unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // truncated varint is torn, not a panic
        let mut pos = 0;
        assert!(matches!(
            get_varint(&[0x80u8, 0x80], &mut pos, "t"),
            Err(StoreError::Torn { .. })
        ));
        // an overlong varint is a codec error
        let mut pos = 0;
        let overlong = [0x80u8; 11];
        assert!(matches!(
            get_varint(&overlong, &mut pos, "t"),
            Err(StoreError::Codec { .. })
        ));
    }

    #[test]
    fn clique_codec_roundtrip() {
        let mut buf = Vec::new();
        let cliques: Vec<Vec<u32>> = vec![vec![0], vec![3, 9, 10, 400], vec![1, 2, 3]];
        for c in &cliques {
            encode_clique(&mut buf, c);
        }
        let mut pos = 0;
        for c in &cliques {
            assert_eq!(&decode_clique(&buf, &mut pos, 500, "t").unwrap(), c);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn clique_codec_rejects_corruption_typed() {
        let mut buf = Vec::new();
        encode_clique(&mut buf, &[5, 6, 7]);
        // vertex beyond n
        let mut pos = 0;
        assert!(decode_clique(&buf, &mut pos, 6, "t").is_err());
        // absurd length must not allocate
        let mut huge = Vec::new();
        put_varint(&mut huge, u64::MAX);
        let mut pos = 0;
        assert!(matches!(
            decode_clique(&huge, &mut pos, 100, "t"),
            Err(StoreError::Codec { .. })
        ));
    }

    #[test]
    fn id_list_roundtrip_and_zero_delta_rejected() {
        let mut buf = Vec::new();
        encode_id_list(&mut buf, &[0, 5, 6, 1000]);
        let mut pos = 0;
        assert_eq!(
            decode_id_list(&buf, &mut pos, 1001, "t").unwrap(),
            vec![0, 5, 6, 1000]
        );
        // a duplicate id (zero delta) is corruption
        let mut bad = Vec::new();
        put_varint(&mut bad, 2);
        put_varint(&mut bad, 4);
        put_varint(&mut bad, 0);
        let mut pos = 0;
        assert!(decode_id_list(&bad, &mut pos, 10, "t").is_err());
    }

    #[test]
    fn frame_detects_flips_and_truncation() {
        let framed = frame(b"hello index");
        let (payload, next) = parse_frame(&framed, 0, "t").unwrap();
        assert_eq!(payload, b"hello index");
        assert_eq!(next, framed.len());
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(parse_frame(&bad, 0, "t").is_err(), "flip at byte {i}");
        }
        assert!(parse_frame(&framed[..framed.len() - 1], 0, "t").is_err());
    }

    #[test]
    fn header_roundtrip_and_corruption() {
        let h = header_bytes(CLIQUES_MAGIC, 1234);
        assert_eq!(check_header(&h, CLIQUES_MAGIC, "t").unwrap(), 1234);
        assert!(matches!(
            check_header(&h, POSTINGS_MAGIC, "t"),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bad = h;
        bad[9] ^= 1;
        assert!(matches!(
            check_header(&bad, CLIQUES_MAGIC, "t"),
            Err(StoreError::Checksum { .. })
        ));
        assert!(check_header(&h[..10], CLIQUES_MAGIC, "t").is_err());
    }

    #[test]
    fn directory_roundtrip() {
        let dir = IndexDirectory {
            n: 40,
            clique_count: 7,
            size_runs: vec![
                SizeRun {
                    size: 3,
                    first_id: 0,
                    count: 5,
                },
                SizeRun {
                    size: 5,
                    first_id: 5,
                    count: 2,
                },
            ],
            blocks: vec![BlockEntry {
                offset: 16,
                first_id: 0,
                count: 7,
                min_size: 3,
                max_size: 5,
            }],
            postings_offsets: (0..41).map(|i| 16 + i * 9).collect(),
            postings_bytes: 400,
        };
        let payload = dir.encode();
        assert_eq!(IndexDirectory::decode(&payload).unwrap(), dir);
        // every single-byte flip fails typed (decode or the outer frame)
        let framed = frame(&payload);
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x10;
            let r = parse_frame(&bad, 0, "t").and_then(|(p, _)| IndexDirectory::decode(p));
            assert!(r.is_err(), "flip at {i} silently accepted");
        }
        assert_eq!(dir.size_range_ids(3, 3), 0..5);
        assert_eq!(dir.size_range_ids(4, 9), 5..7);
        assert_eq!(dir.size_range_ids(6, 9), 0..0);
        assert_eq!(dir.max_size(), 5);
    }

    #[test]
    fn delta_generation_roundtrip_and_flip_sweep() {
        let gen = DeltaGeneration {
            generation: 4,
            n: 55,
            first_id: 12,
            count: 5,
            size_runs: vec![
                SizeRun {
                    size: 3,
                    first_id: 12,
                    count: 4,
                },
                SizeRun {
                    size: 4,
                    first_id: 16,
                    count: 1,
                },
            ],
            blocks: vec![BlockEntry {
                offset: 900,
                first_id: 12,
                count: 5,
                min_size: 3,
                max_size: 4,
            }],
            tombstones: vec![1, 7, 9],
            postings_offset: 4000,
            postings_len: 66,
            removed_edges: vec![(0, 3), (2, 9)],
            added_edges: vec![(0, 3), (5, 54)],
        };
        let payload = gen.encode();
        assert_eq!(DeltaGeneration::decode(&payload).unwrap(), gen);
        // every single-byte flip fails typed (decode or the outer frame)
        let framed = frame(&payload);
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x11;
            let r = parse_frame(&bad, 0, "t").and_then(|(p, _)| DeltaGeneration::decode(p));
            assert!(r.is_err(), "flip at {i} silently accepted");
        }
        // an empty generation (tombstones/edits only) is legal
        let empty = DeltaGeneration {
            generation: 2,
            n: 10,
            first_id: 40,
            count: 0,
            tombstones: vec![3],
            postings_offset: 100,
            postings_len: 9,
            removed_edges: vec![(1, 2)],
            ..Default::default()
        };
        assert_eq!(DeltaGeneration::decode(&empty.encode()).unwrap(), empty);
        // a tombstone at/above first_id is structural corruption
        let mut bad = gen.clone();
        bad.tombstones = vec![12];
        assert!(DeltaGeneration::decode(&bad.encode()).is_err());
        // non-canonical edits (u >= v) are rejected
        let mut bad = gen.clone();
        bad.added_edges = vec![(9, 9)];
        assert!(DeltaGeneration::decode(&bad.encode()).is_err());
    }

    #[test]
    fn meta_roundtrip_and_missing_keys() {
        let meta = IndexMeta {
            version: 1,
            n: 40,
            cliques: 7,
            max_clique: 5,
            blocks: 1,
            store_bytes: 100,
            postings_bytes: 400,
            generation: 3,
            min_size: 3,
            delta_generations: 2,
            tombstones: 4,
            dir_bytes: 220,
            graph_bytes: 90,
            graph_crc: 12345,
        };
        assert_eq!(IndexMeta::from_text(&meta.to_text()).unwrap(), meta);
        assert!(IndexMeta::from_text("version=1\nn=4\n").is_err());
        assert!(IndexMeta::from_text("garbage").is_err());
        // pre-generation manifests (no `generation` key) stay readable
        let old = "version=1\nn=4\ncliques=2\nmax_clique=2\nblocks=1\n";
        let parsed = IndexMeta::from_text(old).unwrap();
        assert_eq!(parsed.generation, 0);
        // ... and pre-chain manifests default to "no chain, no snapshot"
        assert_eq!(parsed.min_size, 0);
        assert_eq!(parsed.delta_generations, 0);
        assert_eq!(parsed.dir_bytes, 0);
        assert_eq!(parsed.graph_bytes, 0);
        // the trailing crc line catches every single-byte flip, even in
        // fields with no cross-check elsewhere (generation)
        let text = meta.to_text();
        for i in 0..text.len() {
            let mut bad = text.clone().into_bytes();
            bad[i] ^= 0x04; // stays ASCII, usually still parseable text
            if let Ok(flipped) = String::from_utf8(bad) {
                let r = IndexMeta::from_text(&flipped);
                assert!(
                    r.is_err() || r.as_ref().unwrap() == &meta,
                    "flip at byte {i} silently changed the manifest"
                );
                if r.is_ok() {
                    // a flip that still parses equal is impossible: the
                    // crc line pins every preceding byte
                    panic!("flip at byte {i} produced an accepted manifest");
                }
            }
        }
    }
}
