//! `gsb compact` — fold a delta chain back into a clean base index.
//!
//! Compaction materializes every live clique (base minus tombstones,
//! plus all delta generations), sorts them into the canonical
//! `(size, lex)` order the enumerators emit, and rebuilds the four-file
//! index in a scratch directory (`compact.tmp/`) with [`IndexWriter`] —
//! the exact code path `gsb index` uses. Because the emission order is
//! canonical, the compacted `cliques.gsi` / `postings.gsp` /
//! `index.gsd` / `graph.gsg` are **byte-identical** to a fresh
//! `gsb index` rebuild of the patched graph at the same `--min`; only
//! the manifest generation differs (it outranks the live one so the
//! serving layer hot-reloads).
//!
//! ## Crash model
//!
//! The build phase is invisible: everything lands inside
//! `compact.tmp/`, whose own `index.meta` is written last. A crash
//! before that inner manifest exists leaves a stale scratch directory
//! the next compaction deletes and redoes. A crash **during the swap**
//! (after the inner manifest, while files move into place) is the one
//! non-atomic window: the live directory may briefly mix old and new
//! files. Re-running `gsb compact` detects the valid inner manifest and
//! finishes the swap instead of rebuilding — and `gsb update` refuses
//! to run until it does, so the window cannot widen.

use crate::format::{
    IndexMeta, CLIQUES_FILE, COMPACT_TMP_DIR, DIRECTORY_FILE, GRAPH_FILE, META_FILE, POSTINGS_FILE,
};
use crate::reader::CliqueIndex;
use crate::update::patched_graph;
use crate::writer::{sync_dir, IndexWriter};
use gsb_core::store::StoreError;
use gsb_core::{Clique, CliqueSink};
use std::path::Path;

/// What [`compact`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Manifest generation after the call.
    pub generation: u64,
    /// Live cliques in the compacted base (also the new id space).
    pub cliques: u64,
    /// Vertex count of the compacted index.
    pub n: usize,
    /// True when a crashed compaction's pending swap was finished
    /// instead of rebuilding.
    pub resumed: bool,
    /// False when the index had no delta chain and nothing was done.
    pub compacted: bool,
}

/// Is there a completed-but-unswapped compaction in `dir`?
fn pending_swap(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join(COMPACT_TMP_DIR).join(META_FILE))
        .is_ok_and(|text| IndexMeta::from_text(&text).is_ok())
}

/// Move the finished scratch index into place: data files first, the
/// manifest last (the commit point), then drop the scratch directory.
/// Files already moved by a crashed earlier attempt are skipped.
fn finish_swap(dir: &Path) -> Result<IndexMeta, StoreError> {
    let tmp = dir.join(COMPACT_TMP_DIR);
    let meta = IndexMeta::from_text(&std::fs::read_to_string(tmp.join(META_FILE))?)?;
    for name in [CLIQUES_FILE, POSTINGS_FILE, DIRECTORY_FILE, GRAPH_FILE] {
        let src = tmp.join(name);
        match std::fs::rename(&src, dir.join(name)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        gsb_core::failpoint::inject_tagged("compact.swap_file", name)?;
    }
    std::fs::rename(tmp.join(META_FILE), dir.join(META_FILE))?;
    let _ = std::fs::remove_dir_all(&tmp);
    sync_dir(dir);
    Ok(meta)
}

/// Fold the delta chain of the index in `dir` into a clean base. A
/// no-op when there is no chain; finishes a crashed swap when one is
/// pending. `block_target` overrides the store's block-sealing
/// threshold (bytes), defaulting to the writer's.
pub fn compact(dir: &Path, block_target: Option<usize>) -> Result<CompactOutcome, StoreError> {
    if pending_swap(dir) {
        let meta = finish_swap(dir)?;
        return Ok(CompactOutcome {
            generation: meta.generation,
            cliques: meta.cliques,
            n: meta.n,
            resumed: true,
            compacted: true,
        });
    }
    // Any scratch directory without a valid inner manifest is debris
    // from a crash mid-build; redo from scratch.
    let tmp = dir.join(COMPACT_TMP_DIR);
    let _ = std::fs::remove_dir_all(&tmp);

    let meta0 = IndexMeta::from_text(&std::fs::read_to_string(dir.join(META_FILE))?)?;
    if meta0.delta_generations == 0 {
        return Ok(CompactOutcome {
            generation: meta0.generation,
            cliques: meta0.cliques,
            n: meta0.n,
            resumed: false,
            compacted: false,
        });
    }
    if meta0.min_size == 0 || meta0.graph_bytes == 0 {
        return Err(StoreError::Codec {
            context: "compact: chained index is missing min_size or graph snapshot",
        });
    }

    let idx = CliqueIndex::open(dir)?;
    let g = patched_graph(dir, &idx, meta0.n)?;
    // Materialize the live set and restore the canonical global order;
    // ids ascend within each generation, so this is a merge of
    // already-(size, lex)-sorted runs, but a plain sort keeps it simple.
    let mut live: Vec<Clique> = Vec::with_capacity(idx.live_len() as usize);
    for id in 0..idx.len() {
        if idx.is_live(id) {
            live.push(idx.get(id)?);
        }
    }
    live.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));

    let mut w = IndexWriter::create(&tmp, g.n())?
        .min_size(meta0.min_size)
        .generation(meta0.generation + 1)
        .snapshot(&g)?;
    if let Some(bytes) = block_target {
        w = w.block_target(bytes);
    }
    for c in &live {
        w.maximal(c);
    }
    let summary = w.finish()?;
    drop(idx); // release file handles before files are renamed over
    gsb_core::failpoint::inject("compact.pre_swap")?;
    let meta = finish_swap(dir)?;
    debug_assert_eq!(meta.cliques, summary.cliques);
    Ok(CompactOutcome {
        generation: meta.generation,
        cliques: meta.cliques,
        n: meta.n,
        resumed: false,
        compacted: true,
    })
}
